//! §6 / §7.5 — solver performance: the K′-bounding optimization vs a raw
//! DIRECT run over the whole machine space, and scaling up to the paper's
//! "100 workloads and 20 output servers" case.
//!
//! Expected shape: the bounded pipeline is dramatically faster (the paper
//! reports up to 45× on the Wikia dataset) at equal or better solution
//! quality, and the 100-workload case solves far inside the paper's
//! 8-minute budget.

use kairos_bench::{dataset_profiles, print_table, quick, section};
use kairos_core::ConsolidationEngine;
use kairos_solver::{solve, solve_unbounded, SolverConfig};
use kairos_traces::Dataset;
use kairos_types::WorkloadProfile;
use std::time::Instant;

fn bench_case(label: &str, profiles: &[WorkloadProfile], rows: &mut Vec<Vec<String>>) {
    let engine = ConsolidationEngine::builder().build();
    let problem = engine.problem(profiles).expect("valid problem");
    let cfg = SolverConfig::default();

    let t0 = Instant::now();
    let bounded = solve(&problem, &cfg).expect("bounded solve");
    let t_bounded = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let unbounded = solve_unbounded(&problem, &cfg);
    let t_unbounded = t0.elapsed().as_secs_f64();

    let (unb_machines, unb_time) = match &unbounded {
        Ok(r) => (r.assignment.machines_used().to_string(), t_unbounded),
        Err(_) => ("infeasible".to_string(), t_unbounded),
    };
    println!(
        "  [{label}] bounded: {} machines in {:.2}s (probes {:?}); unbounded: {} in {:.2}s",
        bounded.assignment.machines_used(),
        t_bounded,
        bounded.probes,
        unb_machines,
        unb_time
    );
    rows.push(vec![
        label.to_string(),
        profiles.len().to_string(),
        format!("{:.2}", t_bounded),
        bounded.assignment.machines_used().to_string(),
        format!("{:.2}", unb_time),
        unb_machines,
        format!("{:.1}x", unb_time / t_bounded.max(1e-9)),
    ]);
}

fn synthetic_profiles(n: usize) -> Vec<WorkloadProfile> {
    use kairos_types::{Bytes, DiskDemand, Rate};
    (0..n)
        .map(|i| {
            WorkloadProfile::flat(
                format!("w{i}"),
                300.0,
                24,
                0.3 + (i % 7) as f64 * 0.35,
                Bytes::gib(2 + (i % 5) as u64 * 3),
                DiskDemand::new(Bytes::gib(1), Rate(100.0 + (i % 11) as f64 * 120.0)),
            )
        })
        .collect()
}

fn main() {
    section("solver performance: K'-bounded pipeline vs raw full-space DIRECT");
    let mut rows = Vec::new();

    // The paper's 45x example dataset: Wikia.
    bench_case(
        "Wikia",
        &dataset_profiles(Dataset::Wikia, 0x5EED),
        &mut rows,
    );
    if !quick() {
        bench_case(
            "Wikipedia",
            &dataset_profiles(Dataset::Wikipedia, 0x5EED),
            &mut rows,
        );
    }
    // The paper's scalability target: 100 workloads, ~20 output servers.
    bench_case("synthetic-50", &synthetic_profiles(50), &mut rows);
    bench_case("synthetic-100", &synthetic_profiles(100), &mut rows);

    section("summary");
    print_table(
        &[
            "dataset",
            "workloads",
            "bounded s",
            "machines",
            "unbounded s",
            "machines",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\npaper: bounded search up to 45x faster (44s vs 33min on Wikia); \
         100-workload problems solved in < 8 min — ours solve in seconds"
    );
}
