//! Tenant → shard assignment.
//!
//! The shard map is the control plane's routing truth: every tenant
//! belongs to exactly one shard at any time (the single-ownership
//! invariant of the handoff protocol), and each shard owns a disjoint
//! slice of the host fleet. Machine indices are shard-local — shard `s`'s
//! machine `m` is a different physical host from shard `t`'s machine `m`.

use std::collections::BTreeMap;

/// Where every tenant lives.
#[derive(Debug, Clone, Default)]
pub struct ShardMap {
    shards: usize,
    of: BTreeMap<String, usize>,
}

impl ShardMap {
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards >= 1, "need at least one shard");
        ShardMap {
            shards,
            of: BTreeMap::new(),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn len(&self) -> usize {
        self.of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.of.is_empty()
    }

    /// Assign (or re-assign, on handoff) a tenant to a shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn assign(&mut self, tenant: &str, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        self.of.insert(tenant.to_string(), shard);
    }

    pub fn shard_of(&self, tenant: &str) -> Option<usize> {
        self.of.get(tenant).copied()
    }

    /// Remove a tenant (left the fleet). Returns its former shard.
    pub fn remove(&mut self, tenant: &str) -> Option<usize> {
        self.of.remove(tenant)
    }

    /// All `(tenant, shard)` assignments in sorted tenant order — the
    /// checkpointable image of the routing truth.
    pub fn entries(&self) -> impl Iterator<Item = (&str, usize)> {
        self.of.iter().map(|(t, &s)| (t.as_str(), s))
    }

    /// Tenants currently mapped to `shard`, sorted.
    pub fn tenants_of(&self, shard: usize) -> Vec<String> {
        self.of
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Tenant count per shard.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.shards];
        for &s in self.of.values() {
            c[s] += 1;
        }
        c
    }

    /// The shard with the fewest tenants — the default admission target
    /// for brand-new arrivals (handoffs use load-aware placement
    /// instead).
    pub fn least_populated(&self) -> usize {
        let counts = self.counts();
        (0..self.shards)
            .min_by_key(|&s| counts[s])
            .expect("at least one shard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_lookup_remove() {
        let mut m = ShardMap::new(4);
        m.assign("a", 0);
        m.assign("b", 3);
        assert_eq!(m.shard_of("a"), Some(0));
        assert_eq!(m.shard_of("b"), Some(3));
        assert_eq!(m.shard_of("c"), None);
        assert_eq!(m.len(), 2);
        // Handoff: re-assign.
        m.assign("a", 2);
        assert_eq!(m.shard_of("a"), Some(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.shard_of("a"), None);
    }

    #[test]
    fn counts_and_least_populated() {
        let mut m = ShardMap::new(3);
        m.assign("a", 0);
        m.assign("b", 0);
        m.assign("c", 2);
        assert_eq!(m.counts(), vec![2, 0, 1]);
        assert_eq!(m.least_populated(), 1);
        assert_eq!(m.tenants_of(0), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_rejected() {
        let mut m = ShardMap::new(2);
        m.assign("a", 2);
    }
}
