//! Figure 7 — consolidation ratios on the four real-world datasets plus
//! ALL, comparing:
//! * reference (current deployment, 1 server per workload),
//! * greedy single-resource first-fit,
//! * Kairos (DIRECT + K' bounding + polish),
//! * the fractional/idealized lower bound.
//!
//! Expected shape: Kairos matches the idealized bound almost everywhere,
//! beats greedy, and lands in the paper's 5.5:1–17:1 ratio band.

use kairos_bench::{dataset_profiles, fleet_engine, last_day_profiles, print_table, section};
use kairos_core::PlanStrategy;
use kairos_traces::{generate_all, Dataset, FleetConfig};

fn main() {
    let engine = fleet_engine();
    let mut rows = Vec::new();

    let mut run = |label: &str, profiles: Vec<kairos_types::WorkloadProfile>| {
        let n = profiles.len();
        section(&format!("{label}: {n} servers"));
        let frac = engine.fractional_bound(&profiles).unwrap();
        let kairos = engine
            .consolidate_with(&profiles, PlanStrategy::Kairos)
            .expect("kairos plan");
        let greedy = engine.consolidate_with(&profiles, PlanStrategy::Greedy);
        let greedy_str = match &greedy {
            Ok(plan) => format!("{:.1}", n as f64 / plan.machines_used() as f64),
            Err(_) => "n/a".into(),
        };
        println!(
            "  kairos: {} machines (feasible: {}), greedy: {}, fractional: {}",
            kairos.machines_used(),
            kairos.report.evaluation.feasible,
            greedy
                .as_ref()
                .map(|g| g.machines_used().to_string())
                .unwrap_or_else(|_| "n/a".into()),
            frac
        );
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            "1.0".to_string(),
            greedy_str,
            format!("{:.1}", kairos.consolidation_ratio()),
            format!("{:.1}", n as f64 / frac as f64),
        ]);
    };

    for dataset in Dataset::ALL {
        run(dataset.label(), dataset_profiles(dataset, 0x5EED));
    }
    let all_fleet = generate_all(&FleetConfig {
        weeks: 1,
        ..Default::default()
    });
    run("ALL", last_day_profiles(&all_fleet));

    section("Figure 7 summary: consolidation ratio (k:1)");
    print_table(
        &[
            "dataset",
            "servers",
            "reference",
            "greedy",
            "kairos",
            "frac/ideal",
        ],
        &rows,
    );
    println!("\npaper band: 5.5:1 to 17:1; kairos ~= frac/ideal and >= greedy everywhere");
}
