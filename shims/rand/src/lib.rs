//! Offline stand-in for the `rand` crate.
//!
//! The simulator only needs a deterministic, seedable generator with
//! `random_range` over integer ranges. This shim backs `rngs::StdRng` with
//! SplitMix64 — statistically strong for simulation purposes, a handful of
//! instructions per draw, and fully reproducible across runs (the real
//! `StdRng` makes no cross-version stability promise, so pinning our own
//! algorithm is a feature here, not a loss).

use std::ops::Range;

pub mod rngs {
    /// Deterministic standard RNG (SplitMix64 state).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Seeding surface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

/// Integer types drawable from a uniform range.
pub trait SampleUniform: Copy {
    fn from_u64_mod(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64_mod(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u128;
                debug_assert!(span > 0, "random_range over empty range");
                // Multiply-shift mapping: unbiased enough at simulation scale.
                lo + ((raw as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u64, u32, usize);

/// Range sampling surface (subset of `rand::Rng::random_range`).
pub trait RngExt {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl RngExt for StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let raw = self.next_u64();
        T::from_u64_mod(raw, range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn range_respected_and_covered() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nonzero_lower_bound() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.random_range(100u32..110);
            assert!((100..110).contains(&v));
        }
    }
}
