//! The RPC wire envelope: length-framed, CRC-trailed, version-tagged
//! messages over the workspace codec (`shims/serde`).
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KNET"
//! 4       4     protocol version (u32 LE, see RPC_WIRE_VERSION)
//! 8       8     payload length (u64 LE)
//! 16      n     payload (shims/serde wire format: a Request or Response)
//! 16+n    4     CRC-32 (IEEE, u32 LE) over bytes [0, 16+n)
//! ```
//!
//! The layout deliberately mirrors `kairos-store`'s snapshot frame (and
//! reuses its CRC) so one validation discipline covers both the
//! durability and the network boundary; only the magic differs, so a
//! snapshot file can never be mistaken for an RPC message or vice versa.
//! The length prefix sits at a fixed offset, which is what lets a
//! blocking stream reader ([`read_frame`]) recover message boundaries
//! from a TCP byte stream.
//!
//! Every validation failure is a clean [`NetError`] — a frame is checked
//! (magic, version, sane length, CRC) *before* any payload decoding, and
//! the codec itself bounds-checks every read, so damaged or truncated
//! bytes can never panic a node or half-apply a message.

use crate::transport::NetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Magic prefix of every kairos RPC frame.
pub const NET_MAGIC: [u8; 4] = *b"KNET";

/// Protocol version carried by every frame. Bump on any change to the
/// `Request`/`Response` catalog or the codec; mismatched peers then fail
/// loudly instead of misdecoding each other.
pub const RPC_WIRE_VERSION: u32 = 1;

/// Hard cap on a frame's payload length. Far above any real message
/// (the largest is a full-telemetry handoff, tens of KiB), low enough
/// that a corrupted length prefix cannot make a reader allocate or block
/// on gigabytes.
pub const MAX_PAYLOAD_LEN: u64 = 64 << 20;

const HEADER_LEN: usize = 16;
const TRAILER_LEN: usize = 4;

/// Encode `value` into a complete frame (header + payload + CRC).
pub fn encode_frame<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let payload = serde::to_bytes(value);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&NET_MAGIC);
    out.extend_from_slice(&RPC_WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = kairos_store::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate a complete frame (magic, version, length, CRC) and decode
/// its payload. Never panics on malformed input.
pub fn decode_frame<T: Deserialize>(bytes: &[u8]) -> Result<T, NetError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(NetError::Truncated);
    }
    if bytes[..4] != NET_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice"));
    if version != RPC_WIRE_VERSION {
        return Err(NetError::UnsupportedVersion {
            found: version,
            expected: RPC_WIRE_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("sized slice"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(NetError::Oversized(payload_len));
    }
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64));
    if expected_total != Some(bytes.len() as u64) {
        return Err(NetError::Truncated);
    }
    let body_end = bytes.len() - TRAILER_LEN;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().expect("sized slice"));
    if kairos_store::crc32(&bytes[..body_end]) != stored_crc {
        return Err(NetError::ChecksumMismatch);
    }
    serde::from_bytes(&bytes[HEADER_LEN..body_end]).map_err(NetError::Decode)
}

/// Write one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Read one complete frame from a blocking stream: header first (fixed
/// 16 bytes → payload length), then payload + CRC, then full validation.
/// Returns the whole validated frame so callers can decode (or forward)
/// it. The length is sanity-capped *before* the payload read, so a
/// damaged prefix cannot make the reader allocate or block unboundedly.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    read_frame_with_trailer(r, 0)
}

/// [`read_frame`] for streams whose frames carry `extra` trailer bytes
/// *after* the CRC — the keyed-auth tag (see [`crate::auth`]). The CRC
/// still covers exactly the header + payload; the extra trailer is read
/// but left for the auth layer to verify, so framing stays recoverable
/// from the byte stream whether or not a key is configured.
pub fn read_frame_with_trailer(r: &mut impl Read, extra: usize) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != NET_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("sized slice"));
    if version != RPC_WIRE_VERSION {
        return Err(NetError::UnsupportedVersion {
            found: version,
            expected: RPC_WIRE_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("sized slice"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(NetError::Oversized(payload_len));
    }
    let rest = payload_len as usize + TRAILER_LEN + extra;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + rest, 0);
    r.read_exact(&mut frame[HEADER_LEN..])?;
    let body_end = HEADER_LEN + payload_len as usize;
    let crc_bytes: [u8; TRAILER_LEN] = frame[body_end..body_end + TRAILER_LEN]
        .try_into()
        .expect("sized slice");
    if kairos_store::crc32(&frame[..body_end]) != u32::from_le_bytes(crc_bytes) {
        return Err(NetError::ChecksumMismatch);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_stream() {
        let frame = encode_frame(&(String::from("tenant"), 7u64));
        let mut stream: &[u8] = &frame;
        let read = read_frame(&mut stream).expect("valid frame reads");
        assert_eq!(read, frame);
        let back: (String, u64) = decode_frame(&read).expect("decodes");
        assert_eq!(back, (String::from("tenant"), 7));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_reading() {
        let mut frame = encode_frame(&1u8);
        frame[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut stream: &[u8] = &frame;
        assert!(matches!(
            read_frame(&mut stream),
            Err(NetError::Oversized(_))
        ));
        assert!(matches!(
            decode_frame::<u8>(&frame),
            Err(NetError::Oversized(_))
        ));
    }

    #[test]
    fn store_snapshot_magic_is_rejected() {
        // A snapshot file fed to the RPC decoder must fail on magic, not
        // misdecode.
        let snap = kairos_store::encode_frame(1, &42u64);
        assert!(matches!(
            decode_frame::<u64>(&snap),
            Err(NetError::BadMagic)
        ));
    }
}
