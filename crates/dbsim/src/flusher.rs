//! Adaptive dirty-page flusher (InnoDB-style).
//!
//! Three pressures decide how many pages to write back each tick:
//!
//! 1. **Adaptive** — proportional to how close the dirty fraction is to its
//!    ceiling, so sustained update load reaches a steady state where flush
//!    rate equals the *newly-dirtied* page rate. Coalescing — many row
//!    updates landing on an already-dirty page — is why disk I/O grows
//!    sub-linearly with update throughput (§4.1, point 2).
//! 2. **Checkpoint** — when the log fills, flushing becomes urgent
//!    (MySQL's periodic latency spikes in §7.2).
//! 3. **Idle** — "DBMSs typically exploit unused disk bandwidth to flush
//!    dirty buffer pool pages back to disk whenever the disk is
//!    underutilized" (§4.1, point 1). This early flushing shortens the
//!    coalescing window, which is precisely why summing the *observed*
//!    standalone disk rates over-estimates the consolidated demand — the
//!    effect Kairos's disk model corrects (up to 32× in Fig 6).

/// Flusher tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct FlusherConfig {
    /// Hard ceiling on write-back pages/second (innodb_io_capacity-like;
    /// should reflect the device's sorted write-back ability).
    pub max_io_pages_per_sec: f64,
    /// Dirty fraction at which adaptive flushing reaches max rate.
    pub max_dirty_fraction: f64,
    /// Log fill fraction above which checkpoint pressure kicks in.
    pub checkpoint_threshold: f64,
    /// 0 disables idle flushing; 1 uses all idle device headroom.
    pub idle_aggressiveness: f64,
    /// Bound on how long a page may stay dirty (checkpoint age / recovery
    /// time target). Flushing at `dirty/T` keeps mean residence near `T`,
    /// which produces the classic coalescing law
    /// `flush_rate = Y / (1 + Y·T/P)` — the working-set-size dependence of
    /// Fig 4.
    pub max_residence_secs: f64,
}

impl Default for FlusherConfig {
    fn default() -> FlusherConfig {
        FlusherConfig {
            max_io_pages_per_sec: 2000.0,
            max_dirty_fraction: 0.75,
            checkpoint_threshold: 0.75,
            idle_aggressiveness: 0.85,
            max_residence_secs: 20.0,
        }
    }
}

/// The flusher's decision for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushDecision {
    /// Pages to attempt to write back this tick.
    pub target_pages: f64,
    /// Whether checkpoint pressure drove the decision.
    pub checkpointing: bool,
}

/// Adaptive flusher state machine.
#[derive(Debug, Clone)]
pub struct Flusher {
    config: FlusherConfig,
    /// Disk utilization observed last tick (feedback for idle flushing).
    last_disk_utilization: f64,
}

impl Flusher {
    pub fn new(config: FlusherConfig) -> Flusher {
        Flusher {
            config,
            last_disk_utilization: 0.0,
        }
    }

    pub fn config(&self) -> &FlusherConfig {
        &self.config
    }

    /// Feedback from the disk device after each tick.
    pub fn observe_disk_utilization(&mut self, utilization: f64) {
        self.last_disk_utilization = utilization.clamp(0.0, 1.0);
    }

    /// Decide the write-back target for a tick of `dt` seconds.
    ///
    /// `dirty_pages` and `pool_pages` describe the buffer pool;
    /// `log_fill` is the log's fill fraction since the last checkpoint.
    pub fn decide(
        &self,
        dt: f64,
        dirty_pages: f64,
        pool_pages: f64,
        log_fill: f64,
    ) -> FlushDecision {
        let cfg = &self.config;
        let dirty_fraction = if pool_pages > 0.0 {
            dirty_pages / pool_pages
        } else {
            0.0
        };
        let dirty_pressure = (dirty_fraction / cfg.max_dirty_fraction).clamp(0.0, 1.0);
        // Quadratic ramp: gentle when mostly clean, hard near the ceiling.
        let adaptive = cfg.max_io_pages_per_sec * dirty_pressure * dirty_pressure;

        // Residence bound: drain the dirty set within max_residence_secs
        // (checkpoint-age flushing). This is what limits coalescing and
        // couples write-back volume to the working-set size.
        let age = dirty_pages / cfg.max_residence_secs.max(1e-9);

        let checkpointing = log_fill > cfg.checkpoint_threshold;
        let checkpoint = if checkpointing {
            let urgency =
                ((log_fill - cfg.checkpoint_threshold) / (1.0 - cfg.checkpoint_threshold)).min(1.0);
            cfg.max_io_pages_per_sec * (0.5 + 0.5 * urgency)
        } else {
            0.0
        };

        let headroom = (1.0 - self.last_disk_utilization).max(0.0);
        let idle = cfg.max_io_pages_per_sec * headroom * cfg.idle_aggressiveness;

        let rate = adaptive
            .max(age)
            .max(checkpoint)
            .max(idle)
            .min(cfg.max_io_pages_per_sec);
        FlushDecision {
            target_pages: rate * dt,
            checkpointing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOL: f64 = 10_000.0;

    fn flusher() -> Flusher {
        Flusher::new(FlusherConfig::default())
    }

    #[test]
    fn idle_disk_flushes_aggressively() {
        let mut f = flusher();
        f.observe_disk_utilization(0.0);
        let d = f.decide(1.0, 0.01 * POOL, POOL, 0.0);
        // Nearly all of max_io despite tiny dirty fraction.
        assert!(d.target_pages > 0.8 * f.config().max_io_pages_per_sec * 0.85);
        assert!(!d.checkpointing);
    }

    #[test]
    fn busy_disk_defers_flushing_when_mostly_clean() {
        let mut f = flusher();
        f.observe_disk_utilization(0.95);
        let d = f.decide(1.0, 0.05 * POOL, POOL, 0.0);
        assert!(
            d.target_pages < 0.1 * f.config().max_io_pages_per_sec,
            "busy disk + clean pool should barely flush, got {}",
            d.target_pages
        );
    }

    #[test]
    fn dirty_pressure_overrides_busy_disk() {
        let mut f = flusher();
        f.observe_disk_utilization(1.0);
        let d = f.decide(1.0, 0.75 * POOL, POOL, 0.0);
        assert!((d.target_pages - f.config().max_io_pages_per_sec).abs() < 1e-6);
    }

    #[test]
    fn adaptive_ramp_is_convex() {
        let mut f = flusher();
        f.observe_disk_utilization(1.0); // suppress idle term
        let lo = f.decide(1.0, 0.2 * POOL, POOL, 0.0).target_pages;
        let mid = f.decide(1.0, 0.4 * POOL, POOL, 0.0).target_pages;
        let hi = f.decide(1.0, 0.6 * POOL, POOL, 0.0).target_pages;
        assert!(hi - mid > mid - lo, "quadratic ramp expected");
    }

    #[test]
    fn residence_bound_scales_with_dirty_count_not_fraction() {
        // Same 10% dirty fraction, pools of different sizes: the age term
        // must flush proportionally to the absolute dirty page count.
        let mut f = flusher();
        f.observe_disk_utilization(1.0); // suppress idle term
        let small = f.decide(1.0, 1_000.0, 10_000.0, 0.0).target_pages;
        let large = f.decide(1.0, 10_000.0, 100_000.0, 0.0).target_pages;
        assert!(
            large > small * 5.0,
            "age flushing must track dirty count: {small} vs {large}"
        );
    }

    #[test]
    fn checkpoint_pressure_triggers_above_threshold() {
        let mut f = flusher();
        f.observe_disk_utilization(1.0);
        let below = f.decide(1.0, 0.1 * POOL, POOL, 0.7);
        assert!(!below.checkpointing);
        let above = f.decide(1.0, 0.1 * POOL, POOL, 0.9);
        assert!(above.checkpointing);
        assert!(above.target_pages > below.target_pages * 3.0);
    }

    #[test]
    fn target_never_exceeds_max_io() {
        let mut f = flusher();
        f.observe_disk_utilization(0.0);
        let d = f.decide(1.0, POOL, POOL, 1.0);
        assert!(d.target_pages <= f.config().max_io_pages_per_sec + 1e-9);
    }

    #[test]
    fn target_scales_with_dt() {
        let f = flusher();
        let short = f.decide(0.1, 0.5 * POOL, POOL, 0.0).target_pages;
        let long = f.decide(1.0, 0.5 * POOL, POOL, 0.0).target_pages;
        assert!((long / short - 10.0).abs() < 1e-6);
    }
}
