//! Figure 2 — Buffer Pool Gauging: physical page reads/sec as the probe
//! table steals an increasing share of the buffer pool, for a MySQL-style
//! (O_DIRECT, 953 MB pool) and a PostgreSQL-style (953 MB shared buffers +
//! 1 GB OS cache) configuration running TPC-C at 5 warehouses.
//!
//! Expected shape: reads stay near zero until 30–40 % of the pool is
//! stolen, then rise sharply — the remaining memory is the working set.

use kairos_bench::{print_table, quick, section};
use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::{BufferGauge, GaugeParams, GaugeStep, SimGaugeEnv};
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{Driver, TpccWorkload};

fn trace_config(label: &str, dbms: DbmsConfig, warehouses: u32, tps: f64) -> Vec<GaugeStep> {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(dbms));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(TpccWorkload::new(warehouses, tps)));
    let db = driver.bindings()[0].handle.db;
    driver.warmup(&mut host, 15.0);

    let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
    let gauge = BufferGauge::new(GaugeParams {
        read_wait_secs: 1.0,
        scans_per_insert: 2,
        ..Default::default()
    });
    let step_pages = if quick() { 2048 } else { 1024 };
    let steps = gauge.trace(&mut env, step_pages, 0.5);
    println!("[{label}] traced {} probe steps", steps.len());
    steps
}

fn main() {
    section("Figure 2: buffer-pool gauging, TPC-C 5 warehouses");

    let mysql = trace_config("mysql", DbmsConfig::mysql(Bytes::mib(953)), 5, 100.0);
    let postgres = trace_config(
        "postgres",
        DbmsConfig::postgres(Bytes::mib(953), Bytes::mib(1024)),
        5,
        100.0,
    );

    section("portion of buffer pool stolen (%) vs disk reads (pages/sec)");
    let buckets = 20usize;
    let mut rows = Vec::new();
    for b in 0..buckets {
        let lo = b as f64 * 0.5 / buckets as f64;
        let hi = (b + 1) as f64 * 0.5 / buckets as f64;
        let pick = |steps: &[GaugeStep]| -> String {
            let vals: Vec<f64> = steps
                .iter()
                .filter(|s| s.stolen_fraction >= lo && s.stolen_fraction < hi)
                .map(|s| s.reads_per_sec)
                .collect();
            if vals.is_empty() {
                "-".into()
            } else {
                format!("{:.1}", vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        rows.push(vec![
            format!("{:.0}", hi * 100.0),
            pick(&mysql),
            pick(&postgres),
        ]);
    }
    print_table(&["stolen %", "mysql reads/s", "postgres reads/s"], &rows);

    // Knee detection: last stolen fraction with reads below 25 pages/s.
    for (label, steps) in [("mysql", &mysql), ("postgres", &postgres)] {
        let knee = steps
            .iter()
            .take_while(|s| s.reads_per_sec < 25.0)
            .map(|s| s.stolen_fraction)
            .fold(0.0, f64::max);
        println!(
            "[{label}] stealable before reads rise: {:.0}% of pool (paper: 30-40%)",
            knee * 100.0
        );
    }
}
