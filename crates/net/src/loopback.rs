//! The deterministic in-memory transport.
//!
//! Endpoints live in a shared registry; a [`Conn::call`] dispatches the
//! request frame to the registered handler synchronously on the calling
//! thread, so delivery order is exactly call order — the property the
//! loopback-vs-in-process equivalence tests lean on (no threads, no
//! queues, no timing).
//!
//! Faults are injectable per endpoint, all from explicit state plus one
//! seeded [`SplitMix64`] stream (so failure tests replay exactly under
//! `KAIROS_TEST_SEED`):
//!
//! * **partition** — the endpoint becomes unreachable until healed
//!   (models a dead or isolated node; heartbeat misses accumulate);
//! * **drop** — the next N calls to the endpoint vanish
//!   ([`NetError::Dropped`] — models transient loss);
//! * **corrupt** — the next call's request frame has one seeded bit
//!   flipped in flight (models wire damage; the server's frame
//!   validation must reject it).

use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use kairos_types::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct LoopbackState {
    endpoints: BTreeMap<String, Handler>,
    partitioned: BTreeSet<String>,
    drop_next: BTreeMap<String, u64>,
    corrupt_next: BTreeMap<String, u64>,
    /// Per endpoint: corrupt the next `n` frames whose payload tag (the
    /// request enum's variant index, bytes 16..20 of the frame) matches —
    /// how a test damages exactly the `Admit` of a handshake while every
    /// other RPC flows clean.
    corrupt_matching: BTreeMap<String, (u32, u64)>,
}

/// The in-memory transport. `Clone` shares the registry (and the fault
/// plan), so tests hold one handle while nodes hold others.
#[derive(Clone)]
pub struct LoopbackTransport {
    state: Arc<Mutex<LoopbackState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl Default for LoopbackTransport {
    fn default() -> LoopbackTransport {
        LoopbackTransport::new()
    }
}

impl LoopbackTransport {
    pub fn new() -> LoopbackTransport {
        LoopbackTransport::with_seed(0x100B_BAC4)
    }

    /// Seed only feeds fault injection (corruption bit positions); a
    /// fault-free loopback is deterministic regardless.
    pub fn with_seed(seed: u64) -> LoopbackTransport {
        LoopbackTransport {
            state: Arc::new(Mutex::new(LoopbackState::default())),
            rng: Arc::new(Mutex::new(SplitMix64::new(seed))),
        }
    }

    /// Make `endpoint` unreachable (calls fail with
    /// [`NetError::Unreachable`]) until [`LoopbackTransport::heal`].
    pub fn partition(&self, endpoint: &str) {
        self.state
            .lock()
            .expect("loopback state lock")
            .partitioned
            .insert(endpoint.to_string());
    }

    /// Undo a [`LoopbackTransport::partition`].
    pub fn heal(&self, endpoint: &str) {
        self.state
            .lock()
            .expect("loopback state lock")
            .partitioned
            .remove(endpoint);
    }

    /// Drop the next `n` calls to `endpoint` ([`NetError::Dropped`]).
    pub fn drop_next_calls(&self, endpoint: &str, n: u64) {
        self.state
            .lock()
            .expect("loopback state lock")
            .drop_next
            .insert(endpoint.to_string(), n);
    }

    /// Flip one seeded bit in the next `n` request frames sent to
    /// `endpoint` — in-flight corruption the server must reject.
    pub fn corrupt_next_calls(&self, endpoint: &str, n: u64) {
        self.state
            .lock()
            .expect("loopback state lock")
            .corrupt_next
            .insert(endpoint.to_string(), n);
    }

    /// Flip one seeded bit in the next `n` request frames to `endpoint`
    /// **whose payload tag matches** (see [`crate::rpc::wire_tag`]) —
    /// targeted mid-handshake damage: reservations and ticks flow clean,
    /// the `Admit` arrives broken.
    pub fn corrupt_next_calls_matching(&self, endpoint: &str, tag: u32, n: u64) {
        self.state
            .lock()
            .expect("loopback state lock")
            .corrupt_matching
            .insert(endpoint.to_string(), (tag, n));
    }

    /// Endpoints currently served (diagnostics).
    pub fn endpoints(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("loopback state lock")
            .endpoints
            .keys()
            .cloned()
            .collect()
    }
}

impl Transport for LoopbackTransport {
    fn serve(&self, endpoint: &str, handler: Handler) -> Result<ServerHandle, NetError> {
        let mut state = self.state.lock().expect("loopback state lock");
        if state.endpoints.contains_key(endpoint) {
            return Err(NetError::Protocol(format!(
                "endpoint {endpoint} already served"
            )));
        }
        state.endpoints.insert(endpoint.to_string(), handler);
        let registry = self.state.clone();
        let unbind = endpoint.to_string();
        Ok(ServerHandle::new(endpoint.to_string(), move || {
            registry
                .lock()
                .expect("loopback state lock")
                .endpoints
                .remove(&unbind);
        }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Conn>, NetError> {
        // Connections are lazy (like TCP reconnection logic, resolution
        // happens per call), but fail fast here if nothing is served so
        // misconfigured tests surface immediately.
        let state = self.state.lock().expect("loopback state lock");
        if !state.endpoints.contains_key(endpoint) {
            return Err(NetError::Unreachable(endpoint.to_string()));
        }
        Ok(Box::new(LoopbackConn {
            endpoint: endpoint.to_string(),
            state: self.state.clone(),
            rng: self.rng.clone(),
        }))
    }
}

struct LoopbackConn {
    endpoint: String,
    state: Arc<Mutex<LoopbackState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl Conn for LoopbackConn {
    fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        // Resolve faults and the handler under the registry lock, then
        // release it before dispatching — the handler may itself hold
        // long-running locks (a shard mid-solve) and must not serialize
        // against registry mutations.
        let (handler, corrupt) = {
            let mut state = self.state.lock().expect("loopback state lock");
            if state.partitioned.contains(&self.endpoint) {
                return Err(NetError::Unreachable(self.endpoint.clone()));
            }
            if let Some(n) = state.drop_next.get_mut(&self.endpoint) {
                if *n > 0 {
                    *n -= 1;
                    return Err(NetError::Dropped);
                }
            }
            let mut corrupt = match state.corrupt_next.get_mut(&self.endpoint) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            };
            if !corrupt && frame.len() >= 20 {
                let tag = u32::from_le_bytes(frame[16..20].try_into().expect("sized slice"));
                if let Some((want, n)) = state.corrupt_matching.get_mut(&self.endpoint) {
                    if *want == tag && *n > 0 {
                        *n -= 1;
                        corrupt = true;
                    }
                }
            }
            let handler = state
                .endpoints
                .get(&self.endpoint)
                .cloned()
                .ok_or_else(|| NetError::Unreachable(self.endpoint.clone()))?;
            (handler, corrupt)
        };
        let mut owned;
        let frame = if corrupt {
            owned = frame.to_vec();
            let mut rng = self.rng.lock().expect("loopback rng lock");
            let byte = rng.next_range(owned.len() as u64) as usize;
            let bit = rng.next_range(8) as u8;
            owned[byte] ^= 1 << bit;
            owned.as_slice()
        } else {
            frame
        };
        let mut handler = handler.lock().expect("loopback handler lock");
        Ok(handler(frame))
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;

    fn echo_handler() -> Handler {
        Arc::new(Mutex::new(|frame: &[u8]| frame.to_vec()))
    }

    #[test]
    fn serve_call_and_unbind() {
        let t = LoopbackTransport::new();
        let handle = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        let msg = frame::encode_frame(&7u64);
        assert_eq!(conn.call(&msg).expect("echoes"), msg);
        handle.stop();
        assert!(matches!(conn.call(&msg), Err(NetError::Unreachable(_))));
    }

    #[test]
    fn partition_and_heal() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.partition("a");
        assert!(matches!(conn.call(b"x"), Err(NetError::Unreachable(_))));
        t.heal("a");
        assert!(conn.call(b"x").is_ok());
    }

    #[test]
    fn drops_are_counted() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.drop_next_calls("a", 2);
        assert!(matches!(conn.call(b"x"), Err(NetError::Dropped)));
        assert!(matches!(conn.call(b"x"), Err(NetError::Dropped)));
        assert!(conn.call(b"x").is_ok());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let t = LoopbackTransport::new();
        let _h = t.serve("a", echo_handler()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        t.corrupt_next_calls("a", 1);
        let msg = frame::encode_frame(&(String::from("x"), 3u32));
        let echoed = conn.call(&msg).expect("delivered, damaged");
        let diff: u32 = msg
            .iter()
            .zip(&echoed)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped in flight");
        assert_eq!(conn.call(&msg).expect("clean again"), msg);
    }
}
