//! The consolidation problem (§5).
//!
//! Inputs: "a list of machines with disk, memory, and CPU capacities, and
//! a collection of workload profiles specifying the resource utilization
//! of each resource as a time series sampled at regular intervals", plus
//! replication counts and pinning.
//!
//! Targets are homogeneous (the paper consolidates onto identical
//! 12-core / 96 GB machines); heterogeneous *sources* are handled upstream
//! by CPU standardization (§6).

use std::sync::{Arc, OnceLock};

/// How disk demands combine on one machine — the non-linear piece the
/// solver treats as a black box (implemented by `kairos-core` with the
/// fitted [`kairos_diskmodel::DiskModel`], or by [`LinearDiskCombiner`]
/// for the naive baseline).
pub trait DiskCombiner: Send + Sync {
    /// Utilization of a machine's disk running the combined demand
    /// (aggregate working set, aggregate update rate); 1.0 = saturated.
    fn utilization(&self, ws_bytes: f64, rows_per_sec: f64) -> f64;
}

/// Naive additive disk model: every updated row costs a fixed number of
/// bytes against a fixed bandwidth — what "summing iostat" assumes.
#[derive(Debug, Clone)]
pub struct LinearDiskCombiner {
    pub bytes_per_row: f64,
    pub max_write_bytes_per_sec: f64,
}

impl Default for LinearDiskCombiner {
    fn default() -> LinearDiskCombiner {
        LinearDiskCombiner {
            bytes_per_row: 1200.0,
            max_write_bytes_per_sec: 25e6,
        }
    }
}

impl DiskCombiner for LinearDiskCombiner {
    fn utilization(&self, _ws_bytes: f64, rows_per_sec: f64) -> f64 {
        rows_per_sec * self.bytes_per_row / self.max_write_bytes_per_sec
    }
}

/// One workload's resource needs over the planning horizon. All series
/// share the problem's window count (shorter series read as zero).
///
/// Serializable: specs are the *inputs* half of a problem snapshot
/// (machine class, headroom and the disk combiner come from the engine
/// that rebuilds the problem), so a checkpointed control plane can
/// re-construct bit-identical solves after a restart.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    pub name: String,
    /// CPU per window, standardized cores.
    pub cpu: Vec<f64>,
    /// RAM per window, bytes (gauged working set + overhead).
    pub ram: Vec<f64>,
    /// Disk-model working set per window, bytes.
    pub ws: Vec<f64>,
    /// Disk-model row-update rate per window, rows/s.
    pub rate: Vec<f64>,
    /// Number of replicas to place on distinct machines (`R_i`).
    pub replicas: u32,
    /// Machine index this workload (all replicas' primary) must occupy.
    pub pinned: Option<usize>,
}

impl WorkloadSpec {
    /// A constant-load workload over `windows` windows.
    pub fn flat(
        name: impl Into<String>,
        windows: usize,
        cpu: f64,
        ram: f64,
        ws: f64,
        rate: f64,
    ) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            cpu: vec![cpu; windows],
            ram: vec![ram; windows],
            ws: vec![ws; windows],
            rate: vec![rate; windows],
            replicas: 1,
            pinned: None,
        }
    }

    fn at(series: &[f64], t: usize) -> f64 {
        series.get(t).copied().unwrap_or(0.0)
    }

    pub fn cpu_at(&self, t: usize) -> f64 {
        Self::at(&self.cpu, t)
    }
    pub fn ram_at(&self, t: usize) -> f64 {
        Self::at(&self.ram, t)
    }
    pub fn ws_at(&self, t: usize) -> f64 {
        Self::at(&self.ws, t)
    }
    pub fn rate_at(&self, t: usize) -> f64 {
        Self::at(&self.rate, t)
    }
}

/// Homogeneous target-machine capacities.
#[derive(Debug, Clone, Copy)]
pub struct TargetMachine {
    pub cpu_cores: f64,
    pub ram_bytes: f64,
}

impl TargetMachine {
    /// The paper's consolidation target: 12 cores, 96 GB.
    pub fn paper_target() -> TargetMachine {
        TargetMachine {
            cpu_cores: 12.0,
            ram_bytes: 96.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }
}

/// Relative balancing weights in the objective's linear combination of
/// resources ("weighting constants on each term", §6).
#[derive(Debug, Clone, Copy)]
pub struct ResourceWeights {
    pub cpu: f64,
    pub ram: f64,
    pub disk: f64,
}

impl Default for ResourceWeights {
    fn default() -> ResourceWeights {
        ResourceWeights {
            cpu: 0.5,
            ram: 0.25,
            disk: 0.25,
        }
    }
}

impl ResourceWeights {
    pub fn total(&self) -> f64 {
        self.cpu + self.ram + self.disk
    }
}

/// Migration awareness for online re-solves: a baseline placement plus a
/// per-move objective penalty. With this set, the optimizer trades load
/// balance against placement churn — plans that move fewer workloads off
/// their current machines score better, so small drifts produce small
/// placement deltas instead of wholesale reshuffles.
#[derive(Debug, Clone)]
pub struct MigrationCost {
    /// `baseline[slot_index]` = machine the slot currently occupies;
    /// `None` marks a slot with no current placement (a newly arrived
    /// workload), which is free to place anywhere.
    pub baseline: Vec<Option<usize>>,
    /// Objective penalty per slot moved off its baseline machine. Must be
    /// small relative to the infeasibility penalty so migration cost never
    /// makes a feasible plan look infeasible: one extra machine costs
    /// ≥ 1.0 in the base objective, so values in `[0.05, 1.0]` mean
    /// "prefer up to `1/cost` fewer moves over saving a machine".
    pub cost_per_move: f64,
}

impl MigrationCost {
    /// Moves an assignment makes relative to the baseline. Slots beyond
    /// the baseline (new workloads) never count as moves.
    pub fn moves(&self, machine_of: &[usize]) -> usize {
        machine_of
            .iter()
            .zip(self.baseline.iter())
            .filter(|&(&m, &b)| b.is_some_and(|b| b != m))
            .count()
    }
}

/// The full problem instance.
#[derive(Clone)]
pub struct ConsolidationProblem {
    pub workloads: Vec<WorkloadSpec>,
    pub machine: TargetMachine,
    /// Upper bound on machines (typically the source-server count).
    pub max_machines: usize,
    /// Utilization ceiling per resource ("can be < 100% to allow for some
    /// headroom", §5). E.g. 0.9 leaves 10% margin.
    pub headroom: f64,
    /// Planning-horizon window count.
    pub windows: usize,
    pub weights: ResourceWeights,
    pub disk: Arc<dyn DiskCombiner>,
    /// Pairs of workload indices that must not share a machine (beyond
    /// the implicit replica anti-affinity).
    pub anti_affinity: Vec<(usize, usize)>,
    /// Optional migration-cost term for online re-solves (None = the
    /// original one-shot objective).
    pub migration: Option<MigrationCost>,
    /// Lazily built structure-of-arrays view of every slot's load series
    /// (see [`SlotSeries`]); shared by `evaluate`, the local search, the
    /// greedy packer and DIRECT so the per-window series are materialized
    /// exactly once per problem instance. Mutating `workloads` directly
    /// after the first evaluation invalidates it — use the `with_*`
    /// builders (which construct fresh problems) or mutate before
    /// evaluating; [`SlotSeries::coherent_with`] checks the invariant.
    slot_cache: OnceLock<Arc<SlotSeries>>,
}

/// Structure-of-arrays cache of per-slot load series — the solver's hot
/// data, laid out for linear scans.
///
/// The re-solve hot path (`evaluate` from DIRECT's inner loop, the local
/// search's machine-sum rebuilds, greedy reservation probes) previously
/// re-derived each workload's per-window demand through bounds-checked
/// `cpu_at(t)`-style lookups and re-expanded the slot list on every call.
/// This cache flattens everything once per problem: series are stored per
/// *slot* (replicas repeat their workload's series) in `slot × window`
/// row-major order, alongside per-slot extrema used by the local search's
/// lower-bound pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSeries {
    /// One entry per placement slot (same order as
    /// [`ConsolidationProblem::slots`]).
    pub slots: Vec<Slot>,
    pub windows: usize,
    /// `cpu[slot * windows + t]`, and likewise below.
    pub cpu: Vec<f64>,
    pub ram: Vec<f64>,
    pub ws: Vec<f64>,
    pub rate: Vec<f64>,
    /// Per-slot extrema over the horizon (pruning and greedy keys).
    pub cpu_min: Vec<f64>,
    pub cpu_max: Vec<f64>,
    pub ram_min: Vec<f64>,
    pub ram_max: Vec<f64>,
    pub ws_max: Vec<f64>,
    pub rate_max: Vec<f64>,
}

impl SlotSeries {
    /// Materialize the cache for `problem`.
    pub fn build(problem: &ConsolidationProblem) -> SlotSeries {
        let slots = problem.slots();
        let windows = problem.windows;
        let n = slots.len();
        let mut out = SlotSeries {
            slots,
            windows,
            cpu: Vec::with_capacity(n * windows),
            ram: Vec::with_capacity(n * windows),
            ws: Vec::with_capacity(n * windows),
            rate: Vec::with_capacity(n * windows),
            cpu_min: Vec::with_capacity(n),
            cpu_max: Vec::with_capacity(n),
            ram_min: Vec::with_capacity(n),
            ram_max: Vec::with_capacity(n),
            ws_max: Vec::with_capacity(n),
            rate_max: Vec::with_capacity(n),
        };
        for i in 0..n {
            let w = &problem.workloads[out.slots[i].workload];
            let mut ext = [
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            let mut ws_mx = f64::NEG_INFINITY;
            let mut rate_mx = f64::NEG_INFINITY;
            for t in 0..windows {
                let (c, r, s, q) = (w.cpu_at(t), w.ram_at(t), w.ws_at(t), w.rate_at(t));
                out.cpu.push(c);
                out.ram.push(r);
                out.ws.push(s);
                out.rate.push(q);
                ext[0] = ext[0].min(c);
                ext[1] = ext[1].max(c);
                ext[2] = ext[2].min(r);
                ext[3] = ext[3].max(r);
                ws_mx = ws_mx.max(s);
                rate_mx = rate_mx.max(q);
            }
            out.cpu_min.push(ext[0]);
            out.cpu_max.push(ext[1]);
            out.ram_min.push(ext[2]);
            out.ram_max.push(ext[3]);
            out.ws_max.push(ws_mx);
            out.rate_max.push(rate_mx);
        }
        out
    }

    /// One slot's CPU series over the horizon.
    #[inline]
    pub fn cpu_of(&self, slot: usize) -> &[f64] {
        &self.cpu[slot * self.windows..(slot + 1) * self.windows]
    }

    #[inline]
    pub fn ram_of(&self, slot: usize) -> &[f64] {
        &self.ram[slot * self.windows..(slot + 1) * self.windows]
    }

    #[inline]
    pub fn ws_of(&self, slot: usize) -> &[f64] {
        &self.ws[slot * self.windows..(slot + 1) * self.windows]
    }

    #[inline]
    pub fn rate_of(&self, slot: usize) -> &[f64] {
        &self.rate[slot * self.windows..(slot + 1) * self.windows]
    }

    /// Coherence check: does this cache still describe `problem`
    /// bit-for-bit? Rebuilds from scratch and compares — O(slots ×
    /// windows), intended for tests and debug assertions, not hot paths.
    pub fn coherent_with(&self, problem: &ConsolidationProblem) -> bool {
        *self == SlotSeries::build(problem)
    }
}

impl std::fmt::Debug for ConsolidationProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsolidationProblem")
            .field("workloads", &self.workloads.len())
            .field("max_machines", &self.max_machines)
            .field("windows", &self.windows)
            .field("headroom", &self.headroom)
            .finish()
    }
}

/// A placement slot: one replica of one workload. The solver's decision
/// variables are slots, not workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    pub workload: usize,
    pub replica: u32,
}

impl ConsolidationProblem {
    pub fn new(
        workloads: Vec<WorkloadSpec>,
        machine: TargetMachine,
        max_machines: usize,
        disk: Arc<dyn DiskCombiner>,
    ) -> ConsolidationProblem {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert!(max_machines >= 1, "need at least one machine");
        let windows = workloads
            .iter()
            .map(|w| {
                w.cpu
                    .len()
                    .max(w.ram.len())
                    .max(w.ws.len())
                    .max(w.rate.len())
            })
            .max()
            .unwrap_or(1)
            .max(1);
        ConsolidationProblem {
            workloads,
            machine,
            max_machines,
            headroom: 0.95,
            windows,
            weights: ResourceWeights::default(),
            disk,
            anti_affinity: Vec::new(),
            migration: None,
            slot_cache: OnceLock::new(),
        }
    }

    /// The structure-of-arrays slot-series cache, built on first use and
    /// shared by every evaluation of this problem instance.
    pub fn slot_series(&self) -> &Arc<SlotSeries> {
        let series = self
            .slot_cache
            .get_or_init(|| Arc::new(SlotSeries::build(self)));
        // Cheap structural guard against the one misuse the lazy cache
        // allows: mutating the pub fields (replica counts, series
        // lengths) after an evaluation has built it. Full bit-for-bit
        // value coherence is the cache_coherence property suite's job —
        // rebuilding here would defeat the cache.
        debug_assert_eq!(
            series.slots.len(),
            self.slots().len(),
            "slot cache stale: workloads/replicas mutated after first evaluation"
        );
        debug_assert_eq!(
            series.windows, self.windows,
            "slot cache stale: windows mutated after first evaluation"
        );
        series
    }

    pub fn with_headroom(mut self, headroom: f64) -> ConsolidationProblem {
        assert!((0.0..=1.0).contains(&headroom));
        self.headroom = headroom;
        self
    }

    pub fn with_weights(mut self, weights: ResourceWeights) -> ConsolidationProblem {
        self.weights = weights;
        self
    }

    pub fn with_anti_affinity(mut self, pairs: Vec<(usize, usize)>) -> ConsolidationProblem {
        self.anti_affinity = pairs;
        self
    }

    /// Penalize moves away from `baseline` (one entry per slot, `None`
    /// for new slots) by `cost_per_move` each. See [`MigrationCost`].
    pub fn with_migration(
        mut self,
        baseline: Vec<Option<usize>>,
        cost_per_move: f64,
    ) -> ConsolidationProblem {
        assert!(cost_per_move >= 0.0, "migration cost must be non-negative");
        // Keep the worst-case migration total far below the infeasibility
        // penalty (1e4): migration preference must never flip a feasible
        // plan above an infeasible one.
        assert!(
            cost_per_move * self.slots().len() as f64 <= 1e3,
            "migration cost would rival the infeasibility penalty"
        );
        self.migration = Some(MigrationCost {
            baseline,
            cost_per_move,
        });
        self
    }

    /// Extract the shard-local sub-problem over `keep` (workload indices
    /// into `self.workloads`, in the order the sub-problem should list
    /// them). This is how a sharded control plane turns one global
    /// problem into independent per-shard solves:
    ///
    /// * workloads outside `keep` disappear;
    /// * anti-affinity pairs survive only when both endpoints stay in the
    ///   shard (cross-shard pairs are trivially satisfied by sharding);
    /// * the migration baseline is re-sliced per slot, so warm-started
    ///   shard re-solves keep pricing moves correctly;
    /// * `max_machines` is inherited — callers typically override it with
    ///   the shard's machine budget.
    ///
    /// # Panics
    /// Panics if `keep` is empty, contains an out-of-range index, or
    /// repeats an index.
    pub fn restrict(&self, keep: &[usize]) -> ConsolidationProblem {
        assert!(!keep.is_empty(), "a shard needs at least one workload");
        let mut seen = vec![false; self.workloads.len()];
        for &w in keep {
            assert!(w < self.workloads.len(), "workload index {w} out of range");
            assert!(!seen[w], "workload index {w} repeated");
            seen[w] = true;
        }
        // old workload index -> new index (usize::MAX = dropped).
        let mut new_of = vec![usize::MAX; self.workloads.len()];
        for (new, &old) in keep.iter().enumerate() {
            new_of[old] = new;
        }
        let workloads: Vec<WorkloadSpec> =
            keep.iter().map(|&w| self.workloads[w].clone()).collect();
        let anti_affinity: Vec<(usize, usize)> = self
            .anti_affinity
            .iter()
            .filter(|&&(a, b)| new_of[a] != usize::MAX && new_of[b] != usize::MAX)
            .map(|&(a, b)| (new_of[a], new_of[b]))
            .collect();
        let migration = self.migration.as_ref().map(|m| {
            // Slot ranges of the original problem, per workload.
            let mut start = Vec::with_capacity(self.workloads.len());
            let mut next = 0usize;
            for w in &self.workloads {
                start.push(next);
                next += w.replicas.max(1) as usize;
            }
            let mut baseline = Vec::new();
            for &w in keep {
                let n = self.workloads[w].replicas.max(1) as usize;
                for r in 0..n {
                    baseline.push(m.baseline.get(start[w] + r).copied().flatten());
                }
            }
            MigrationCost {
                baseline,
                cost_per_move: m.cost_per_move,
            }
        });
        ConsolidationProblem {
            workloads,
            machine: self.machine,
            max_machines: self.max_machines,
            headroom: self.headroom,
            windows: self.windows,
            weights: self.weights,
            disk: self.disk.clone(),
            anti_affinity,
            migration,
            slot_cache: OnceLock::new(),
        }
    }

    /// Expand workloads into placement slots (one per replica).
    pub fn slots(&self) -> Vec<Slot> {
        let mut out = Vec::new();
        for (i, w) in self.workloads.iter().enumerate() {
            for r in 0..w.replicas.max(1) {
                out.push(Slot {
                    workload: i,
                    replica: r,
                });
            }
        }
        out
    }
}

/// An assignment of slots to machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `machine_of[slot_index]` = machine index.
    pub machine_of: Vec<usize>,
}

impl Assignment {
    pub fn new(machine_of: Vec<usize>) -> Assignment {
        Assignment { machine_of }
    }

    /// Number of distinct machines used.
    pub fn machines_used(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for &m in &self.machine_of {
            seen.insert(m);
        }
        seen.len()
    }

    /// Indices of slots on each machine, keyed by machine id actually used.
    pub fn by_machine(&self) -> std::collections::BTreeMap<usize, Vec<usize>> {
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (s, &m) in self.machine_of.iter().enumerate() {
            map.entry(m).or_default().push(s);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problem() -> ConsolidationProblem {
        let w = vec![
            WorkloadSpec::flat("a", 4, 1.0, 1e9, 5e8, 100.0),
            WorkloadSpec::flat("b", 4, 2.0, 2e9, 5e8, 200.0),
        ];
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            4,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn windows_derived_from_longest_series() {
        let p = tiny_problem();
        assert_eq!(p.windows, 4);
    }

    #[test]
    fn slots_expand_replicas() {
        let mut p = tiny_problem();
        p.workloads[1].replicas = 3;
        let slots = p.slots();
        assert_eq!(slots.len(), 4);
        assert_eq!(
            slots[1],
            Slot {
                workload: 1,
                replica: 0
            }
        );
        assert_eq!(
            slots[3],
            Slot {
                workload: 1,
                replica: 2
            }
        );
    }

    #[test]
    fn series_out_of_range_reads_zero() {
        let w = WorkloadSpec::flat("a", 2, 1.0, 1e9, 5e8, 10.0);
        assert_eq!(w.cpu_at(1), 1.0);
        assert_eq!(w.cpu_at(99), 0.0);
    }

    #[test]
    fn assignment_counts_machines() {
        let a = Assignment::new(vec![0, 0, 2, 2, 2]);
        assert_eq!(a.machines_used(), 2);
        let by = a.by_machine();
        assert_eq!(by[&0], vec![0, 1]);
        assert_eq!(by[&2], vec![2, 3, 4]);
    }

    #[test]
    fn linear_disk_is_additive_in_rate() {
        let d = LinearDiskCombiner::default();
        let u1 = d.utilization(1e9, 1000.0);
        let u2 = d.utilization(2e9, 2000.0);
        assert!((u2 - 2.0 * u1).abs() < 1e-12);
    }

    #[test]
    fn restrict_extracts_shard_local_problem() {
        let w = vec![
            WorkloadSpec::flat("a", 4, 1.0, 1e9, 5e8, 100.0),
            WorkloadSpec::flat("b", 4, 2.0, 2e9, 5e8, 200.0),
            WorkloadSpec::flat("c", 4, 3.0, 3e9, 5e8, 300.0),
            WorkloadSpec::flat("d", 4, 4.0, 4e9, 5e8, 400.0),
        ];
        let mut p = ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            4,
            Arc::new(LinearDiskCombiner::default()),
        )
        .with_anti_affinity(vec![(0, 2), (1, 3)]);
        p.workloads[2].replicas = 2; // slots: a=0, b=1, c=2,3, d=4
        let p = p.with_migration(vec![Some(0), Some(1), Some(2), None, Some(3)], 0.25);

        let sub = p.restrict(&[2, 0]);
        assert_eq!(sub.workloads.len(), 2);
        assert_eq!(sub.workloads[0].name, "c");
        assert_eq!(sub.workloads[1].name, "a");
        assert_eq!(sub.windows, 4);
        // Only the (a, c) pair survives, remapped to the new indices.
        assert_eq!(sub.anti_affinity, vec![(1, 0)]);
        // Slots: c#0, c#1, a#0 — baselines re-sliced accordingly.
        let m = sub.migration.as_ref().expect("migration survives");
        assert_eq!(m.baseline, vec![Some(2), None, Some(0)]);
        assert_eq!(sub.slots().len(), 3);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn restrict_rejects_duplicates() {
        let p = tiny_problem();
        p.restrict(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_problem_rejected() {
        ConsolidationProblem::new(
            vec![],
            TargetMachine::paper_target(),
            1,
            Arc::new(LinearDiskCombiner::default()),
        );
    }
}
