//! Deterministic integration tests for the online consolidation loop:
//! (a) a stationary fleet never triggers a re-solve; (b) a synthetic load
//! spike triggers exactly one re-solve whose plan is feasible under
//! `kairos_solver::objective::evaluate`, with bounded migration churn.

use kairos_controller::prelude::*;
use kairos_controller::{scenario_stationary, ControllerConfig, TickOutcome};
use kairos_controller::{Controller, SyntheticSource};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;

fn quick_config() -> ControllerConfig {
    ControllerConfig {
        horizon: 12,
        check_every: 4,
        cooldown_ticks: 12,
        ..ControllerConfig::default()
    }
}

#[test]
fn stationary_fleet_never_resolves() {
    let report = run_scenario(&quick_config(), scenario_stationary(6, 80));
    assert!(report.initial_plan_tick.is_some(), "fleet must bootstrap");
    assert_eq!(
        report.resolves, 0,
        "stationary load must not trigger re-solves"
    );
    assert!(report.final_feasible);
    assert!(report.initial_machines >= 1);
    assert_eq!(report.final_machines, report.initial_machines);
    assert_eq!(report.total_moves, 0);
}

#[test]
fn load_spike_triggers_exactly_one_feasible_resolve() {
    // Deterministic single-drift setup driven tick-by-tick (no scenario
    // wrapper) so the test can count and inspect every outcome. Eight
    // 2-core tenants pack two machines; at tick 40 one jumps to ~6.4
    // cores, overloading its machine; the spike persists to the end so
    // exactly one re-solve happens.
    let cfg = quick_config();
    let engine = ConsolidationEngine::builder().build();
    let mut controller = Controller::new(cfg, engine);
    for i in 0..8 {
        let s = SyntheticSource::new(
            format!("w{i}"),
            300.0,
            Bytes::gib(4),
            RatePattern::Flat { tps: 200.0 },
        )
        .with_noise(0.0);
        let s = if i == 0 {
            s.then_at(40, RatePattern::Flat { tps: 640.0 })
        } else {
            s
        };
        controller.add_workload(Box::new(s));
    }

    let mut resolves = Vec::new();
    let mut initial_plan = None;
    for tick in 0..96u64 {
        match controller.tick() {
            TickOutcome::InitialPlan { machines, .. } => initial_plan = Some((tick, machines)),
            TickOutcome::Replanned(r) => resolves.push((tick, r)),
            _ => {}
        }
    }

    let (plan_tick, _machines) = initial_plan.expect("bootstrap completed");
    assert!(plan_tick < 40, "plan must land before the spike");
    assert_eq!(
        resolves.len(),
        1,
        "one persistent spike must trigger exactly one re-solve, got {:?}",
        resolves.iter().map(|(t, _)| *t).collect::<Vec<_>>()
    );
    let (resolve_tick, summary) = &resolves[0];
    assert!(*resolve_tick > 40, "re-solve must follow the spike");
    assert!(summary.feasible, "re-solved plan must be feasible");
    assert!(
        matches!(summary.reason, kairos_controller::ReplanReason::Drift(ref names) if names.contains(&"w0".to_string())),
        "the spiking workload must be the drift trigger: {:?}",
        summary.reason
    );
    assert!(summary.moves >= 1, "an overload forces at least one move");
    assert!(
        summary.churn <= 0.30,
        "migration cost must bound churn at 30%, got {:.0}%",
        summary.churn * 100.0
    );

    // The placement the controller now runs is feasible when re-evaluated
    // from scratch through solver::objective::evaluate.
    let eval = controller.verify_current().expect("planned");
    assert!(eval.feasible, "current placement must replay as feasible");
    assert_eq!(eval.violation, 0.0);
}

#[test]
fn spike_resolve_outperforms_cold_resolve_on_churn() {
    // Same spike, controller in cold-resolve measurement mode: the
    // baseline-blind solver is free to reshuffle, and on this fleet it
    // demonstrably moves more tenants than the migration-aware path.
    let run = |cold: bool| {
        let mut cfg = quick_config();
        cfg.cold_resolves = cold;
        let engine = ConsolidationEngine::builder().build();
        let mut controller = Controller::new(cfg, engine);
        for i in 0..8 {
            let s = SyntheticSource::new(
                format!("w{i}"),
                300.0,
                Bytes::gib(4),
                RatePattern::Flat {
                    tps: 200.0 + 7.0 * i as f64,
                },
            )
            .with_noise(0.0);
            let s = if i == 0 {
                s.then_at(40, RatePattern::Flat { tps: 640.0 })
            } else {
                s
            };
            controller.add_workload(Box::new(s));
        }
        let mut moves = 0usize;
        for _ in 0..96u64 {
            if let TickOutcome::Replanned(r) = controller.tick() {
                moves += r.moves;
            }
        }
        moves
    };
    let warm_moves = run(false);
    let cold_moves = run(true);
    assert!(
        warm_moves <= cold_moves,
        "migration-aware re-solve must not out-churn the cold solver: warm {warm_moves} vs cold {cold_moves}"
    );
    assert!(warm_moves >= 1, "the spike still requires movement");
}
