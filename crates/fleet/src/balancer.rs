//! The cross-shard balancer policy.
//!
//! Each shard plans itself greedily and honestly — if a flash crowd blows
//! past its machine budget, its own re-solver will happily use more
//! machines, because an overloaded-but-feasible placement beats a
//! violated one. Restoring budget compliance is the *balancer's* job:
//! watch per-shard summaries, pick donors (over budget, infeasible, or
//! failing to place), and move their heaviest tenants to the shards with
//! the most headroom through the two-phase handoff ([`crate::handoff`]).
//!
//! The policy is deliberately work-conserving and conservative:
//! reservations use the greedy packer, so a move is only made when the
//! destination certainly fits it, and donors stop shedding as soon as
//! their greedy estimate fits the budget again.

use crate::handoff::{HandoffOutcome, HandoffRecord};
use kairos_controller::{ShardController, ShardSummary, TelemetrySource, TenantHandoff};
use kairos_obs::{span, DecisionEvent, DecisionLog, SpanLog};
use kairos_types::WorkloadProfile;
use std::collections::BTreeMap;

/// Balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Machine budget per shard — the capacity constraint the balancer
    /// enforces fleet-wide (each shard's own solver is unconstrained).
    /// This is the **high watermark**: a shard becomes a donor only when
    /// it exceeds it.
    pub machines_per_shard: usize,
    /// Run a balance round every N fleet ticks (once all shards have
    /// bootstrapped).
    pub balance_every: u64,
    /// Handoff cap per round — bounds migration traffic bursts.
    pub max_moves_per_round: usize,
    /// **Low watermark**: once a donor starts shedding, it sheds until its
    /// greedy pack estimate fits this many machines, and receivers must
    /// certify admissions against it too — so a move leaves both sides
    /// with headroom below the donor trigger instead of parking them
    /// exactly at the budget (where the next drift nudges them straight
    /// back over). `0` means "same as `machines_per_shard`" (no split).
    pub low_watermark: usize,
    /// Balance rounds a tenant sits out after being probed for a handoff
    /// (completed *or* rejected). Hysteresis against ping-pong: a fleet
    /// hovering at its budget otherwise re-proposes the same tenants
    /// round after round. `0` disables the cooldown.
    pub cooldown_rounds: u64,
}

impl Default for BalancerConfig {
    fn default() -> BalancerConfig {
        BalancerConfig {
            machines_per_shard: 16,
            balance_every: 6,
            max_moves_per_round: 8,
            low_watermark: 0,
            cooldown_rounds: 2,
        }
    }
}

impl BalancerConfig {
    /// The effective shed/admit target (low watermark, capped at the
    /// budget).
    pub fn shed_target(&self) -> usize {
        if self.low_watermark == 0 {
            self.machines_per_shard
        } else {
            self.low_watermark.min(self.machines_per_shard)
        }
    }
}

/// Fault-injection gate over the balance cadence — the `fleet`-side
/// hook the chaos harness schedules "skip a balancer round" and "delay
/// a balancer round" through, shared by the in-process
/// `FleetController` and the RPC `BalancerNode` so both interpret a
/// schedule identically.
///
/// The controller asks [`admit`](BalanceGate::admit) on every tick with
/// `due` = "the cadence says a round runs now". A **skipped** round is
/// gone; a **delayed** round runs on the next tick instead (one tick
/// late, not re-scheduled onto the next cadence point). An idle gate
/// passes `due` through unchanged, so a fleet with no faults injected
/// behaves exactly as before the gate existed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BalanceGate {
    skip: u64,
    delay: u64,
    deferred: bool,
}

impl BalanceGate {
    /// Drop the next `n` due balance rounds entirely.
    pub fn skip_rounds(&mut self, n: u64) {
        self.skip += n;
    }

    /// Push each of the next `n` due balance rounds one tick later.
    pub fn delay_rounds(&mut self, n: u64) {
        self.delay += n;
    }

    /// Should a balance round run this tick? Burns at most one pending
    /// skip/delay; skip outranks delay when both are armed.
    pub fn admit(&mut self, due: bool) -> bool {
        let carried = std::mem::replace(&mut self.deferred, false);
        if due {
            if self.skip > 0 {
                self.skip -= 1;
                return carried;
            }
            if self.delay > 0 {
                self.delay -= 1;
                self.deferred = true;
                return carried;
            }
            true
        } else {
            carried
        }
    }
}

/// Is this shard a donor — i.e., must it shed load?
pub fn is_overloaded(summary: &ShardSummary, budget: usize) -> bool {
    summary.planned
        && (summary.machines_used > budget || !summary.feasible || summary.resolve_failed)
}

/// Donor shards, most-loaded first.
pub fn donor_order(summaries: &[ShardSummary], budget: usize) -> Vec<usize> {
    let mut donors: Vec<usize> = (0..summaries.len())
        .filter(|&i| is_overloaded(&summaries[i], budget))
        .collect();
    donors.sort_by_key(|&i| std::cmp::Reverse(summaries[i].machines_used));
    donors
}

/// Receiver preference for one tenant: shards with the fewest machines
/// in use first, excluding the donor and anything unplanned or itself
/// overloaded.
pub fn receiver_order(summaries: &[ShardSummary], donor: usize, budget: usize) -> Vec<usize> {
    let mut receivers: Vec<usize> = (0..summaries.len())
        .filter(|&i| i != donor && summaries[i].planned && !is_overloaded(&summaries[i], budget))
        .collect();
    receivers.sort_by_key(|&i| summaries[i].machines_used);
    receivers
}

/// A tenant mid-transfer between shards, as the balance round carries
/// it: the checksummed wire frame ([`TenantHandoff::into_wire`]'s bytes
/// — name, replicas, full rolling telemetry) plus, for in-process
/// handoffs only, the live telemetry source. Over a real transport the
/// source stays server-side (the destination node re-binds its own);
/// the frame is the part that crosses the boundary either way.
pub struct EvictedTenant {
    pub name: String,
    /// The handoff as a checksummed `kairos-store` frame.
    pub wire: Vec<u8>,
    /// The live source, when the donor and receiver share a process.
    pub source: Option<Box<dyn TelemetrySource>>,
}

/// The surface a balance round drives a shard through — implemented
/// directly by [`ShardController`] (the in-process fleet) and by
/// `kairos-net`'s RPC client handle (a shard behind a transport). One
/// trait, one [`run_balance_round`] implementation: the networked
/// control plane runs the *same* policy code path as the in-process
/// one, which is what makes the loopback fleet tick-for-tick identical
/// to `FleetController` by construction.
pub trait ShardHandle {
    /// The shard's (possibly cached) balancer summary.
    fn summary(&mut self) -> ShardSummary;
    /// Greedy machine estimate for the shard's current tenant set.
    fn pack_estimate_remaining(&mut self) -> Option<usize>;
    /// Forecast one tenant's next horizon. `None` if unknown.
    fn forecast(&mut self, tenant: &str) -> Option<WorkloadProfile>;
    /// Phase 1 reservation: would `incoming` fit within `budget`?
    fn can_admit(&mut self, incoming: &WorkloadProfile, budget: usize) -> bool;
    /// Phase 2a: evict a tenant, returning it as a wire frame (plus the
    /// live source, in-process). `None` if unknown or unreachable.
    fn evict(&mut self, tenant: &str) -> Option<EvictedTenant>;
    /// Phase 2b: admit an evicted tenant. On failure the tenant is
    /// handed back so the round can re-admit it on the donor — the
    /// rollback that keeps a mid-handshake failure from stranding it.
    fn admit(&mut self, tenant: EvictedTenant) -> Result<(), EvictedTenant>;
    /// Does this shard currently hold `tenant`? `None` when that cannot
    /// be determined (unreachable peer). The handshake's recovery path:
    /// when an admit *reports* failure, the transfer may still have
    /// applied with only the response lost — the round asks before
    /// rolling back, so a lost response cannot duplicate a tenant.
    fn owns(&mut self, tenant: &str) -> Option<bool>;
}

impl ShardHandle for ShardController {
    fn summary(&mut self) -> ShardSummary {
        self.summary_cached()
    }

    fn pack_estimate_remaining(&mut self) -> Option<usize> {
        self.pack_estimate(&[])
    }

    fn forecast(&mut self, tenant: &str) -> Option<WorkloadProfile> {
        self.forecast_workload(tenant)
    }

    fn can_admit(&mut self, incoming: &WorkloadProfile, budget: usize) -> bool {
        ShardController::can_admit(self, incoming, budget)
    }

    fn evict(&mut self, tenant: &str) -> Option<EvictedTenant> {
        let handoff = ShardController::evict(self, tenant)?;
        let name = handoff.name.clone();
        // The telemetry crosses as transport-ready bytes — the same
        // checksummed encoding an RPC boundary ships — so the wire
        // format is exercised on every live handoff, not only in tests.
        let (wire, source) = handoff.into_wire();
        Some(EvictedTenant {
            name,
            wire,
            source: Some(source),
        })
    }

    fn admit(&mut self, tenant: EvictedTenant) -> Result<(), EvictedTenant> {
        let EvictedTenant { name, wire, source } = tenant;
        let Some(source) = source else {
            // An in-process shard cannot re-bind a source by itself.
            return Err(EvictedTenant {
                name,
                wire,
                source: None,
            });
        };
        match TenantHandoff::parts_from_wire(&wire) {
            Ok((frame_name, replicas, telemetry)) if frame_name == *source.name() => {
                let sketch = self.sketch_config();
                ShardController::admit(
                    self,
                    TenantHandoff {
                        name: frame_name,
                        replicas,
                        source,
                        telemetry,
                        sketch,
                    },
                );
                Ok(())
            }
            _ => Err(EvictedTenant {
                name,
                wire,
                source: Some(source),
            }),
        }
    }

    fn owns(&mut self, tenant: &str) -> Option<bool> {
        Some(self.has_workload(tenant))
    }
}

/// A handoff stranded mid-handshake by transport faults: the admit
/// reported failure, and either the receiver could not be asked whether
/// it actually applied, or the donor-side rollback failed too. The
/// caller holds these between rounds; every subsequent round resolves
/// them **probe-first** (ask the receiver, then re-admit on the donor),
/// so a tenant is never silently dropped *and* never blindly duplicated.
pub struct ParkedHandoff {
    pub donor: usize,
    pub receiver: usize,
    pub tenant: EvictedTenant,
}

/// Wire version for replicated balancer soft-state frames
/// ([`BalancerSoftState::to_frame`], `kairos-store` framing). Bump on
/// any layout change.
pub const SYNC_STATE_VERSION: u32 = 1;

/// The balancer's **soft state** — everything the balance policy
/// accumulates that is not recoverable from the shards: the per-tenant
/// cooldown memory, the parked-handoff lot, the handoff audit log, and
/// the [`BalanceGate`]. This is what dies with a primary balancer unless
/// replicated; the primary captures one of these per balance round and
/// streams it to standbys (`kairos-net`'s `SyncState` RPC), so a
/// promoted standby resumes the policy mid-stream instead of rebuilding
/// from shard ground truth.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BalancerSoftState {
    /// The balance round this snapshot describes (monotone; standbys use
    /// it to detect sync lag).
    pub round: u64,
    /// Fleet tick at capture time.
    pub tick: u64,
    /// Per-tenant cooldown memory: tenant → last probed round.
    pub cooldown: BTreeMap<String, u64>,
    /// Parked handoffs as `(donor, receiver, tenant, wire frame)`. The
    /// live telemetry source cannot cross a process boundary (and is
    /// already `None` on RPC-parked entries), so only the checksummed
    /// frame replicates — exactly what probe-first resolution needs.
    pub parked: Vec<(u64, u64, String, Vec<u8>)>,
    /// The handoff audit log, in order.
    pub handoffs: Vec<HandoffRecord>,
    /// Balance-cadence gate state (pending skips/delays/deferral).
    pub gate: BalanceGate,
}

impl BalancerSoftState {
    /// Capture the current soft state for replication.
    pub fn capture(
        round: u64,
        tick: u64,
        cooldown: &BTreeMap<String, u64>,
        parked: &[ParkedHandoff],
        handoffs: &[HandoffRecord],
        gate: BalanceGate,
    ) -> BalancerSoftState {
        BalancerSoftState {
            round,
            tick,
            cooldown: cooldown.clone(),
            parked: parked
                .iter()
                .map(|p| {
                    (
                        p.donor as u64,
                        p.receiver as u64,
                        p.tenant.name.clone(),
                        p.tenant.wire.clone(),
                    )
                })
                .collect(),
            handoffs: handoffs.to_vec(),
            gate,
        }
    }

    /// Rebuild the parked lot from the replicated entries. Sources are
    /// gone (they never replicate); probe-first resolution re-routes or
    /// re-admits from the wire frame, same as any RPC-parked entry.
    pub fn parked_lot(&self) -> Vec<ParkedHandoff> {
        self.parked
            .iter()
            .map(|(donor, receiver, name, wire)| ParkedHandoff {
                donor: *donor as usize,
                receiver: *receiver as usize,
                tenant: EvictedTenant {
                    name: name.clone(),
                    wire: wire.clone(),
                    source: None,
                },
            })
            .collect()
    }

    /// The state as a checksummed, versioned `kairos-store` frame — the
    /// `SyncState` RPC payload.
    pub fn to_frame(&self) -> Vec<u8> {
        kairos_store::encode_frame(SYNC_STATE_VERSION, self)
    }

    /// Decode a replicated frame; rejects truncation, corruption, and
    /// version mismatches before anything is applied.
    pub fn from_frame(bytes: &[u8]) -> Result<BalancerSoftState, kairos_store::StoreError> {
        kairos_store::decode_frame(bytes, SYNC_STATE_VERSION)
    }
}

/// One balance round over any set of [`ShardHandle`]s: donors shed their
/// heaviest tenants to the emptiest shards that can reserve capacity for
/// them, through the two-phase (reserve → evict → admit) handshake. The
/// single policy implementation shared by the in-process
/// [`crate::FleetController`] and `kairos-net`'s RPC balancer.
///
/// `round` is the balance-round counter (drives the per-tenant probe
/// cooldown stored in `cooldown`), `tick` stamps the audit records. The
/// caller applies the returned records to its shard map and stats.
///
/// `parked` is the caller-held lot of [`ParkedHandoff`]s (only a lossy
/// transport can populate it — in-process handshakes cannot fail). Each
/// round resolves it first: if the receiver turns out to own the tenant
/// (the admit applied, only its response was lost) a late `Completed`
/// record re-routes the map; if the receiver provably does not, the
/// donor re-admits; if neither peer answers, the entry stays parked for
/// the next round.
///
/// `log` receives the round's decision trace — donor flagging,
/// proposals, outcomes, parked retries. Both callers pass their own log
/// and record on the calling thread, so the in-process and RPC fleets
/// produce byte-identical balancer traces by construction (same policy
/// code, same recorder discipline). Pass a
/// [`DecisionLog::disabled`] sink to trace nothing.
///
/// `spans` is the balancer's causal span log. When enabled, the round
/// opens a root `balance_round` span and installs its context for the
/// whole round; each handoff and parked retry opens a child span whose
/// context is installed across the shard calls it makes — so the
/// shard-side `evict`/`admit` spans (local or delivered through an RPC
/// frame's span section) chain into one cross-node tree. Disabled (the
/// default), nothing records and no frame grows a span section.
#[allow(clippy::too_many_arguments)]
pub fn run_balance_round<H: ShardHandle>(
    shards: &mut [H],
    cfg: &BalancerConfig,
    round: u64,
    tick: u64,
    cooldown: &mut BTreeMap<String, u64>,
    parked: &mut Vec<ParkedHandoff>,
    log: &mut DecisionLog,
    spans: &mut SpanLog,
) -> Vec<HandoffRecord> {
    let mut records = Vec::new();
    let round_label = round.to_string();
    let round_ctx = spans.open_root("balance_round", tick, &[("round", &round_label)]);
    let _round_span = span::install(round_ctx);
    let pending = std::mem::take(parked);
    for entry in pending {
        let ParkedHandoff {
            donor,
            receiver,
            tenant,
        } = entry;
        let retry_ctx = round_ctx.and_then(|ctx| {
            spans.open_child(
                ctx,
                "parked_retry",
                tick,
                &[
                    ("tenant", &tenant.name),
                    ("donor", &donor.to_string()),
                    ("receiver", &receiver.to_string()),
                ],
            )
        });
        let _retry_span = span::install(retry_ctx);
        match shards.get_mut(receiver).and_then(|r| r.owns(&tenant.name)) {
            // The original admit landed and only its response was
            // lost: surface the transfer so the caller re-routes.
            Some(true) => {
                log.record(
                    tick,
                    DecisionEvent::ParkedRetried {
                        tenant: tenant.name.clone(),
                        donor,
                        receiver,
                        resolution: "completed-late".into(),
                    },
                );
                records.push(HandoffRecord {
                    tenant: tenant.name,
                    from: donor,
                    to: Some(receiver),
                    tick,
                    outcome: HandoffOutcome::Completed,
                });
            }
            // Provably not at the receiver: safe to restore the donor.
            // Probe the donor first — a donor restored from a
            // pre-eviction checkpoint already holds the tenant, and a
            // blind re-admit would wedge the entry (no source left to
            // bind across a process boundary). Already home is done.
            Some(false)
                if shards.get_mut(donor).and_then(|d| d.owns(&tenant.name)) == Some(true) =>
            {
                log.record(
                    tick,
                    DecisionEvent::ParkedRetried {
                        tenant: tenant.name.clone(),
                        donor,
                        receiver,
                        resolution: "returned-to-donor".into(),
                    },
                );
            }
            Some(false) => match shards.get_mut(donor) {
                Some(shard) => {
                    let name = tenant.name.clone();
                    match shard.admit(tenant) {
                        Ok(()) => log.record(
                            tick,
                            DecisionEvent::ParkedRetried {
                                tenant: name,
                                donor,
                                receiver,
                                resolution: "returned-to-donor".into(),
                            },
                        ),
                        Err(returned) => {
                            log.record(
                                tick,
                                DecisionEvent::ParkedRetried {
                                    tenant: name,
                                    donor,
                                    receiver,
                                    resolution: "still-parked".into(),
                                },
                            );
                            parked.push(ParkedHandoff {
                                donor,
                                receiver,
                                tenant: returned,
                            });
                        }
                    }
                }
                None => {
                    log.record(
                        tick,
                        DecisionEvent::ParkedRetried {
                            tenant: tenant.name.clone(),
                            donor,
                            receiver,
                            resolution: "still-parked".into(),
                        },
                    );
                    parked.push(ParkedHandoff {
                        donor,
                        receiver,
                        tenant,
                    });
                }
            },
            // Unknowable right now: keep waiting rather than risk a
            // duplicate.
            None => {
                log.record(
                    tick,
                    DecisionEvent::ParkedRetried {
                        tenant: tenant.name.clone(),
                        donor,
                        receiver,
                        resolution: "still-parked".into(),
                    },
                );
                parked.push(ParkedHandoff {
                    donor,
                    receiver,
                    tenant,
                });
            }
        }
    }
    // A single-shard fleet has no possible receiver: proposing (and
    // counting) handoffs would only pollute the rejection stats, so
    // don't probe donors at all.
    if shards.len() < 2 {
        return records;
    }
    let budget = cfg.machines_per_shard;
    let shed_target = cfg.shed_target();
    let cooldown_rounds = cfg.cooldown_rounds;
    // Staleness-bounded cached summaries: a quiet shard's roll-up is
    // reused between rounds instead of re-forecasting every tenant.
    // Plans, membership, handoffs and failed solves invalidate
    // immediately; the *forecast-derived* donor signal (a placement
    // drifting infeasible without tripping the detector) can lag up
    // to `summary_refresh_ticks`. Admissions stay capacity-safe
    // regardless — `can_admit` always re-packs fresh.
    let summaries: Vec<ShardSummary> = shards.iter_mut().map(|s| s.summary()).collect();
    let mut moves_left = cfg.max_moves_per_round;

    for donor in donor_order(&summaries, budget) {
        // The trace records *which* summary fields made this shard a
        // donor — over budget, infeasible plan, or a failed re-solve.
        log.record(
            tick,
            DecisionEvent::DonorFlagged {
                shard: donor,
                machines_used: summaries[donor].machines_used,
                budget,
                feasible: summaries[donor].feasible,
                resolve_failed: summaries[donor].resolve_failed,
            },
        );
        // A saturated fleet can leave a donor with no willing
        // receiver; after a couple of failed reservations this round,
        // stop probing the rest of its tenants (smaller candidates
        // rarely fit where bigger ones already failed, and the next
        // round re-evaluates from fresh summaries anyway).
        let mut rejections = 0;
        for tenant in candidate_order(&summaries[donor]) {
            if moves_left == 0 || rejections >= 2 {
                break;
            }
            // Hysteresis: a tenant probed recently (moved or
            // rejected) sits out `cooldown_rounds` balance rounds, so
            // the same tenant is not re-proposed while the fleet
            // hovers at its budget.
            if cooldown_rounds > 0 {
                if let Some(&last) = cooldown.get(&tenant) {
                    if round.saturating_sub(last) <= cooldown_rounds {
                        continue;
                    }
                }
            }
            // Shedding stops as soon as what remains packs within the
            // low watermark again (greedy estimate, like the
            // reservation; already-evicted tenants are gone from the
            // donor's forecast, so the estimate reflects them). The
            // donor *triggered* at the high watermark (the budget),
            // but sheds down to the low one so the next small drift
            // doesn't immediately re-trigger it.
            let est = shards[donor]
                .pack_estimate_remaining()
                .unwrap_or(usize::MAX);
            if est <= shed_target {
                break;
            }
            let Some(profile) = shards[donor].forecast(&tenant) else {
                continue;
            };
            // Phase 1 — reservation: first receiver (emptiest-first)
            // that certifies capacity for the tenant *within the low
            // watermark*, so admission leaves the receiver headroom
            // instead of parking it at the donor trigger.
            let receiver = receiver_order(&summaries, donor, budget)
                .into_iter()
                .find(|&r| shards[r].can_admit(&profile, shed_target));
            if cooldown_rounds > 0 {
                cooldown.insert(tenant.clone(), round);
            }
            let Some(to) = receiver else {
                rejections += 1;
                log.record(
                    tick,
                    DecisionEvent::HandoffNoReceiver {
                        tenant: tenant.clone(),
                        donor,
                    },
                );
                records.push(HandoffRecord {
                    tenant,
                    from: donor,
                    to: None,
                    tick,
                    outcome: HandoffOutcome::NoReceiver,
                });
                continue;
            };
            log.record(
                tick,
                DecisionEvent::HandoffProposed {
                    tenant: tenant.clone(),
                    donor,
                    receiver: to,
                    shed_target,
                    receiver_machines: summaries[to].machines_used,
                },
            );
            // Phase 2 — transfer: evict (frees capacity on the donor)
            // then admit (telemetry travels as a checksummed wire
            // frame; the receiver replans membership next tick). The
            // handoff span's context covers the whole handshake,
            // including rollback probes, so both shards' spans chain
            // under it.
            let handoff_ctx = round_ctx.and_then(|ctx| {
                spans.open_child(
                    ctx,
                    "handoff",
                    tick,
                    &[
                        ("tenant", &tenant),
                        ("donor", &donor.to_string()),
                        ("receiver", &to.to_string()),
                    ],
                )
            });
            let _handoff_span = span::install(handoff_ctx);
            let mut evicted = shards[donor].evict(&tenant);
            if evicted.is_none() && shards[donor].owns(&tenant) == Some(false) {
                // The eviction came back empty while the donor provably
                // no longer hosts the tenant: the evict applied and its
                // *response* was lost. The donor's outbox retains the
                // frame for exactly this retry — and the probe having
                // just answered means the link works again.
                evicted = shards[donor].evict(&tenant);
            }
            let Some(evicted) = evicted else {
                // Unreachable donor (or a candidate its summary listed
                // but it no longer hosts — only possible over a failing
                // transport). If the eviction did apply under the
                // failure, the donor's lease is collapsing with it and
                // the rejoin reconciliation re-seeds what the map still
                // routes there. The reservation *was* granted, so this
                // is a mid-handshake transport fault, not a capacity
                // rejection — record it as Failed so the operator-facing
                // counters tell the truth.
                rejections += 1;
                log.record(
                    tick,
                    DecisionEvent::HandoffFailed {
                        tenant: tenant.clone(),
                        donor,
                        receiver: to,
                        returned_to_donor: false,
                    },
                );
                records.push(HandoffRecord {
                    tenant,
                    from: donor,
                    to: Some(to),
                    tick,
                    outcome: HandoffOutcome::Failed,
                });
                continue;
            };
            match shards[to].admit(evicted) {
                Ok(()) => {
                    moves_left -= 1;
                    log.record(
                        tick,
                        DecisionEvent::HandoffCompleted {
                            tenant: tenant.clone(),
                            donor,
                            receiver: to,
                        },
                    );
                    records.push(HandoffRecord {
                        tenant,
                        from: donor,
                        to: Some(to),
                        tick,
                        outcome: HandoffOutcome::Completed,
                    });
                }
                Err(returned) => {
                    // The admit *reported* failure — but over a lossy
                    // transport the transfer may have applied with only
                    // the response lost. Ask before rolling back: a
                    // blind donor re-admit would duplicate the tenant.
                    let mut returned_to_donor = false;
                    match shards[to].owns(&tenant) {
                        Some(true) => {
                            moves_left -= 1;
                            log.record(
                                tick,
                                DecisionEvent::HandoffCompleted {
                                    tenant: tenant.clone(),
                                    donor,
                                    receiver: to,
                                },
                            );
                            records.push(HandoffRecord {
                                tenant,
                                from: donor,
                                to: Some(to),
                                tick,
                                outcome: HandoffOutcome::Completed,
                            });
                            continue;
                        }
                        Some(false) => {
                            // Provably not admitted: roll the tenant
                            // back onto the donor so it is never
                            // stranded. The donor admit reuses the same
                            // frame + source the eviction produced, so
                            // the rollback is exact; if even that fails
                            // (a second fault), park for the
                            // probe-first retry.
                            match shards[donor].admit(returned) {
                                Ok(()) => returned_to_donor = true,
                                Err(orphan) => {
                                    log.record(
                                        tick,
                                        DecisionEvent::HandoffParked {
                                            tenant: tenant.clone(),
                                            donor,
                                            receiver: to,
                                        },
                                    );
                                    parked.push(ParkedHandoff {
                                        donor,
                                        receiver: to,
                                        tenant: orphan,
                                    });
                                }
                            }
                        }
                        // The receiver cannot be asked right now — the
                        // transfer may or may not have landed, and a
                        // blind rollback could duplicate. Park; the
                        // next round probes first.
                        None => {
                            log.record(
                                tick,
                                DecisionEvent::HandoffParked {
                                    tenant: tenant.clone(),
                                    donor,
                                    receiver: to,
                                },
                            );
                            parked.push(ParkedHandoff {
                                donor,
                                receiver: to,
                                tenant: returned,
                            });
                        }
                    }
                    rejections += 1;
                    log.record(
                        tick,
                        DecisionEvent::HandoffFailed {
                            tenant: tenant.clone(),
                            donor,
                            receiver: to,
                            returned_to_donor,
                        },
                    );
                    records.push(HandoffRecord {
                        tenant,
                        from: donor,
                        to: Some(to),
                        tick,
                        outcome: HandoffOutcome::Failed,
                    });
                }
            }
        }
    }
    records
}

/// Handoff candidates on a donor: heaviest forecast CPU peak first —
/// moving the tenant that caused the overload relieves the most pressure
/// per migration.
pub fn candidate_order(summary: &ShardSummary) -> Vec<String> {
    let mut loads = summary.tenant_loads.clone();
    loads.sort_by(|a, b| {
        b.cpu_peak
            .partial_cmp(&a.cpu_peak)
            .expect("finite forecast peaks")
            .then_with(|| a.name.cmp(&b.name))
    });
    loads.into_iter().map(|t| t.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_controller::TenantLoad;
    use kairos_traces::AggregateSketch;

    fn summary(planned: bool, machines: usize, feasible: bool) -> ShardSummary {
        ShardSummary {
            tenants: 3,
            planned,
            machines_used: machines,
            feasible,
            violation: if feasible { 0.0 } else { 1.0 },
            resolve_failed: false,
            drifting: 0,
            aggregate: AggregateSketch::empty(300.0),
            tenant_loads: vec![
                TenantLoad {
                    name: "small".into(),
                    replicas: 1,
                    cpu_peak: 1.0,
                    ram_peak: 1e9,
                    ws_peak: 5e8,
                    rate_peak: 10.0,
                },
                TenantLoad {
                    name: "big".into(),
                    replicas: 1,
                    cpu_peak: 6.0,
                    ram_peak: 4e9,
                    ws_peak: 2e9,
                    rate_peak: 400.0,
                },
            ],
        }
    }

    #[test]
    fn donors_are_over_budget_or_broken() {
        let s = vec![
            summary(true, 10, true), // fine
            summary(true, 20, true), // over budget
            summary(true, 8, false), // infeasible
            summary(false, 0, true), // bootstrapping: never a donor
        ];
        assert_eq!(donor_order(&s, 16), vec![1, 2]);
    }

    #[test]
    fn receivers_prefer_emptier_shards() {
        let s = vec![
            summary(true, 20, true), // donor
            summary(true, 12, true),
            summary(true, 4, true),
            summary(true, 17, true), // itself over budget: excluded
        ];
        assert_eq!(receiver_order(&s, 0, 16), vec![2, 1]);
    }

    #[test]
    fn candidates_heaviest_first() {
        assert_eq!(
            candidate_order(&summary(true, 20, true)),
            vec!["big".to_string(), "small".to_string()]
        );
    }

    #[test]
    fn idle_gate_is_transparent() {
        let mut gate = BalanceGate::default();
        assert!(gate.admit(true));
        assert!(!gate.admit(false));
        assert!(gate.admit(true));
    }

    #[test]
    fn skipped_rounds_are_gone() {
        let mut gate = BalanceGate::default();
        gate.skip_rounds(2);
        assert!(!gate.admit(true));
        assert!(!gate.admit(false));
        assert!(!gate.admit(true));
        assert!(gate.admit(true), "skips exhausted");
    }

    #[test]
    fn delayed_round_runs_one_tick_late() {
        let mut gate = BalanceGate::default();
        gate.delay_rounds(1);
        // Cadence fires at tick 4; the round runs at tick 5 instead.
        assert!(!gate.admit(true), "due round deferred");
        assert!(gate.admit(false), "deferred round fires off-cadence");
        assert!(!gate.admit(false));
        assert!(gate.admit(true), "later cadences unaffected");
    }

    #[test]
    fn skip_outranks_delay() {
        let mut gate = BalanceGate::default();
        gate.skip_rounds(1);
        gate.delay_rounds(1);
        assert!(!gate.admit(true), "skipped outright, no deferral");
        assert!(!gate.admit(false), "nothing was deferred by the skip");
        assert!(!gate.admit(true), "this one is delayed");
        assert!(gate.admit(false), "and lands one tick later");
    }
}
