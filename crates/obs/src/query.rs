//! The flight-recorder query layer: one filter language over both
//! deterministic records — decision events ([`crate::events`]) and
//! spans ([`crate::span`]).
//!
//! Any node holds (at least) one [`DecisionLog`] and one
//! [`crate::span::SpanLog`]; the `Query` RPC runs a [`TraceQuery`]
//! against them and ships back a [`QueryResult`], so "show me
//! everything about tenant T between ticks a..b" — or "give me this
//! trace" — is answerable from **any** node without shipping whole logs.
//! [`assemble_trees`] then folds span records (possibly merged from
//! several nodes) back into the causal trees they were recorded as.
//!
//! The tenant/shard relevance predicates used to live as ad-hoc scans
//! inside [`crate::why`]; they are the query layer's now, and the why
//! chain renders on top of them.

use crate::events::{DecisionEvent, TracedEvent};
use crate::span::{SpanRecord, NO_PARENT};
use serde::{Deserialize, Serialize};

/// A flight-recorder filter. Unset fields match everything; set fields
/// AND together. Tick bounds are inclusive.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceQuery {
    /// Only spans of this trace (and events at the ticks those spans
    /// cover — see [`run_query`]).
    pub trace_id: Option<u64>,
    /// Only events/spans mentioning this tenant (or its group).
    pub tenant: Option<String>,
    /// Only events/spans concerning this shard index.
    pub shard: Option<u64>,
    pub tick_from: Option<u64>,
    pub tick_to: Option<u64>,
}

impl TraceQuery {
    /// Everything — the identity filter.
    pub fn all() -> TraceQuery {
        TraceQuery::default()
    }

    /// Everything recorded for one trace id.
    pub fn for_trace(trace_id: u64) -> TraceQuery {
        TraceQuery {
            trace_id: Some(trace_id),
            ..TraceQuery::default()
        }
    }

    /// Everything about one tenant in an inclusive tick range.
    pub fn for_tenant(tenant: &str, tick_from: u64, tick_to: u64) -> TraceQuery {
        TraceQuery {
            tenant: Some(tenant.to_string()),
            tick_from: Some(tick_from),
            tick_to: Some(tick_to),
            ..TraceQuery::default()
        }
    }

    fn tick_in_range(&self, tick: u64) -> bool {
        self.tick_from.is_none_or(|from| tick >= from) && self.tick_to.is_none_or(|to| tick <= to)
    }

    /// Does one decision event pass this filter? (`trace_id` does not
    /// constrain events — events carry no trace id; the join happens in
    /// [`run_query`] via the spans' tick cover.)
    pub fn matches_event(&self, e: &TracedEvent) -> bool {
        if !self.tick_in_range(e.tick) {
            return false;
        }
        if let Some(tenant) = &self.tenant {
            if !concerns_tenant(&e.event, tenant) {
                return false;
            }
        }
        if let Some(shard) = self.shard {
            if !concerns_shard(&e.event, shard as usize) {
                return false;
            }
        }
        true
    }

    /// Does one span record pass this filter?
    pub fn matches_span(&self, s: &SpanRecord) -> bool {
        if let Some(trace_id) = self.trace_id {
            if s.trace_id != trace_id {
                return false;
            }
        }
        if !self.tick_in_range(s.tick) {
            return false;
        }
        if let Some(tenant) = &self.tenant {
            let hit = s
                .tags
                .iter()
                .any(|(k, v)| (k == "tenant" || k == "group") && v == tenant);
            if !hit {
                return false;
            }
        }
        if let Some(shard) = self.shard {
            let tagged = s.tags.iter().any(|(k, v)| {
                (k == "donor" || k == "receiver" || k == "shard") && *v == shard.to_string()
            });
            if !tagged && u64::from(s.node) != shard {
                return false;
            }
        }
        true
    }
}

/// What a query answers with: matching events and spans, both in
/// recording order. Serializable — this is the `Query` RPC's payload.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryResult {
    pub events: Vec<TracedEvent>,
    pub spans: Vec<SpanRecord>,
}

impl QueryResult {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.spans.is_empty()
    }

    /// Merge another node's answer into this one (kairos-top and the
    /// tree assembly work over the union).
    pub fn merge(&mut self, other: QueryResult) {
        self.events.extend(other.events);
        self.spans.extend(other.spans);
    }
}

/// Run `query` over one node's records. When the query names a trace
/// id, matching spans additionally pull in the decision events recorded
/// at the ticks the trace covers (the span→event join: events carry no
/// trace id of their own).
pub fn run_query(query: &TraceQuery, events: &[TracedEvent], spans: &[SpanRecord]) -> QueryResult {
    let spans: Vec<SpanRecord> = spans
        .iter()
        .filter(|s| query.matches_span(s))
        .cloned()
        .collect();
    let events = if query.trace_id.is_some() {
        let ticks: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tick).collect();
        events
            .iter()
            .filter(|e| ticks.contains(&e.tick) && query.matches_event(e))
            .cloned()
            .collect()
    } else {
        events
            .iter()
            .filter(|e| query.matches_event(e))
            .cloned()
            .collect()
    };
    QueryResult { events, spans }
}

/// Does a fleet-level event mention this tenant (or group) by name?
pub fn concerns_tenant(event: &DecisionEvent, tenant: &str) -> bool {
    use DecisionEvent::*;
    match event {
        TenantEvicted { tenant: t }
        | TenantAdmitted { tenant: t }
        | HandoffNoReceiver { tenant: t, .. }
        | HandoffProposed { tenant: t, .. }
        | HandoffCompleted { tenant: t, .. }
        | HandoffFailed { tenant: t, .. }
        | HandoffParked { tenant: t, .. }
        | ParkedRetried { tenant: t, .. } => t == tenant,
        GroupMoved { group, .. } => group == tenant,
        DriftTripped { workloads, .. } | ProfileRefreshed { workloads } => {
            workloads.iter().any(|w| w == tenant)
        }
        _ => false,
    }
}

/// Does a fleet-level event concern this shard? (Moved here from
/// `why.rs` — the why chain and the query layer share one relevance
/// predicate.)
pub fn concerns_shard(event: &DecisionEvent, shard: usize) -> bool {
    use DecisionEvent::*;
    match event {
        DonorFlagged { shard: s, .. }
        | LeaseMiss { shard: s, .. }
        | ShardDown { shard: s }
        | ShardRejoined { shard: s, .. } => *s == shard,
        HandoffProposed {
            donor, receiver, ..
        }
        | HandoffCompleted {
            donor, receiver, ..
        }
        | HandoffFailed {
            donor, receiver, ..
        }
        | HandoffParked {
            donor, receiver, ..
        }
        | ParkedRetried {
            donor, receiver, ..
        } => *donor == shard || *receiver == shard,
        HandoffNoReceiver { donor, .. } => *donor == shard,
        NodeAnnounced { shard: s, .. } => *s == shard,
        GroupMoved {
            from_zone, to_zone, ..
        } => *from_zone == shard || *to_zone == shard,
        _ => false,
    }
}

/// One node of an assembled span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    pub span: SpanRecord,
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Total spans in this tree (self included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanTree::size).sum::<usize>()
    }

    /// Depth-first iterator over `(depth, span)` pairs.
    fn walk<'a>(&'a self, depth: usize, out: &mut Vec<(usize, &'a SpanRecord)>) {
        out.push((depth, &self.span));
        for c in &self.children {
            c.walk(depth + 1, out);
        }
    }
}

/// Fold span records — typically the union of several nodes' answers to
/// one trace-id query — into trees. A span whose parent is absent from
/// the set (evicted from a ring, or filtered out) becomes a root of its
/// own tree rather than vanishing. Children sort by span id, which is
/// recording order per node; trees sort by root span id.
pub fn assemble_trees(spans: &[SpanRecord]) -> Vec<SpanTree> {
    use std::collections::BTreeMap;
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        if s.parent != NO_PARENT && ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    fn build(
        span: &SpanRecord,
        children: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
    ) -> SpanTree {
        let mut kids: Vec<&SpanRecord> = children.get(&span.span_id).cloned().unwrap_or_default();
        kids.sort_by_key(|s| s.span_id);
        SpanTree {
            span: span.clone(),
            children: kids.iter().map(|k| build(k, children)).collect(),
        }
    }
    roots.sort_by_key(|s| s.span_id);
    roots.iter().map(|r| build(r, &children)).collect()
}

/// Render one tree as indented lines:
/// `tick  node  name  {tags}` — the span-dump format the CI surface
/// job uploads on failure.
pub fn render_span_tree(tree: &SpanTree) -> String {
    let mut flat = Vec::new();
    tree.walk(0, &mut flat);
    let mut out = String::new();
    for (depth, span) in flat {
        let tags = span
            .tags
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:indent$}tick {:>4} · {} · {}{}{}\n",
            "",
            span.tick,
            crate::span::render_node(span.node),
            span.name,
            if tags.is_empty() { "" } else { " · " },
            tags,
            indent = depth * 2,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanLog;

    fn traced(seq: u64, tick: u64, event: DecisionEvent) -> TracedEvent {
        TracedEvent { seq, tick, event }
    }

    fn sample_events() -> Vec<TracedEvent> {
        vec![
            traced(
                0,
                4,
                DecisionEvent::DonorFlagged {
                    shard: 0,
                    machines_used: 9,
                    budget: 6,
                    feasible: true,
                    resolve_failed: false,
                },
            ),
            traced(
                1,
                5,
                DecisionEvent::HandoffCompleted {
                    tenant: "t7".into(),
                    donor: 0,
                    receiver: 2,
                },
            ),
            traced(
                2,
                9,
                DecisionEvent::HandoffCompleted {
                    tenant: "t8".into(),
                    donor: 1,
                    receiver: 2,
                },
            ),
        ]
    }

    #[test]
    fn tenant_and_tick_filters_intersect() {
        let events = sample_events();
        let got = run_query(&TraceQuery::for_tenant("t7", 0, 6), &events, &[]);
        assert_eq!(got.events.len(), 1);
        assert!(matches!(
            &got.events[0].event,
            DecisionEvent::HandoffCompleted { tenant, .. } if tenant == "t7"
        ));
        // Same tenant, range excludes its tick.
        assert!(run_query(&TraceQuery::for_tenant("t7", 6, 9), &events, &[]).is_empty());
    }

    #[test]
    fn shard_filter_uses_the_shared_predicate() {
        let events = sample_events();
        let q = TraceQuery {
            shard: Some(1),
            ..TraceQuery::default()
        };
        let got = run_query(&q, &events, &[]);
        assert_eq!(
            got.events.len(),
            1,
            "only the donor-1 handoff concerns shard 1"
        );
    }

    #[test]
    fn trace_query_pulls_spans_and_their_ticks_events() {
        let mut log = SpanLog::new(crate::span::NODE_BALANCER);
        log.set_enabled(true);
        let root = log
            .open_root("balance_round", 5, &[("round", "1")])
            .unwrap();
        log.open_child(root, "handoff", 5, &[("tenant", "t7"), ("donor", "0")]);
        let spans = log.to_vec();
        let got = run_query(
            &TraceQuery::for_trace(root.trace_id),
            &sample_events(),
            &spans,
        );
        assert_eq!(got.spans.len(), 2);
        // The tick-5 handoff event joins in; tick-4/9 events stay out.
        assert_eq!(got.events.len(), 1);
        assert_eq!(got.events[0].tick, 5);
    }

    #[test]
    fn trees_assemble_across_nodes_and_survive_missing_parents() {
        let mut balancer = SpanLog::new(crate::span::NODE_BALANCER);
        balancer.set_enabled(true);
        let root = balancer.open_root("balance_round", 5, &[]).unwrap();
        let handoff = balancer
            .open_child(root, "handoff", 5, &[("tenant", "t7")])
            .unwrap();
        let mut shard = SpanLog::new(crate::span::node_for_shard(0));
        shard.set_enabled(true);
        shard.open_child(handoff, "evict", 5, &[("tenant", "t7")]);

        let mut all = balancer.to_vec();
        all.extend(shard.to_vec());
        let trees = assemble_trees(&all);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].size(), 3);
        assert_eq!(trees[0].children[0].children[0].span.name, "evict");
        let rendered = render_span_tree(&trees[0]);
        assert!(rendered.contains("balancer · balance_round"), "{rendered}");
        assert!(
            rendered.contains("    tick    5 · shard0 · evict · tenant=t7"),
            "{rendered}"
        );

        // Orphaned child (parent's ring entry gone) becomes its own root.
        let orphan_only = shard.to_vec();
        let trees = assemble_trees(&orphan_only);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].span.name, "evict");
    }
}
