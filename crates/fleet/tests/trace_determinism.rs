//! Decision-trace properties of the fleet control plane.
//!
//! The decision log is stamped with tick numbers, never wall clocks, so
//! it inherits every determinism guarantee the control plane already
//! makes. Three properties on the seeded SplitMix64 harness (CI sweeps
//! `KAIROS_TEST_SEED`):
//!
//! 1. **Restore does not fork history** — a fleet checkpointed mid-run
//!    and restored carries the pre-crash trace verbatim, continues its
//!    sequence numbers instead of restarting them, and finishes the run
//!    with a trace **byte-identical** to an uninterrupted fleet's.
//! 2. **The disabled sink records nothing** — `set_tracing(false)`
//!    leaves every log empty while the metrics registry keeps counting.
//! 3. **`explain_audit` speaks** — the audit explanation names flagged
//!    shards with their why-chains, or says plainly that the audit is
//!    clean.

use kairos_controller::{ControllerConfig, SyntheticSource};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;
use std::path::PathBuf;

const SHARDS: usize = 2;
const TENANTS_PER_SHARD: usize = 6;
const TICKS: u64 = 60;

fn config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 3,
            balance_every: 5,
            max_moves_per_round: 3,
            ..BalancerConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[derive(Clone)]
struct TenantSpec {
    shard: usize,
    name: String,
    base_tps: f64,
    spike: Option<(u64, f64)>,
}

fn tenant_specs(rng: &mut SplitMix64) -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let base_tps = rng.next_in(120.0, 300.0);
            let spike_tps = rng.next_in(420.0, 640.0);
            let spike_at = 18 + rng.next_range(14);
            // Shard 0's t1 always spikes ~3× so every seed records at
            // least one drift trip and replan — the trace assertions are
            // never vacuous.
            let spikes = (shard == 0 && i == 1) || rng.next_range(3) == 0;
            specs.push(TenantSpec {
                shard,
                name: format!("s{shard}-t{i}"),
                base_tps,
                spike: spikes.then_some((spike_at, spike_tps.max(3.0 * base_tps))),
            });
        }
    }
    specs
}

fn make_source(spec: &TenantSpec) -> SyntheticSource {
    let src = SyntheticSource::new(
        spec.name.clone(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: spec.base_tps },
    );
    match spec.spike {
        Some((at, tps)) => src.then_at(at, RatePattern::Flat { tps }),
        None => src,
    }
}

fn build_fleet(specs: &[TenantSpec]) -> FleetController {
    let mut fleet = FleetController::new(config());
    for spec in specs {
        fleet.add_workload_to(spec.shard, Box::new(make_source(spec)));
    }
    fleet
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kairos-trace-{}-{tag}.ksnp", std::process::id()))
}

#[test]
fn restore_continues_the_trace_without_forking() {
    let mut rng = SplitMix64::from_env(0x07AA_CE01);
    let specs = tenant_specs(&mut rng);
    let crash_at = 24 + rng.next_range(TICKS - 24 - 8);
    let path = temp_ckpt("no-fork");

    // Uninterrupted reference run.
    let mut reference = build_fleet(&specs);
    for _ in 0..TICKS {
        reference.tick();
    }
    let reference_shard_traces: Vec<Vec<u8>> =
        reference.shards().iter().map(|s| s.trace_bytes()).collect();
    assert!(
        reference_shard_traces.iter().any(|t| !t.is_empty()),
        "no shard recorded anything; the property below is vacuous"
    );

    // Interrupted run: tick to the crash point, checkpoint, "crash".
    let mut doomed = build_fleet(&specs);
    for _ in 0..crash_at {
        doomed.tick();
    }
    doomed.checkpoint(&path).expect("checkpoint writes");
    let pre_crash_fleet = doomed.trace_events();
    let pre_crash_shards: Vec<Vec<kairos_obs::TracedEvent>> =
        doomed.shards().iter().map(|s| s.trace_events()).collect();
    drop(doomed);

    // Restart: the restored fleet must carry the pre-crash history
    // verbatim — same events, same sequence numbers — not an empty or
    // re-numbered log.
    let mut restored = FleetController::resume_from(config(), &path).expect("restores");
    for spec in &specs {
        let src = make_source(spec).fast_forward(crash_at);
        restored.reattach(Box::new(src)).expect("known tenant");
    }
    assert_eq!(
        restored.trace_events(),
        pre_crash_fleet,
        "fleet trace forked across restore"
    );
    for (shard, pre) in pre_crash_shards.iter().enumerate() {
        assert_eq!(
            &restored.shards()[shard].trace_events(),
            pre,
            "shard {shard} trace forked across restore"
        );
    }

    // Finish both runs: the restored trace must extend its prefix into
    // exactly the uninterrupted history, byte for byte.
    for _ in crash_at..TICKS {
        restored.tick();
    }
    assert_eq!(
        restored.trace_bytes(),
        reference.trace_bytes(),
        "fleet traces diverged after restore"
    );
    for (shard, reference_trace) in reference_shard_traces.iter().enumerate() {
        assert_eq!(
            &restored.shards()[shard].trace_bytes(),
            reference_trace,
            "shard {shard} trace diverged after restore"
        );
    }

    // Sequence numbers are strictly increasing across the whole run —
    // the "no fork" invariant in its rawest form.
    for shard in restored.shards() {
        let events = shard.trace_events();
        for pair in events.windows(2) {
            assert!(pair[1].seq > pair[0].seq, "sequence numbers must climb");
        }
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_sink_records_nothing_while_metrics_keep_counting() {
    let mut rng = SplitMix64::from_env(0x07AA_CE02);
    let specs = tenant_specs(&mut rng);
    let mut fleet = build_fleet(&specs);
    fleet.set_tracing(false);
    for _ in 0..TICKS {
        fleet.tick();
    }
    assert!(fleet.trace_events().is_empty(), "disabled fleet log filled");
    for (shard, ctrl) in fleet.shards().iter().enumerate() {
        assert!(
            ctrl.trace_events().is_empty(),
            "shard {shard} recorded despite the disabled sink"
        );
        assert!(ctrl.stats().ticks > 0, "metrics must keep counting");
    }
    assert_eq!(fleet.stats().ticks, TICKS);
    // Re-enabling starts recording again from where the counters stand.
    fleet.set_tracing(true);
    for _ in 0..8 {
        fleet.tick();
    }
    assert_eq!(fleet.stats().ticks, TICKS + 8);
}

#[test]
fn explain_audit_names_flagged_shards_or_reports_clean() {
    let mut rng = SplitMix64::from_env(0x07AA_CE03);
    let specs = tenant_specs(&mut rng);
    let mut fleet = build_fleet(&specs);
    for _ in 0..TICKS {
        fleet.tick();
    }
    let audit = fleet.audit();
    let explanation = fleet.explain_audit(&audit);
    assert!(!explanation.is_empty());
    if audit.zero_violations() && audit.within_budget(config().balancer.machines_per_shard) {
        assert!(
            explanation.contains("audit clean"),
            "clean audit must say so: {explanation}"
        );
    } else {
        assert!(
            explanation.contains("shard "),
            "flagged audit must name shards: {explanation}"
        );
    }

    // Force every planned shard over budget: the explanation must name
    // each one and its why-chain cites the trace.
    let mut impossible = fleet.audit();
    for used in &mut impossible.machines_used {
        *used = 99;
    }
    let strained = fleet.explain_audit(&impossible);
    if impossible.per_shard.iter().any(|e| e.is_some()) {
        assert!(
            strained.contains("over budget"),
            "inflated machine counts must flag every planned shard: {strained}"
        );
    }
}
