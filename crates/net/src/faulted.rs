//! Fault injection below the loopback layer: a [`Transport`] decorator
//! that applies the declarative [`FaultPlan`] to *any* backend.
//!
//! The loopback transport owns a fault plan because it owns dispatch;
//! the TCP backend is real sockets and owns nothing injectable. This
//! decorator moves the exact same fault model one layer up: it routes
//! **logical endpoint names** (`"shard-0"`) to whatever endpoint the
//! inner transport actually serves (a kernel-assigned `127.0.0.1:port`
//! for TCP), and consults the shared [`FaultPlan`] — same precedence
//! contract, partition ≻ drop ≻ corrupt, heal cancels one-shots — on
//! every outbound call before the frame touches the inner connection.
//! Corruption flips one seeded bit, drawn from the same
//! [`SplitMix64`] stream discipline the loopback uses, so a chaos
//! schedule replays bit-for-bit against real TCP.
//!
//! What stays different from loopback — deliberately — is what the
//! *far side* does with an injected fault: a corrupted frame over TCP
//! is rejected by the server's stream reader and the connection
//! closes (the client sees an I/O error and redials), whereas loopback
//! hands the damaged frame to the handler which answers an error
//! response. Both are legal transport behaviours; the chaos invariants
//! hold under either, and same-seed fingerprints are byte-identical
//! per backend.

use crate::fault::{Fault, FaultInjector, FaultPlan, FaultVerdict};
use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use kairos_types::SplitMix64;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct FaultedState {
    faults: FaultPlan,
    /// Logical endpoint → the endpoint the inner transport reported
    /// actually serving (for TCP with a `:0` bind, the kernel port).
    routes: BTreeMap<String, String>,
}

/// A fault-injecting decorator over any [`Transport`]. `Clone` shares
/// the route table and the fault plan, so the chaos harness holds one
/// handle while nodes hold `Arc<dyn Transport>` clones.
#[derive(Clone)]
pub struct FaultedTransport {
    inner: Arc<dyn Transport>,
    /// When `Some`, every serve binds this address on the inner
    /// transport (e.g. `"127.0.0.1:0"` for TCP) and the logical name
    /// only lives in the route table; when `None`, logical names pass
    /// through to the inner transport (e.g. over loopback).
    bind: Option<String>,
    state: Arc<Mutex<FaultedState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl FaultedTransport {
    /// Wrap `inner`, passing logical endpoint names straight through
    /// (the inner transport must accept them — loopback does).
    pub fn new(inner: Arc<dyn Transport>, seed: u64) -> FaultedTransport {
        FaultedTransport {
            inner,
            bind: None,
            state: Arc::new(Mutex::new(FaultedState::default())),
            rng: Arc::new(Mutex::new(SplitMix64::new(seed))),
        }
    }

    /// Wrap `inner`, serving every logical endpoint at `bind` on the
    /// inner transport (use `"127.0.0.1:0"` to let the kernel pick a
    /// port per endpoint) and routing by name.
    pub fn with_bind(inner: Arc<dyn Transport>, seed: u64, bind: &str) -> FaultedTransport {
        FaultedTransport {
            bind: Some(bind.to_string()),
            ..FaultedTransport::new(inner, seed)
        }
    }

    /// The standard chaos-over-TCP shape: real sockets underneath,
    /// kernel-assigned loopback ports, logical names on top.
    pub fn over_tcp(seed: u64) -> FaultedTransport {
        FaultedTransport::with_bind(
            Arc::new(crate::tcp::TcpTransport::new()),
            seed,
            "127.0.0.1:0",
        )
    }

    /// Logical endpoints currently served (diagnostics).
    pub fn endpoints(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("faulted state lock")
            .routes
            .keys()
            .cloned()
            .collect()
    }
}

impl FaultInjector for FaultedTransport {
    fn inject_fault(&self, endpoint: &str, fault: Fault) {
        self.state
            .lock()
            .expect("faulted state lock")
            .faults
            .inject(endpoint, fault);
    }

    fn heal(&self, endpoint: &str) {
        self.state
            .lock()
            .expect("faulted state lock")
            .faults
            .heal(endpoint);
    }

    fn heal_all(&self) {
        self.state
            .lock()
            .expect("faulted state lock")
            .faults
            .heal_all();
    }
}

impl Transport for FaultedTransport {
    fn serve(&self, endpoint: &str, handler: Handler) -> Result<ServerHandle, NetError> {
        {
            let state = self.state.lock().expect("faulted state lock");
            if state.routes.contains_key(endpoint) {
                return Err(NetError::Protocol(format!(
                    "endpoint {endpoint} already served"
                )));
            }
        }
        let inner_endpoint = self.bind.as_deref().unwrap_or(endpoint);
        let inner_handle = self.inner.serve(inner_endpoint, handler)?;
        self.state
            .lock()
            .expect("faulted state lock")
            .routes
            .insert(endpoint.to_string(), inner_handle.endpoint.clone());
        let registry = self.state.clone();
        let unbind = endpoint.to_string();
        Ok(ServerHandle::new(endpoint.to_string(), move || {
            registry
                .lock()
                .expect("faulted state lock")
                .routes
                .remove(&unbind);
            inner_handle.stop();
        }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Conn>, NetError> {
        let actual = self
            .state
            .lock()
            .expect("faulted state lock")
            .routes
            .get(endpoint)
            .cloned()
            .ok_or_else(|| NetError::Unreachable(endpoint.to_string()))?;
        let conn = self.inner.connect(&actual)?;
        Ok(Box::new(FaultedConn {
            endpoint: endpoint.to_string(),
            inner: conn,
            state: self.state.clone(),
            rng: self.rng.clone(),
        }))
    }
}

struct FaultedConn {
    endpoint: String,
    inner: Box<dyn Conn>,
    state: Arc<Mutex<FaultedState>>,
    rng: Arc<Mutex<SplitMix64>>,
}

impl Conn for FaultedConn {
    fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        // Resolve the fault verdict under the shared lock, release it
        // before the (possibly slow, blocking) inner call.
        let corrupt = {
            let mut state = self.state.lock().expect("faulted state lock");
            // Payload tag rides at frame bytes 16..20 (see loopback).
            let tag = (frame.len() >= 20)
                .then(|| u32::from_le_bytes(frame[16..20].try_into().expect("sized slice")));
            match state.faults.next_call(&self.endpoint, tag) {
                FaultVerdict::Unreachable => {
                    return Err(NetError::Unreachable(self.endpoint.clone()))
                }
                FaultVerdict::Drop => return Err(NetError::Dropped),
                FaultVerdict::Deliver { corrupt } => corrupt,
            }
        };
        if corrupt {
            let mut owned = frame.to_vec();
            let mut rng = self.rng.lock().expect("faulted rng lock");
            let byte = rng.next_range(owned.len() as u64) as usize;
            let bit = rng.next_range(8) as u8;
            owned[byte] ^= 1 << bit;
            drop(rng);
            return self.inner.call(&owned);
        }
        self.inner.call(frame)
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;
    use crate::loopback::LoopbackTransport;

    fn echo() -> Handler {
        Arc::new(Mutex::new(|f: &[u8]| f.to_vec()))
    }

    #[test]
    fn routes_logical_names_over_tcp_and_unbinds_on_stop() {
        let t = FaultedTransport::over_tcp(7);
        let handle = t.serve("shard-0", echo()).expect("serves");
        assert_eq!(handle.endpoint, "shard-0");
        let mut conn = t.connect("shard-0").expect("connects");
        let msg = frame::encode_frame(&(String::from("hello"), 1u64));
        assert_eq!(conn.call(&msg).expect("echoes"), msg);
        handle.stop();
        assert!(matches!(
            t.connect("shard-0"),
            Err(NetError::Unreachable(_))
        ));
    }

    #[test]
    fn fault_precedence_holds_over_a_real_socket() {
        let t = FaultedTransport::over_tcp(7);
        let _h = t.serve("a", echo()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        let msg = frame::encode_frame(&3u64);
        t.drop_next_calls("a", 1);
        t.partition("a");
        // Partition outranks the pending drop without burning it...
        assert!(matches!(conn.call(&msg), Err(NetError::Unreachable(_))));
        // ...and heal cancels the paused drop: clean delivery.
        FaultInjector::heal(&t, "a");
        assert_eq!(conn.call(&msg).expect("clean"), msg);
        t.drop_next_calls("a", 1);
        assert!(matches!(conn.call(&msg), Err(NetError::Dropped)));
        assert_eq!(conn.call(&msg).expect("clean again"), msg);
    }

    #[test]
    fn corruption_over_tcp_is_rejected_by_the_stream_reader() {
        // Over real sockets a damaged frame never reaches the handler:
        // the server's read_frame fails CRC and closes the connection —
        // the client sees an error and redials clean.
        let t = FaultedTransport::over_tcp(11);
        let _h = t.serve("a", echo()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        let msg = frame::encode_frame(&(String::from("x"), 9u32));
        t.corrupt_next_calls("a", 1);
        assert!(conn.call(&msg).is_err(), "damaged frame rejected");
        let mut conn = t.connect("a").expect("reconnects");
        assert_eq!(conn.call(&msg).expect("clean"), msg);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_in_flight() {
        // Over a pass-through backend the damaged frame is observable:
        // exactly one seeded bit differs, same as the loopback contract.
        let t = FaultedTransport::new(Arc::new(LoopbackTransport::with_seed(0)), 11);
        let _h = t.serve("a", echo()).expect("serves");
        let mut conn = t.connect("a").expect("connects");
        let msg = frame::encode_frame(&(String::from("x"), 9u32));
        t.corrupt_next_calls("a", 1);
        let echoed = conn.call(&msg).expect("delivered, damaged");
        let diff: u32 = msg
            .iter()
            .zip(&echoed)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(conn.call(&msg).expect("clean"), msg);
    }

    #[test]
    fn same_seed_corrupts_the_same_bit_over_any_backend() {
        // The decorator draws from the same seeded stream discipline as
        // the loopback, so a schedule's corruption lands identically
        // run over run.
        let msg = frame::encode_frame(&(String::from("payload"), 1234u64));
        let run = |seed: u64| {
            let t = FaultedTransport::new(Arc::new(LoopbackTransport::with_seed(0)), seed);
            let _h = t.serve("a", echo()).expect("serves");
            let mut conn = t.connect("a").expect("connects");
            t.corrupt_next_calls("a", 1);
            conn.call(&msg).expect("delivered")
        };
        assert_eq!(run(42), run(42), "same seed, same damage");
        assert_ne!(run(42), run(43), "different seed, different damage");
    }
}
