//! Failure handling at both levels of the network control plane, over
//! the deterministic loopback with injected partitions:
//!
//! 1. **Shard-node death + checkpoint rejoin** — a partitioned shard
//!    node misses its lease, the fleet keeps running around it (its
//!    summary reads unplanned: never a donor, never a receiver), and a
//!    replacement node restored from the shard's last checkpoint rejoins
//!    with its telemetry, placement and loop phase intact. Tenants that
//!    moved after the checkpoint are reconciled against the routing map.
//! 2. **Balancer death + deterministic standby promotion** — a standby
//!    watching the primary's lease endpoint promotes after its
//!    rank-scaled miss threshold, rebuilds the routing map from the
//!    shards (ground truth), and keeps balancing; a second standby with
//!    a higher rank stays down longer, so promotions cannot race.
//!
//! Seeded; CI sweeps `KAIROS_TEST_SEED`.

use kairos_controller::{ControllerConfig, SyntheticSource};
use kairos_fleet::{BalancerConfig, FleetConfig};
use kairos_net::{
    BalancerNode, LeaseConfig, LoopbackTransport, ShardNode, SourceEscrow, StandbyAction,
    StandbyBalancer, Transport,
};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: usize = 2;
const TENANTS_PER_SHARD: usize = 6;

fn quick_cfg() -> ControllerConfig {
    ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        ..ControllerConfig::default()
    }
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: quick_cfg(),
        balancer: BalancerConfig {
            machines_per_shard: 4,
            balance_every: 4,
            max_moves_per_round: 2,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    }
}

/// Tenant sources are reconstructible by name — the factory/rejoin
/// contract the whole restore path rests on.
fn make_source(name: &str, rng_tps: f64) -> SyntheticSource {
    SyntheticSource::new(
        name.to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: rng_tps },
    )
    .with_noise(0.0)
}

/// `name → tps`, derived from the name so every rebuild agrees.
fn tps_of(name: &str, base: f64) -> f64 {
    let h = name
        .bytes()
        .fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
    base + (h % 80) as f64
}

struct Cluster {
    transport: Arc<LoopbackTransport>,
    escrow: SourceEscrow,
    nodes: Vec<ShardNode>,
    handles: Vec<kairos_net::ServerHandle>,
    balancer: BalancerNode,
}

fn cluster(lease: LeaseConfig) -> Cluster {
    cluster_with(lease, fleet_cfg())
}

fn cluster_with(lease: LeaseConfig, cfg: FleetConfig) -> Cluster {
    let transport = Arc::new(LoopbackTransport::new());
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..SHARDS {
        let node = ShardNode::new(
            quick_cfg(),
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        handles.push(
            node.serve(transport.as_ref(), &format!("shard-{shard}"))
                .expect("serves"),
        );
        nodes.push(node);
    }
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let mut balancer = BalancerNode::connect(cfg, lease, transport.clone(), &endpoints)
        .expect("balancer connects");
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let name = format!("s{shard}-t{i}");
            escrow.park(Box::new(make_source(&name, tps_of(&name, 180.0))));
            balancer
                .add_workload_to(shard, &name, 1)
                .expect("registers");
        }
    }
    Cluster {
        transport,
        escrow,
        nodes,
        handles,
        balancer,
    }
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kairos-net-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    dir
}

#[test]
fn dead_shard_is_detected_skipped_and_rejoins_from_checkpoint() {
    let _rng = SplitMix64::from_env(0xFA11_0001);
    let lease = LeaseConfig { miss_limit: 3 };
    let mut c = cluster(lease);
    let dir = ckpt_dir("rejoin");
    let dir_str = dir.to_string_lossy().to_string();

    // Run until both shards planned, then checkpoint.
    for _ in 0..20 {
        c.balancer.tick();
    }
    let results = c.balancer.checkpoint_shards(&dir_str);
    let ckpt_path = results[1].as_ref().expect("shard 1 checkpointed").clone();
    let ticks_at_ckpt = c.nodes[1].with_shard(|s| s.stats().ticks);

    // Kill shard 1: partition its endpoint. The lease must expire after
    // exactly miss_limit failed ticks.
    c.transport.partition("shard-1");
    for i in 0..3 {
        let report = c.balancer.tick();
        assert!(
            report.outcomes[1].is_none(),
            "tick {i}: no outcome from a dead node"
        );
    }
    assert_eq!(c.balancer.down_shards(), vec![1], "lease expired");

    // The fleet keeps running around the hole — ticks flow to shard 0,
    // balance rounds treat shard 1 as unplanned (no donor, no receiver).
    for _ in 0..6 {
        let report = c.balancer.tick();
        assert!(report.outcomes[0].is_some());
        assert!(report.outcomes[1].is_none());
        for handoff in &report.handoffs {
            assert_ne!(handoff.to, Some(1), "no handoff may target a dead shard");
            assert_ne!(handoff.from, 1, "no handoff may leave a dead shard");
        }
    }

    // "Restart the process": restore a fresh node from the checkpoint.
    // The escrow has no live sources for it (they died with the node) —
    // park reconstructed, fast-forwarded ones first, exactly what a
    // supervising process does.
    let down_ticks = c.balancer.stats().ticks; // how far the world moved on
    assert!(down_ticks > ticks_at_ckpt);
    let restored_names: Vec<String> = (0..TENANTS_PER_SHARD).map(|i| format!("s1-t{i}")).collect();
    for name in &restored_names {
        let src = make_source(name, tps_of(name, 180.0)).fast_forward(ticks_at_ckpt);
        c.escrow.park(Box::new(src));
    }
    let restored = ShardNode::restore_from(
        quick_cfg(),
        kairos_core::ConsolidationEngine::builder().build(),
        std::path::Path::new(&ckpt_path),
        Box::new(c.escrow.clone()),
    )
    .expect("checkpoint restores");
    restored.with_shard(|s| {
        assert_eq!(s.stats().ticks, ticks_at_ckpt, "loop phase restored");
        assert!(s.planned_once(), "plan survived the death");
        assert!(s.detached_workloads().is_empty(), "all sources re-bound");
    });
    // Serve at a NEW endpoint (the old one is still partitioned — like a
    // process restarted on a new port) and rejoin.
    c.handles.push(
        restored
            .serve(c.transport.as_ref(), "shard-1-reborn")
            .expect("serves"),
    );
    c.balancer.rejoin(1, "shard-1-reborn").expect("rejoins");
    assert!(c.balancer.down_shards().is_empty(), "lease renewed");

    // The rejoined shard participates again: ticks flow, membership is
    // intact, audits complete.
    for _ in 0..8 {
        let report = c.balancer.tick();
        assert!(report.outcomes[1].is_some(), "rejoined shard ticks");
    }
    let workloads = c.balancer.shard_workloads();
    assert_eq!(
        workloads[1].as_ref().expect("alive").len(),
        TENANTS_PER_SHARD,
        "membership preserved across death + rejoin"
    );
    let audit = c.balancer.audit();
    assert!(audit.complete(), "every shard audits after rejoin");
    assert!(audit.zero_violations());

    c.nodes.push(restored);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejoin_reconciles_tenants_moved_after_the_checkpoint() {
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster(lease);
    let dir = ckpt_dir("reconcile");
    let dir_str = dir.to_string_lossy().to_string();

    for _ in 0..20 {
        c.balancer.tick();
    }
    // Checkpoint shard 1 while it still owns s1-t0 …
    let results = c.balancer.checkpoint_shards(&dir_str);
    let ckpt_path = results[1].as_ref().expect("checkpointed").clone();
    let ticks_at_ckpt = c.nodes[1].with_shard(|s| s.stats().ticks);

    // … then move s1-t0 to shard 0 through the real two-phase handshake
    // (simulating a post-checkpoint handoff), and kill shard 1.
    {
        let mut donor_conn = c.transport.connect("shard-1").expect("connects");
        let kairos_net::Response::Evicted(Some(wire)) = kairos_net::rpc::call(
            donor_conn.as_mut(),
            &kairos_net::Request::Evict {
                tenant: "s1-t0".into(),
            },
        )
        .expect("evicts") else {
            panic!("eviction must yield a frame");
        };
        let mut recv_conn = c.transport.connect("shard-0").expect("connects");
        let response = kairos_net::rpc::call(
            recv_conn.as_mut(),
            &kairos_net::Request::Admit { frame: wire },
        )
        .expect("admits");
        assert!(matches!(response, kairos_net::Response::Done));
    }
    // Keep the routing truth in step (the balancer would have done this
    // in its own round).
    c.balancer.reroute("s1-t0", 0);

    c.transport.partition("shard-1");
    for _ in 0..2 {
        c.balancer.tick();
    }
    assert_eq!(c.balancer.down_shards(), vec![1]);

    // Restore shard 1 from the PRE-handoff checkpoint: it believes it
    // still owns s1-t0.
    for i in 0..TENANTS_PER_SHARD {
        let name = format!("s1-t{i}");
        let src = make_source(&name, tps_of(&name, 180.0)).fast_forward(ticks_at_ckpt);
        c.escrow.park(Box::new(src));
    }
    let restored = ShardNode::restore_from(
        quick_cfg(),
        kairos_core::ConsolidationEngine::builder().build(),
        std::path::Path::new(&ckpt_path),
        Box::new(c.escrow.clone()),
    )
    .expect("restores");
    restored.with_shard(|s| assert!(s.has_workload("s1-t0"), "stale copy present pre-rejoin"));
    c.handles.push(
        restored
            .serve(c.transport.as_ref(), "shard-1-reborn")
            .expect("serves"),
    );
    c.balancer.rejoin(1, "shard-1-reborn").expect("rejoins");

    // Reconciliation: the map routes s1-t0 to shard 0, so the restored
    // node must have dropped its stale copy — single ownership holds.
    restored.with_shard(|s| {
        assert!(
            !s.has_workload("s1-t0"),
            "rejoin must retire the stale pre-checkpoint copy"
        );
    });
    c.nodes[0].with_shard(|s| assert!(s.has_workload("s1-t0")));
    let workloads = c.balancer.shard_workloads();
    let total: usize = workloads
        .iter()
        .map(|w| w.as_ref().expect("alive").len())
        .sum();
    assert_eq!(
        total,
        SHARDS * TENANTS_PER_SHARD,
        "nobody lost, nobody doubled"
    );

    c.nodes.push(restored);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The parked-lot-survives-promotion regression test (chaos satellite):
/// a double-faulted handoff parks a tenant in the primary's lot; the
/// primary then dies before the next round can resolve it. The old
/// promotion path rebuilt only the routing map from `Workloads`, so the
/// tenant — owned by *no* shard, alive only in the donor's evict outbox
/// — stayed stranded until a manual rejoin. Promotion must instead
/// rebuild the lot probe-first from shard ground truth and recover the
/// tenant where its frame lives.
#[test]
fn promotion_rebuilds_the_parked_lot_from_shard_ground_truth() {
    // A 2-machine budget makes shard 0 a donor the moment the heavies
    // land, so the double fault hits the very next balance round.
    let shed_cfg = || FleetConfig {
        shards: SHARDS,
        shard: quick_cfg(),
        balancer: BalancerConfig {
            machines_per_shard: 2,
            balance_every: 4,
            max_moves_per_round: 2,
            cooldown_rounds: 0,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    };
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster_with(lease, shed_cfg());

    let lease_handle = c
        .balancer
        .serve_lease(c.transport.as_ref(), "balancer-0")
        .expect("lease endpoint serves");
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let standby_node = BalancerNode::connect(shed_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("standby connects");
    let mut standby = StandbyBalancer::new(standby_node, "balancer-0", 1);

    // Both shards plan under a healthy primary.
    for _ in 0..20 {
        c.balancer.tick();
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
    }

    // Overload shard 0 so the next balance round must shed to shard 1.
    let heavies: Vec<String> = (0..4).map(|i| format!("s0-heavy{i}")).collect();
    for name in &heavies {
        c.escrow
            .park(Box::new(make_source(name, tps_of(name, 600.0))));
        c.balancer.add_workload_to(0, name, 1).expect("registers");
    }

    // Double-fault the upcoming handshake: the receiver's next Admit
    // arrives damaged (rejected with zero state change), and so does
    // the probe-first Owns that follows — the balancer can neither
    // complete nor safely roll back, so the tenant parks. Matching
    // rules queue on the FaultPlan, so both are armed up front.
    let admit_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Admit { frame: Vec::new() });
    let owns_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Owns {
        tenant: String::new(),
    });
    c.transport
        .corrupt_next_calls_matching("shard-1", admit_tag, 1);
    c.transport
        .corrupt_next_calls_matching("shard-1", owns_tag, 1);

    let mut parked = Vec::new();
    for _ in 0..16 {
        c.balancer.tick();
        parked = c.balancer.parked_handoffs();
        if !parked.is_empty() {
            break;
        }
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
    }
    assert!(!parked.is_empty(), "the double fault must park a handoff");
    let (stray, donor, _) = parked[0].clone();
    // The limbo state: evicted at the donor, rejected at the receiver —
    // owned by nobody, alive only as the donor's outbox frame.
    c.nodes[0].with_shard(|s| assert!(!s.has_workload(&stray)));
    c.nodes[1].with_shard(|s| assert!(!s.has_workload(&stray)));

    // The primary dies with the lot in its memory — the triple fault.
    lease_handle.stop();
    drop(c.balancer);
    let mut promoted_at = None;
    for watch in 0..8 {
        if standby.watch_tick() == StandbyAction::Promote {
            promoted_at = Some(watch);
            break;
        }
    }
    assert_eq!(
        promoted_at,
        Some(3),
        "rank 1 promotes after 2 misses + 2 frozen-fleet confirmations"
    );
    let mut promoted = match standby.promote() {
        Ok(promoted) => promoted,
        Err((_, e)) => panic!("all shards reachable, promotion must succeed: {e}"),
    };

    // The regression: promotion found the stray in the donor's evict
    // outbox and re-admitted it there — routed, owned, explained.
    assert_eq!(
        promoted.map().shard_of(&stray),
        Some(donor),
        "stray tenant re-routed at promotion"
    );
    c.nodes[donor].with_shard(|s| {
        assert!(
            s.has_workload(&stray),
            "re-admitted at the shard whose outbox held it"
        )
    });
    assert!(
        promoted.parked_handoffs().is_empty(),
        "recovered outright, not merely re-parked"
    );
    assert!(
        promoted.trace_events().iter().any(|e| matches!(
            &e.event,
            kairos_obs::DecisionEvent::ParkedRetried { tenant, resolution, .. }
                if tenant == &stray && resolution == "recovered-at-promotion"
        )),
        "the decision trace explains the recovery"
    );

    // Ownership conservation across map + nodes: nobody lost, nobody
    // doubled, and the map agrees with every shard's ground truth.
    let workloads = promoted.shard_workloads();
    let mut seen = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for (shard, names) in workloads.iter().enumerate() {
        for name in names.as_ref().expect("alive") {
            assert!(seen.insert(name.clone()), "{name} owned twice");
            assert_eq!(
                promoted.map().shard_of(name),
                Some(shard),
                "map agrees with shard ground truth for {name}"
            );
            total += 1;
        }
    }
    assert_eq!(total, SHARDS * TENANTS_PER_SHARD + heavies.len());

    // And the fleet keeps running clean under the new primary.
    for _ in 0..8 {
        let report = promoted.tick();
        assert!(report.down.is_empty());
    }
    let audit = promoted.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());
}

/// A fleet config that makes shard 0 shed the moment heavies land, so
/// a double fault can park a handoff on the very next balance round.
fn shed_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: quick_cfg(),
        balancer: BalancerConfig {
            machines_per_shard: 2,
            balance_every: 4,
            max_moves_per_round: 2,
            cooldown_rounds: 2,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    }
}

/// Drive the primary until a double-faulted handshake parks a tenant:
/// overload shard 0 with heavies, arm one corrupted Admit and one
/// corrupted Owns at the receiver, and tick (watching alongside) until
/// the lot is non-empty. Returns the parked `(tenant, donor)`.
fn park_a_handoff(c: &mut Cluster, standby: &mut StandbyBalancer) -> (String, usize) {
    let heavies: Vec<String> = (0..4).map(|i| format!("s0-heavy{i}")).collect();
    for name in &heavies {
        c.escrow
            .park(Box::new(make_source(name, tps_of(name, 600.0))));
        c.balancer.add_workload_to(0, name, 1).expect("registers");
    }
    let admit_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Admit { frame: Vec::new() });
    let owns_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Owns {
        tenant: String::new(),
    });
    c.transport
        .corrupt_next_calls_matching("shard-1", admit_tag, 1);
    c.transport
        .corrupt_next_calls_matching("shard-1", owns_tag, 1);
    let mut parked = Vec::new();
    for _ in 0..16 {
        c.balancer.tick();
        standby.watch_tick();
        parked = c.balancer.parked_handoffs();
        if !parked.is_empty() {
            break;
        }
    }
    assert!(!parked.is_empty(), "the double fault must park a handoff");
    let (stray, donor, _) = parked[0].clone();
    (stray, donor)
}

/// The balancer-state-replication regression (this PR's tentpole): the
/// primary streams its soft state to a synced standby each round; when
/// the primary dies mid-handoff — a tenant parked, cooldowns hot, an
/// audit log accumulated — the promoted standby must resume with
/// cooldown memory, parked lot, audit log and gate **byte-identical**
/// to the dead primary's last capture, not rebuilt approximations.
#[test]
fn promotion_resumes_replicated_soft_state_byte_identical() {
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster_with(lease, shed_cfg());
    let lease_handle = c
        .balancer
        .serve_lease(c.transport.as_ref(), "balancer-0")
        .expect("lease endpoint serves");
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let standby_node = BalancerNode::connect(shed_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("standby connects");
    let mut standby = StandbyBalancer::new(standby_node, "balancer-0", 1);
    standby
        .serve_sync(c.transport.as_ref(), "standby-sync")
        .expect("sync endpoint serves");
    c.balancer.add_standby_sync("standby-sync");

    for _ in 0..20 {
        c.balancer.tick();
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
    }
    let (stray, donor) = park_a_handoff(&mut c, &mut standby);

    // The park happened inside a balance round, and every round syncs:
    // the standby already holds this exact state.
    let expected = c.balancer.soft_state();
    assert_eq!(
        standby.replicated_round(),
        Some(expected.round),
        "standby is current through the parking round"
    );
    let lag = c
        .balancer
        .metrics_registry()
        .gauge("kairos_fleet_sync_lag_rounds")
        .get();
    assert_eq!(lag, 0.0, "no sync lag while the standby acks every round");
    assert!(
        !expected.cooldown.is_empty(),
        "completed handoffs must have left cooldown memory to replicate"
    );
    assert!(!expected.handoffs.is_empty(), "audit log non-empty");

    // Primary dies mid-handoff; rank 1 promotes deterministically.
    lease_handle.stop();
    drop(c.balancer);
    let mut promoted_at = None;
    for watch in 0..8 {
        if standby.watch_tick() == StandbyAction::Promote {
            promoted_at = Some(watch);
            break;
        }
    }
    assert_eq!(promoted_at, Some(3));
    let mut promoted = match standby.promote() {
        Ok(promoted) => promoted,
        Err((_, e)) => panic!("all shards reachable, promotion must succeed: {e}"),
    };

    // Byte-identical resume: same round, same cooldowns, same parked
    // lot (wire frames included), same audit log, same gate. Only the
    // fleet tick moves on (adopted from the most advanced shard).
    let mut resumed = promoted.soft_state();
    assert_eq!(resumed.round, expected.round, "round resumes, not resets");
    assert!(resumed.tick >= expected.tick);
    resumed.tick = expected.tick;
    assert_eq!(
        resumed.to_frame(),
        expected.to_frame(),
        "replicated soft state must survive promotion byte-for-byte"
    );
    assert!(
        promoted
            .trace_events()
            .iter()
            .any(|e| matches!(&e.event, kairos_obs::DecisionEvent::StandbySynced { .. })),
        "the standby's trace explains what it received"
    );
    // The stray is still parked — resumed, not re-probed into a
    // different resolution — and the *next* rounds drain it with its
    // real donor/receiver context, converging clean.
    assert!(promoted
        .parked_handoffs()
        .iter()
        .any(|(tenant, _, _)| tenant == &stray));
    for _ in 0..16 {
        promoted.tick();
        if promoted.parked_handoffs().is_empty() {
            break;
        }
    }
    assert!(
        promoted.parked_handoffs().is_empty(),
        "parked lot drains under the promoted primary"
    );
    assert!(
        promoted.map().shard_of(&stray).is_some(),
        "the parked tenant lands somewhere routed"
    );
    // Settle: a freshly (re-)admitted tenant joins its shard's
    // placement on the next replan, so give the fleet a bounded run
    // before demanding a complete audit — same discipline as the chaos
    // harness's settle phase.
    for _ in 0..24 {
        promoted.tick();
        if promoted.audit().complete() {
            break;
        }
    }
    let audit = promoted.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());
    let _ = donor;
}

/// The fallback leg: the standby's sync endpoint is partitioned away
/// *before* the round that parks the tenant, so the replicated state
/// is stale — the parked tenant exists only in the donor's evict
/// outbox. Promotion must fall back to the probe-first ground-truth
/// rebuild for exactly the delta the stale frame missed, while still
/// resuming the (older) replicated cooldowns and audit log.
#[test]
fn promotion_falls_back_to_outbox_probe_when_sync_lagged() {
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster_with(lease, shed_cfg());
    let lease_handle = c
        .balancer
        .serve_lease(c.transport.as_ref(), "balancer-0")
        .expect("lease endpoint serves");
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let standby_node = BalancerNode::connect(shed_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("standby connects");
    let mut standby = StandbyBalancer::new(standby_node, "balancer-0", 1);
    standby
        .serve_sync(c.transport.as_ref(), "standby-sync")
        .expect("sync endpoint serves");
    c.balancer.add_standby_sync("standby-sync");

    for _ in 0..20 {
        c.balancer.tick();
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
    }
    let synced_round = standby.replicated_round().expect("synced while healthy");

    // Sync goes dark *before* the parking round: everything from here
    // on is delta the standby never sees.
    c.transport.partition("standby-sync");
    let (stray, donor) = park_a_handoff(&mut c, &mut standby);
    assert_eq!(
        standby.replicated_round(),
        Some(synced_round),
        "the parking round must not have reached the standby"
    );
    let lag = c
        .balancer
        .metrics_registry()
        .gauge("kairos_fleet_sync_lag_rounds")
        .get();
    assert!(lag > 0.0, "the primary's gauge exposes the sync lag");

    lease_handle.stop();
    drop(c.balancer);
    let mut promoted_at = None;
    for watch in 0..8 {
        if standby.watch_tick() == StandbyAction::Promote {
            promoted_at = Some(watch);
            break;
        }
    }
    assert_eq!(promoted_at, Some(3));
    let mut promoted = match standby.promote() {
        Ok(promoted) => promoted,
        Err((_, e)) => panic!("all shards reachable, promotion must succeed: {e}"),
    };

    // The stale frame knew nothing of the stray; the outbox probe did:
    // recovered at the shard whose outbox held the frame, and the
    // trace says so.
    assert_eq!(
        promoted.map().shard_of(&stray),
        Some(donor),
        "stray recovered from the donor's evict outbox despite stale sync"
    );
    c.nodes[donor].with_shard(|s| assert!(s.has_workload(&stray)));
    assert!(
        promoted.trace_events().iter().any(|e| matches!(
            &e.event,
            kairos_obs::DecisionEvent::ParkedRetried { tenant, resolution, .. }
                if tenant == &stray && resolution == "recovered-at-promotion"
        )),
        "the decision trace explains the fallback recovery"
    );
    // Ownership conservation: nobody lost, nobody doubled.
    let workloads = promoted.shard_workloads();
    let mut seen = std::collections::BTreeSet::new();
    for (shard, names) in workloads.iter().enumerate() {
        for name in names.as_ref().expect("alive") {
            assert!(seen.insert(name.clone()), "{name} owned twice");
            assert_eq!(promoted.map().shard_of(name), Some(shard));
        }
    }
    assert_eq!(seen.len(), SHARDS * TENANTS_PER_SHARD + 4);
    // Settle until the recovered tenant is planned into a placement
    // (bounded, same discipline as the chaos harness's settle phase).
    for _ in 0..24 {
        let report = promoted.tick();
        assert!(report.down.is_empty());
        if promoted.audit().complete() {
            break;
        }
    }
    let audit = promoted.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());
}

#[test]
fn standby_promotes_deterministically_when_the_balancer_dies() {
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster(lease);

    // Primary serves its lease endpoint; two standbys (ranks 1 and 2)
    // watch it. Rank ordering is the determinism: rank 1's threshold is
    // 2 misses, rank 2's is 4 — rank 1 always takes over first.
    let lease_handle = c
        .balancer
        .serve_lease(c.transport.as_ref(), "balancer-0")
        .expect("lease endpoint serves");
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let standby_node = BalancerNode::connect(fleet_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("standby connects");
    let mut standby = StandbyBalancer::new(standby_node, "balancer-0", 1);
    let second_node = BalancerNode::connect(fleet_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("second standby connects");
    let mut second = StandbyBalancer::new(second_node, "balancer-0", 2);

    // Healthy primary: standbys watch quietly.
    for _ in 0..20 {
        c.balancer.tick();
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
        assert_eq!(second.watch_tick(), StandbyAction::Watching);
    }
    let handoffs_before = c.balancer.stats().handoffs_completed;
    let map_before: Vec<Vec<String>> = (0..SHARDS)
        .map(|s| c.balancer.map().tenants_of(s))
        .collect();

    // The primary dies: stop serving its lease (and stop ticking).
    lease_handle.stop();
    drop(c.balancer);

    // Rank 1 reaches its threshold (2 misses) and then needs two
    // consecutive frozen-fleet confirmations — the split-brain guard —
    // so it promotes on its fourth watch; rank 2's threshold alone is
    // 4 misses, so it is still counting.
    let mut promoted_at = None;
    for watch in 0..8 {
        let first = standby.watch_tick();
        let second_action = second.watch_tick();
        if first == StandbyAction::Promote && promoted_at.is_none() {
            promoted_at = Some(watch);
        }
        if promoted_at.is_some() {
            assert_eq!(
                second_action,
                StandbyAction::Watching,
                "rank 2 must still be waiting when rank 1 promotes"
            );
            break;
        }
    }
    assert_eq!(
        promoted_at,
        Some(3),
        "rank 1 promotes after 2 misses + 2 consecutive frozen-fleet confirmations"
    );

    // Promotion rebuilds the map from the shards — ground truth.
    let mut promoted = match standby.promote() {
        Ok(promoted) => promoted,
        Err((_, e)) => panic!("all shards reachable, promotion must succeed: {e}"),
    };
    for (shard, expected) in map_before.iter().enumerate() {
        assert_eq!(
            &promoted.map().tenants_of(shard),
            expected,
            "promoted map must match the shards' actual ownership"
        );
    }

    // The promoted balancer keeps the fleet healthy…
    for _ in 0..12 {
        let report = promoted.tick();
        assert!(report.down.is_empty());
        // …and its activity holds rank 2 back indefinitely: the lease
        // endpoint is still dead, but the fleet is moving — the
        // split-brain guard must never let a second balancer activate.
        assert_eq!(
            second.watch_tick(),
            StandbyAction::Watching,
            "rank 2 must hold while the promoted balancer drives the fleet"
        );
    }
    let audit = promoted.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());
    // Its stats continue from the shards' tick line, not from zero.
    assert!(promoted.stats().ticks > 20);
    let _ = handoffs_before;
}

/// The health-watchdog regression (observability tentpole): armed with
/// the default rule catalog, the balancer's watchdog must stay silent
/// while the fleet is healthy, flag a **growing standby sync lag**
/// (critical) once the sync endpoint goes dark, flag a **parked
/// handoff aging past its round budget** (critical) when every retry
/// keeps failing, serve both findings over the lease endpoint's
/// `Health` RPC, and clear the lag finding once sync heals.
#[test]
fn watchdog_flags_induced_sync_lag_and_aged_parked_handoffs() {
    let lease = LeaseConfig { miss_limit: 2 };
    let mut c = cluster_with(lease, shed_cfg());
    c.balancer
        .set_health(Some(kairos_obs::HealthMonitor::new()));
    let _lease_handle = c
        .balancer
        .serve_lease(c.transport.as_ref(), "balancer-0")
        .expect("lease endpoint serves");
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let standby_node = BalancerNode::connect(shed_cfg(), lease, c.transport.clone(), &endpoints)
        .expect("standby connects");
    let mut standby = StandbyBalancer::new(standby_node, "balancer-0", 1);
    standby
        .serve_sync(c.transport.as_ref(), "standby-sync")
        .expect("sync endpoint serves");
    c.balancer.add_standby_sync("standby-sync");

    // Clean leg: synced standby, nothing parked — the watchdog must
    // not page (the two critical rules stay quiet; wall-clock-shaped
    // warnings are tolerated, criticals are not).
    for _ in 0..24 {
        c.balancer.tick();
        assert_eq!(standby.watch_tick(), StandbyAction::Watching);
    }
    let clean = c.balancer.health_report().expect("watchdog armed");
    assert!(
        !clean.has_critical(),
        "healthy fleet must not page critical: {clean:?}"
    );
    assert!(
        clean
            .findings
            .iter()
            .all(|f| f.metric != "kairos_fleet_sync_lag_rounds"
                && f.metric != "kairos_fleet_parked_oldest_rounds"),
        "clean run flagged an induced-condition metric: {clean:?}"
    );

    // Induce sync lag: the standby's sync endpoint goes dark, so the
    // acked round freezes while the primary's round line advances —
    // the lag gauge grows every balance round and the trend rule must
    // fire critical.
    c.transport.partition("standby-sync");
    let mut lag_flagged = false;
    for _ in 0..60 {
        c.balancer.tick();
        let report = c.balancer.health_report().expect("armed");
        if report.findings.iter().any(|f| {
            f.rule == "gauge-growing"
                && f.metric == "kairos_fleet_sync_lag_rounds"
                && f.severity == kairos_obs::Severity::Critical
        }) {
            lag_flagged = true;
            break;
        }
    }
    assert!(lag_flagged, "growing sync lag must page critical");
    assert!(
        c.balancer.trace_events().iter().any(|e| matches!(
            &e.event,
            kairos_obs::DecisionEvent::HealthFlagged { metric, severity, .. }
                if metric == "kairos_fleet_sync_lag_rounds" && severity == "critical"
        )),
        "the flag transition lands in the decision trace"
    );

    // Induce an aged parked handoff: overload shard 0 so it must shed,
    // and corrupt every Admit/Owns at the receiver so each round's
    // retry fails and the tenant stays parked past the 8-round budget.
    let heavies: Vec<String> = (0..4).map(|i| format!("s0-heavy{i}")).collect();
    for name in &heavies {
        c.escrow
            .park(Box::new(make_source(name, tps_of(name, 600.0))));
        c.balancer.add_workload_to(0, name, 1).expect("registers");
    }
    let admit_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Admit { frame: Vec::new() });
    let owns_tag = kairos_net::rpc::wire_tag(&kairos_net::Request::Owns {
        tenant: String::new(),
    });
    c.transport
        .corrupt_next_calls_matching("shard-1", admit_tag, 500);
    c.transport
        .corrupt_next_calls_matching("shard-1", owns_tag, 500);
    let mut aged_flagged = false;
    for _ in 0..100 {
        c.balancer.tick();
        let report = c.balancer.health_report().expect("armed");
        if report.findings.iter().any(|f| {
            f.rule == "gauge-above"
                && f.metric == "kairos_fleet_parked_oldest_rounds"
                && f.severity == kairos_obs::Severity::Critical
        }) {
            aged_flagged = true;
            break;
        }
    }
    assert!(aged_flagged, "an aged parked handoff must page critical");

    // Both findings answerable over the lease endpoint's Health RPC —
    // what kairos-top scrapes.
    let mut conn = c.transport.connect("balancer-0").expect("connects");
    match kairos_net::rpc::call(conn.as_mut(), &kairos_net::Request::Health) {
        Ok(kairos_net::Response::Health(report)) => {
            assert!(report.has_critical(), "RPC-served report pages: {report:?}");
            assert!(report
                .findings
                .iter()
                .any(|f| f.metric == "kairos_fleet_parked_oldest_rounds"));
        }
        other => panic!("Health RPC answered {other:?}"),
    }

    // Sync heals: the standby catches up, the lag gauge stops growing,
    // and the trend finding clears (the parked lot may still be aging).
    c.transport.heal("standby-sync");
    let mut lag_cleared = false;
    for _ in 0..40 {
        c.balancer.tick();
        standby.watch_tick();
        let report = c.balancer.health_report().expect("armed");
        if !report
            .findings
            .iter()
            .any(|f| f.metric == "kairos_fleet_sync_lag_rounds")
        {
            lag_cleared = true;
            break;
        }
    }
    assert!(lag_cleared, "healed sync must clear the lag finding");
}
