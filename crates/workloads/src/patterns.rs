//! Time-varying request-rate patterns.
//!
//! §7.1: "Each workload has different time-varying patterns (e.g.,
//! sinusoidal, sawtooth, flat with different amplitude and period)." These
//! drive both the synthetic micro-benchmark and the offered-load schedules
//! of the controlled experiments.

/// A deterministic request-rate schedule in transactions/second.
#[derive(Debug, Clone, PartialEq)]
pub enum RatePattern {
    /// Constant rate.
    Flat { tps: f64 },
    /// `mean + amplitude * sin(2π t / period)`.
    Sinusoid {
        mean: f64,
        amplitude: f64,
        period_secs: f64,
        phase: f64,
    },
    /// Linear ramp from `min` to `max` repeating every `period_secs`.
    Sawtooth {
        min: f64,
        max: f64,
        period_secs: f64,
    },
    /// Alternates `low` and `high` every half `period_secs`.
    Square {
        low: f64,
        high: f64,
        period_secs: f64,
    },
    /// `base` rate with a burst to `peak` for `burst_secs` out of every
    /// `period_secs`.
    Bursty {
        base: f64,
        peak: f64,
        burst_secs: f64,
        period_secs: f64,
    },
}

impl RatePattern {
    /// Rate at simulated time `now` (seconds). Never negative.
    pub fn rate_at(&self, now: f64) -> f64 {
        let v = match *self {
            RatePattern::Flat { tps } => tps,
            RatePattern::Sinusoid {
                mean,
                amplitude,
                period_secs,
                phase,
            } => mean + amplitude * (2.0 * std::f64::consts::PI * now / period_secs + phase).sin(),
            RatePattern::Sawtooth {
                min,
                max,
                period_secs,
            } => {
                let frac = (now / period_secs).rem_euclid(1.0);
                min + (max - min) * frac
            }
            RatePattern::Square {
                low,
                high,
                period_secs,
            } => {
                if (now / period_secs).rem_euclid(1.0) < 0.5 {
                    low
                } else {
                    high
                }
            }
            RatePattern::Bursty {
                base,
                peak,
                burst_secs,
                period_secs,
            } => {
                let t = now.rem_euclid(period_secs);
                if t < burst_secs {
                    peak
                } else {
                    base
                }
            }
        };
        v.max(0.0)
    }

    /// Time-averaged rate over one full period.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            RatePattern::Flat { tps } => tps,
            RatePattern::Sinusoid { mean, .. } => mean,
            RatePattern::Sawtooth { min, max, .. } => (min + max) / 2.0,
            RatePattern::Square { low, high, .. } => (low + high) / 2.0,
            RatePattern::Bursty {
                base,
                peak,
                burst_secs,
                period_secs,
            } => (peak * burst_secs + base * (period_secs - burst_secs)) / period_secs,
        }
    }

    /// Peak rate over one full period.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            RatePattern::Flat { tps } => tps,
            RatePattern::Sinusoid {
                mean, amplitude, ..
            } => mean + amplitude.abs(),
            RatePattern::Sawtooth { max, .. } => max,
            RatePattern::Square { high, .. } => high,
            RatePattern::Bursty { peak, .. } => peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_constant() {
        let p = RatePattern::Flat { tps: 42.0 };
        assert_eq!(p.rate_at(0.0), 42.0);
        assert_eq!(p.rate_at(1e6), 42.0);
        assert_eq!(p.mean_rate(), 42.0);
        assert_eq!(p.peak_rate(), 42.0);
    }

    #[test]
    fn sinusoid_oscillates_around_mean() {
        let p = RatePattern::Sinusoid {
            mean: 100.0,
            amplitude: 50.0,
            period_secs: 100.0,
            phase: 0.0,
        };
        assert!((p.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((p.rate_at(25.0) - 150.0).abs() < 1e-9);
        assert!((p.rate_at(75.0) - 50.0).abs() < 1e-9);
        assert_eq!(p.peak_rate(), 150.0);
    }

    #[test]
    fn sinusoid_never_negative() {
        let p = RatePattern::Sinusoid {
            mean: 10.0,
            amplitude: 50.0,
            period_secs: 10.0,
            phase: 0.0,
        };
        for i in 0..100 {
            assert!(p.rate_at(i as f64 * 0.1) >= 0.0);
        }
    }

    #[test]
    fn sawtooth_ramps_and_wraps() {
        let p = RatePattern::Sawtooth {
            min: 0.0,
            max: 100.0,
            period_secs: 10.0,
        };
        assert!((p.rate_at(5.0) - 50.0).abs() < 1e-9);
        assert!((p.rate_at(15.0) - 50.0).abs() < 1e-9);
        assert!((p.mean_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn square_switches_at_half_period() {
        let p = RatePattern::Square {
            low: 1.0,
            high: 9.0,
            period_secs: 10.0,
        };
        assert_eq!(p.rate_at(2.0), 1.0);
        assert_eq!(p.rate_at(7.0), 9.0);
        assert_eq!(p.mean_rate(), 5.0);
    }

    #[test]
    fn bursty_mean_accounts_for_duty_cycle() {
        let p = RatePattern::Bursty {
            base: 10.0,
            peak: 110.0,
            burst_secs: 10.0,
            period_secs: 100.0,
        };
        assert_eq!(p.rate_at(5.0), 110.0);
        assert_eq!(p.rate_at(50.0), 10.0);
        assert!((p.mean_rate() - 20.0).abs() < 1e-9);
    }
}
