//! Criterion micro-benchmarks for the consolidation optimizer: DIRECT
//! iterations, objective evaluation, local-search polish, and the full
//! bounded pipeline at fleet scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kairos_solver::{
    direct_minimize, evaluate, greedy_pack, polish, solve, Assignment, ConsolidationProblem,
    DirectConfig, LinearDiskCombiner, SolverConfig, TargetMachine, WorkloadSpec,
};
use std::hint::black_box;
use std::sync::Arc;

fn problem(n: usize, windows: usize) -> ConsolidationProblem {
    let w = (0..n)
        .map(|i| {
            WorkloadSpec::flat(
                format!("w{i}"),
                windows,
                0.3 + (i % 7) as f64 * 0.4,
                (2 + (i % 5)) as f64 * 3e9,
                1e9,
                100.0 + (i % 11) as f64 * 90.0,
            )
        })
        .collect();
    ConsolidationProblem::new(
        w,
        TargetMachine::paper_target(),
        n,
        Arc::new(LinearDiskCombiner::default()),
    )
}

fn bench_objective(c: &mut Criterion) {
    let p = problem(100, 288);
    let a = Assignment::new((0..100).map(|i| i % 12).collect());
    c.bench_function("objective/evaluate_100w_288win", |b| {
        b.iter(|| black_box(evaluate(&p, &a).objective))
    });
}

fn bench_direct(c: &mut Criterion) {
    c.bench_function("direct/rastrigin_2d_2000evals", |b| {
        b.iter(|| {
            let r = direct_minimize(
                2,
                &DirectConfig {
                    max_evals: 2000,
                    ..Default::default()
                },
                |x| {
                    let mut s = 20.0;
                    for &xi in x {
                        let z = (xi - 0.5) * 8.0;
                        s += z * z - 10.0 * (2.0 * std::f64::consts::PI * z).cos();
                    }
                    s
                },
            );
            black_box(r.best_f)
        })
    });
}

fn bench_polish(c: &mut Criterion) {
    let p = problem(60, 48);
    let start = Assignment::new((0..60).collect());
    c.bench_function("local/polish_60w_48win", |b| {
        b.iter_batched(
            || start.clone(),
            |s| black_box(polish(&p, &s, 12, 20).assignment),
            BatchSize::SmallInput,
        )
    });
}

fn bench_greedy(c: &mut Criterion) {
    let p = problem(100, 48);
    c.bench_function("greedy/pack_100w_48win", |b| {
        b.iter(|| black_box(greedy_pack(&p).map(|g| g.machines_used)))
    });
}

fn bench_full_solve(c: &mut Criterion) {
    let p = problem(50, 24);
    let cfg = SolverConfig {
        probe_evals: 500,
        final_evals: 2000,
        polish_rounds: 20,
        ..Default::default()
    };
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    group.bench_function("bounded_50w_24win", |b| {
        b.iter(|| black_box(solve(&p, &cfg).unwrap().assignment.machines_used()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_objective,
    bench_direct,
    bench_polish,
    bench_greedy,
    bench_full_solve
);
criterion_main!(benches);
