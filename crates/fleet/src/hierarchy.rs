//! The balancer-of-balancers: zones below, one root above.
//!
//! A single [`crate::FleetController`] balances tenants between its own
//! shards. At mega-fleet scale (a thousand shards, tens of thousands of
//! tenants) one balancer cannot look at every shard every round — so the
//! fleet decomposes into **zones**, each running the ordinary per-shard
//! balance loop over its slice, and a **root balancer** runs the *same*
//! policy one level up:
//!
//! ```text
//!                      ┌───────────────────────────┐
//!                      │       RootBalancer        │
//!                      │  run_balance_round over   │
//!                      │     zone roll-ups only    │
//!                      └──┬─────────┬─────────┬────┘
//!       zone summaries ▲  │         │         │  ▼ group frames
//!                      ┌──┴───┐ ┌───┴──┐ ┌────┴─┐
//!                      │zone 0│ │zone 1│ │zone Z│  Zone = FleetController
//!                      │ ...  │ │ ...  │ │ ...  │  + group bookkeeping
//!                      └──────┘ └──────┘ └──────┘
//! ```
//!
//! Three ideas make the level-up reuse work:
//!
//! 1. **The unit of movement is a tenant *group***, not a tenant. Every
//!    tenant hashes to one of a fixed number of groups ([`group_of`]);
//!    the root balancer moves whole groups, so its working set is
//!    `groups`, not `tenants`, and its audit trail stays readable.
//! 2. **A zone presents itself as one big shard.** [`Zone`] implements
//!    [`ShardHandle`] — summary, reserve, evict, admit, owns — so
//!    [`run_balance_round`] drives zones with the *identical* policy
//!    code that drives shards. Its "summary" is a constant-size roll-up
//!    of the per-shard summaries: counters sum, flags AND/OR, and the
//!    aggregate series sum as sketches
//!    ([`kairos_traces::AggregateSketch::sum`]) — so the roll-up's wire
//!    size is independent of both window length *and* zone width.
//! 3. **Groups travel as one frame.** A group eviction bundles each
//!    member's (sketched) handoff frame into a single checksummed
//!    [`GROUP_WIRE_VERSION`] frame; the receiving zone validates it,
//!    re-binds destination-side telemetry sources, and admits every
//!    member — the same decode-before-touch discipline as the tenant
//!    handoff path.
//!
//! The root never sees a tenant's telemetry, a shard's summary, or a
//! per-tenant forecast: its inputs are zone roll-ups and group-level
//! peak envelopes only, which is what keeps the per-round root cost flat
//! as shards multiply (the `"hierarchy"` section of `BENCH_fleet.json`
//! pins this).

use crate::balancer::{
    run_balance_round, BalancerConfig, EvictedTenant, ParkedHandoff, ShardHandle,
};
use crate::fleet::FleetController;
use crate::handoff::{HandoffOutcome, HandoffRecord};
use kairos_controller::{ShardSummary, TelemetrySource, TenantHandoff, TenantLoad};
use kairos_obs::{
    Counter, DecisionEvent, DecisionLog, Histogram, MetricsRegistry, SpanLog, TracedEvent,
};
use kairos_traces::AggregateSketch;
use kairos_types::{Bytes, DiskDemand, Rate, WorkloadProfile};
use std::collections::BTreeMap;
use std::time::Instant;

/// Frame version for a bundled group handoff — `(group name, member
/// handoff frames)` under the standard `kairos-store` envelope. Each
/// member frame is itself a complete
/// [`kairos_controller::HANDOFF_WIRE_VERSION`] frame (sketched
/// telemetry, its own CRC), so a damaged member is caught by its own
/// checksum even before the group checksum is consulted.
pub const GROUP_WIRE_VERSION: u32 = 1;

/// Deterministic tenant → group partition (FNV-1a over the name, mod
/// `groups`). Stable across processes, platforms and runs — the
/// property that lets any zone, the root, and the bench all agree on
/// membership without ever exchanging it.
pub fn group_of(tenant: &str, groups: usize) -> usize {
    debug_assert!(groups > 0, "group count must be positive");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % groups.max(1) as u64) as usize
}

/// Canonical display name for group `index` — the "tenant" identifier
/// the root balancer's records and traces carry.
pub fn group_name(index: usize) -> String {
    format!("g{index}")
}

/// Inverse of [`group_name`].
pub fn group_index(name: &str) -> Option<usize> {
    name.strip_prefix('g')?.parse().ok()
}

/// One group's resident membership inside a zone, as
/// [`Zone::resident_groups`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantGroup {
    pub index: usize,
    /// Member tenants, sorted (deterministic eviction order).
    pub members: Vec<String>,
}

/// A zone's constant-size roll-up with its provenance — what
/// [`Zone::rollup`] computes and a zone node serves the root over RPC.
/// `summary` is shaped exactly like a shard's [`ShardSummary`] (that is
/// the point: the root's policy code cannot tell zones from shards);
/// its `tenant_loads` are *group* envelopes, one per resident group,
/// with `replicas` carrying the group's summed member replica count.
#[derive(Debug, Clone)]
pub struct ZoneRollup {
    pub zone: usize,
    pub shards: usize,
    pub tenants: usize,
    pub groups: usize,
    pub summary: ShardSummary,
}

impl ZoneRollup {
    /// The roll-up's encoded size (workspace codec) — the quantity the
    /// sketches hold independent of window length, reported in
    /// [`DecisionEvent::ZoneSummarized`] and the hierarchy bench.
    pub fn encoded_len(&self) -> usize {
        serde::to_bytes(&self.summary).len()
    }
}

/// Binds a destination-side telemetry source for a tenant admitted into
/// a zone — the cross-zone analogue of `kairos-net`'s admit-path source
/// binder. A group frame carries sketched history, never live sources;
/// whoever admits it must be able to produce fresh sources by name.
pub type ZoneSourceBinder = Box<dyn FnMut(&str, u64) -> Option<Box<dyn TelemetrySource>> + Send>;

/// A zone: one [`FleetController`] plus the group bookkeeping that lets
/// it stand in for "one big shard" under the root balancer. Implements
/// [`ShardHandle`], so [`run_balance_round`] — unchanged — is the root
/// balance policy.
pub struct Zone {
    id: usize,
    fleet: FleetController,
    groups: usize,
    binder: ZoneSourceBinder,
    /// Roll-up memo for the current fleet tick: the root's event pass
    /// and the balance round both ask for the summary each round, and
    /// the underlying per-shard summaries are themselves cached.
    rollup_cache: Option<(u64, ZoneRollup)>,
    /// Zone-level causal spans (`zone_evict`/`zone_admit`, node id
    /// `span::node_for_zone(id)`): the middle layer of the cross-zone
    /// group-move trace, between the root's `handoff` span and the
    /// member shards' `evict`/`admit` spans.
    spans: SpanLog,
}

impl Zone {
    pub fn new(id: usize, fleet: FleetController, groups: usize, binder: ZoneSourceBinder) -> Zone {
        assert!(groups > 0, "group count must be positive");
        Zone {
            id,
            fleet,
            groups,
            binder,
            rollup_cache: None,
            spans: SpanLog::new(kairos_obs::span::node_for_zone(id)),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Fleet-wide tenant-group count this zone partitions by.
    pub fn groups(&self) -> usize {
        self.groups
    }

    pub fn fleet(&self) -> &FleetController {
        &self.fleet
    }

    pub fn fleet_mut(&mut self) -> &mut FleetController {
        &mut self.fleet
    }

    /// Enable or disable causal span tracing for the whole zone: the
    /// zone's own log plus its fleet, with member shards renumbered into
    /// the hierarchy's node-id space (`span::node_for_zone_shard`).
    pub fn set_span_tracing(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
        self.fleet.set_span_tracing(enabled);
        self.fleet
            .set_span_node(kairos_obs::span::node_for_zone_balancer(self.id));
        for (i, shard) in self.fleet.shards_mut().iter_mut().enumerate() {
            shard.configure_spans(kairos_obs::span::node_for_zone_shard(self.id, i), enabled);
        }
    }

    /// The zone-level span log (`zone_evict`/`zone_admit` spans).
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// Every span recorded in this zone — zone-level first, then the
    /// fleet's (balancer + member shards).
    pub fn all_spans(&self) -> Vec<kairos_obs::SpanRecord> {
        let mut all = self.spans.to_vec();
        all.extend(self.fleet.all_spans());
        all
    }

    /// One monitoring interval for the whole zone: every shard ticks and
    /// the zone's own (shard-level) balance cadence runs. Invalidate the
    /// roll-up memo — state moved.
    pub fn tick(&mut self) -> crate::fleet::FleetTickReport {
        self.rollup_cache = None;
        self.fleet.tick()
    }

    /// Groups with at least one member resident in this zone, members
    /// sorted — the deterministic order group evictions walk.
    pub fn resident_groups(&self) -> Vec<TenantGroup> {
        let mut by_group: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (tenant, _) in self.fleet.map().entries() {
            by_group
                .entry(group_of(tenant, self.groups))
                .or_default()
                .push(tenant.to_string());
        }
        by_group
            .into_iter()
            .map(|(index, mut members)| {
                members.sort();
                TenantGroup { index, members }
            })
            .collect()
    }

    /// Sorted members of one group resident here (empty if none).
    fn members_of(&self, group: usize) -> Vec<String> {
        let mut members: Vec<String> = self
            .fleet
            .map()
            .entries()
            .filter(|(t, _)| group_of(t, self.groups) == group)
            .map(|(t, _)| t.to_string())
            .collect();
        members.sort();
        members
    }

    /// The zone as one constant-size summary: counters sum, health flags
    /// AND/OR, aggregates sum *as sketches*, and `tenant_loads` carries
    /// one peak envelope per resident group (`replicas` = summed member
    /// replicas). Everything derives from the shards' (cached) summaries
    /// — no per-tenant telemetry is touched.
    pub fn rollup(&mut self) -> ZoneRollup {
        let tick = self.fleet.stats().ticks;
        if let Some((at, cached)) = &self.rollup_cache {
            if *at == tick {
                return cached.clone();
            }
        }
        let groups = self.groups;
        let interval = self.fleet.config().shard.telemetry.interval_secs;
        let summaries: Vec<ShardSummary> = self
            .fleet
            .shards_mut()
            .iter_mut()
            .map(|s| s.summary_cached())
            .collect();
        let aggregate = AggregateSketch::sum(summaries.iter().map(|s| &s.aggregate), interval);
        let mut loads: BTreeMap<usize, TenantLoad> = BTreeMap::new();
        for s in &summaries {
            for t in &s.tenant_loads {
                let g = group_of(&t.name, groups);
                let entry = loads.entry(g).or_insert_with(|| TenantLoad {
                    name: group_name(g),
                    replicas: 0,
                    cpu_peak: 0.0,
                    ram_peak: 0.0,
                    ws_peak: 0.0,
                    rate_peak: 0.0,
                });
                entry.replicas += t.replicas;
                entry.cpu_peak += t.cpu_peak;
                entry.ram_peak += t.ram_peak;
                entry.ws_peak += t.ws_peak;
                entry.rate_peak += t.rate_peak;
            }
        }
        let rollup = ZoneRollup {
            zone: self.id,
            shards: summaries.len(),
            tenants: summaries.iter().map(|s| s.tenants).sum(),
            groups: loads.len(),
            summary: ShardSummary {
                tenants: summaries.iter().map(|s| s.tenants).sum(),
                // A zone is "planned" when every shard that *has*
                // tenants has planned them. An empty shard never
                // bootstraps, but an empty (or partly empty) zone is
                // still a perfectly good receiver — admitted members
                // bootstrap it.
                planned: summaries.iter().all(|s| s.planned || s.tenants == 0),
                machines_used: summaries.iter().map(|s| s.machines_used).sum(),
                feasible: summaries.iter().all(|s| s.feasible),
                violation: summaries.iter().map(|s| s.violation).sum(),
                resolve_failed: summaries.iter().any(|s| s.resolve_failed),
                drifting: summaries.iter().map(|s| s.drifting).sum(),
                aggregate,
                tenant_loads: loads.into_values().collect(),
            },
        };
        self.rollup_cache = Some((tick, rollup.clone()));
        rollup
    }

    /// The shard-level admission bar group admits certify against: the
    /// zone's own balancer low watermark — the same bar its internal
    /// balance rounds hold receivers to.
    fn per_shard_target(&self) -> usize {
        self.fleet.config().balancer.shed_target()
    }

    /// Index of the emptiest planned shard (fewest machines in use),
    /// falling back to the least-populated unplanned shard — an empty
    /// shard has not bootstrapped yet, but admitting into it is exactly
    /// how it starts.
    fn emptiest_shard(&mut self) -> Option<usize> {
        let summaries: Vec<ShardSummary> = self
            .fleet
            .shards_mut()
            .iter_mut()
            .map(|s| s.summary_cached())
            .collect();
        (0..summaries.len())
            .filter(|&i| summaries[i].planned)
            .min_by_key(|&i| summaries[i].machines_used)
            .or_else(|| {
                (0..summaries.len())
                    .min_by_key(|&i| (summaries[i].tenants, summaries[i].machines_used))
            })
    }
}

impl ShardHandle for Zone {
    fn summary(&mut self) -> ShardSummary {
        self.rollup().summary
    }

    fn pack_estimate_remaining(&mut self) -> Option<usize> {
        self.fleet.pack_estimate_total()
    }

    /// A *group's* forecast: the flat peak envelope of its resident
    /// members, straight from the roll-up (sums of per-tenant forecast
    /// peaks). Deliberately conservative — a receiver zone certifying
    /// this envelope certainly fits the group's true series — and O(1)
    /// in window length, like everything the root consumes.
    fn forecast(&mut self, tenant: &str) -> Option<WorkloadProfile> {
        let rollup = self.rollup();
        let load = rollup
            .summary
            .tenant_loads
            .iter()
            .find(|t| t.name == tenant)?;
        let horizon = self.fleet.config().shard.horizon.max(1);
        let interval = self.fleet.config().shard.telemetry.interval_secs;
        Some(WorkloadProfile::flat(
            tenant,
            interval,
            horizon,
            load.cpu_peak,
            Bytes(load.ram_peak.max(0.0) as u64),
            DiskDemand::new(
                Bytes(load.ws_peak.max(0.0) as u64),
                Rate(load.rate_peak.max(0.0)),
            ),
        ))
    }

    /// Zone-level reservation: the emptiest planned shard must certify
    /// the *whole group's* envelope within this zone's own per-shard
    /// low watermark. The root-level `budget` gates donor selection and
    /// ordering (via the roll-up's `machines_used`); admission safety is
    /// enforced where capacity actually lives — at a shard, by the same
    /// greedy packer every tenant-level reservation uses.
    fn can_admit(&mut self, incoming: &WorkloadProfile, _budget: usize) -> bool {
        let target = self.per_shard_target();
        let Some(shard) = self.emptiest_shard() else {
            return false;
        };
        self.fleet.shards()[shard].can_admit(incoming, target)
    }

    /// Evict a whole group: every resident member leaves its shard as a
    /// sketched handoff frame, and the frames bundle into one
    /// [`GROUP_WIRE_VERSION`] frame. Sources are dropped — the admitting
    /// zone re-binds its own, exactly like an RPC admit.
    fn evict(&mut self, tenant: &str) -> Option<EvictedTenant> {
        let group = group_index(tenant)?;
        let members = self.members_of(group);
        if members.is_empty() {
            return None;
        }
        // Chain the member evictions under a zone-level span: the root's
        // handoff context (installed locally, or delivered by the Evict
        // frame's span section) parents it; each member shard's `evict`
        // span parents under this one in turn.
        let zone_ctx = kairos_obs::span::current().and_then(|parent| {
            self.spans.open_child(
                parent,
                "zone_evict",
                self.fleet.stats().ticks,
                &[("group", tenant)],
            )
        });
        let _zone_span = kairos_obs::span::install(zone_ctx);
        let mut frames: Vec<Vec<u8>> = Vec::with_capacity(members.len());
        for member in &members {
            // In-process evictions cannot fail for resident tenants.
            let frame = self
                .fleet
                .evict_tenant(member)
                .expect("resident member evicts");
            frames.push(frame);
        }
        self.rollup_cache = None;
        let wire = kairos_store::encode_frame(GROUP_WIRE_VERSION, &(tenant.to_string(), frames));
        Some(EvictedTenant {
            name: tenant.to_string(),
            wire,
            source: None,
        })
    }

    /// Admit a group frame: validate, decode every member, bind every
    /// destination-side source, and only then touch state — so a damaged
    /// frame or an unbindable member rejects the whole group with zero
    /// state change (the round's rollback then re-admits it at the
    /// donor). Members land on the emptiest planned shard; the zone's
    /// own balance rounds spread them from there.
    fn admit(&mut self, tenant: EvictedTenant) -> Result<(), EvictedTenant> {
        let Ok((group, frames)) =
            kairos_store::decode_frame::<(String, Vec<Vec<u8>>)>(&tenant.wire, GROUP_WIRE_VERSION)
        else {
            return Err(tenant);
        };
        if group != tenant.name {
            return Err(tenant);
        }
        let at_tick = self.fleet.stats().ticks;
        let mut members = Vec::with_capacity(frames.len());
        for frame in &frames {
            let Ok((name, replicas, telemetry)) = TenantHandoff::parts_from_wire(frame) else {
                return Err(tenant);
            };
            let Some(source) = (self.binder)(&name, at_tick) else {
                return Err(tenant);
            };
            if source.name() != name {
                return Err(tenant);
            }
            members.push((name, replicas, telemetry, source));
        }
        let Some(shard) = self.emptiest_shard() else {
            return Err(tenant);
        };
        let zone_ctx = kairos_obs::span::current().and_then(|parent| {
            self.spans
                .open_child(parent, "zone_admit", at_tick, &[("group", &group)])
        });
        let _zone_span = kairos_obs::span::install(zone_ctx);
        let sketch = self.fleet.shards()[shard].sketch_config();
        for (name, replicas, telemetry, source) in members {
            self.fleet.admit_handoff(
                shard,
                TenantHandoff {
                    name,
                    replicas,
                    source,
                    telemetry,
                    sketch,
                },
            );
        }
        self.rollup_cache = None;
        Ok(())
    }

    fn owns(&mut self, tenant: &str) -> Option<bool> {
        let group = group_index(tenant)?;
        Some(
            self.fleet
                .map()
                .entries()
                .any(|(t, _)| group_of(t, self.groups) == group),
        )
    }
}

/// Root balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct RootConfig {
    /// The balance policy, one level up: `machines_per_shard` reads as
    /// *machines per zone* (a zone becomes a donor above it), the shed
    /// target as the zone-level low watermark, and the cooldown applies
    /// to groups.
    pub balancer: BalancerConfig,
    /// Fleet-wide tenant-group count every zone partitions by.
    pub groups: usize,
}

impl Default for RootConfig {
    fn default() -> RootConfig {
        RootConfig {
            balancer: BalancerConfig {
                machines_per_shard: 64,
                balance_every: 6,
                max_moves_per_round: 4,
                low_watermark: 0,
                cooldown_rounds: 2,
            },
            groups: 64,
        }
    }
}

/// Counters and latency the root exposes, in its own registry so a
/// mega-fleet's dashboards separate root rounds from zone internals.
struct RootMetrics {
    registry: MetricsRegistry,
    rounds: Counter,
    groups_moved: Counter,
    moves_rejected: Counter,
    moves_failed: Counter,
    round_usecs: Histogram,
    summary_bytes: Counter,
}

impl RootMetrics {
    fn new() -> RootMetrics {
        let registry = MetricsRegistry::new();
        RootMetrics {
            rounds: registry.counter("root_balance_rounds"),
            groups_moved: registry.counter("root_groups_moved"),
            moves_rejected: registry.counter("root_moves_rejected"),
            moves_failed: registry.counter("root_moves_failed"),
            round_usecs: registry.histogram("root_round_usecs"),
            summary_bytes: registry.counter("root_summary_bytes_total"),
            registry,
        }
    }
}

/// The fleet-of-fleets balancer: [`run_balance_round`] over zone
/// roll-ups, moving tenant groups. Owns the root-level soft state
/// (group cooldowns, parked group handoffs), its own decision trace
/// ([`DecisionEvent::ZoneSummarized`], [`DecisionEvent::GroupMoved`]
/// plus the ordinary balancer events with zones in the shard slots),
/// and its own metrics registry.
pub struct RootBalancer {
    cfg: RootConfig,
    rounds: u64,
    cooldown: BTreeMap<String, u64>,
    parked: Vec<ParkedHandoff>,
    log: DecisionLog,
    moves: Vec<HandoffRecord>,
    metrics: RootMetrics,
    /// Root-level causal spans (`balance_round` roots with
    /// `handoff`/`parked_retry` children, node id `span::NODE_ROOT`) —
    /// the top of the cross-zone group-move trace.
    spans: SpanLog,
}

impl RootBalancer {
    pub fn new(cfg: RootConfig) -> RootBalancer {
        assert!(cfg.groups > 0, "group count must be positive");
        RootBalancer {
            cfg,
            rounds: 0,
            cooldown: BTreeMap::new(),
            parked: Vec::new(),
            log: DecisionLog::new(),
            moves: Vec::new(),
            metrics: RootMetrics::new(),
            spans: SpanLog::new(kairos_obs::span::NODE_ROOT),
        }
    }

    pub fn config(&self) -> &RootConfig {
        &self.cfg
    }

    /// Balance rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Every group move ever proposed (completed and rejected).
    pub fn handoffs(&self) -> &[HandoffRecord] {
        &self.moves
    }

    /// Root-level parked group handoffs as `(group, donor zone,
    /// receiver zone)` — only a lossy transport can populate this.
    pub fn parked(&self) -> Vec<(String, usize, usize)> {
        self.parked
            .iter()
            .map(|p| (p.tenant.name.clone(), p.donor, p.receiver))
            .collect()
    }

    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    pub fn metrics_json(&self) -> String {
        self.metrics.registry.render_json()
    }

    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.log.to_vec()
    }

    pub fn set_tracing(&mut self, enabled: bool) {
        self.log.set_enabled(enabled);
    }

    /// Enable or disable the root's causal span tracing (the zones have
    /// their own [`Zone::set_span_tracing`]).
    pub fn set_span_tracing(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
    }

    /// The root's span log.
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// One root balance round at fleet tick `tick`: summarize every
    /// zone (traced as [`DecisionEvent::ZoneSummarized`]), then run the
    /// shared balance policy over the roll-ups, moving whole groups
    /// between overloaded and underloaded zones. Returns the round's
    /// records with zones in the donor/receiver slots.
    pub fn run_round<Z: ShardHandle>(&mut self, zones: &mut [Z], tick: u64) -> Vec<HandoffRecord> {
        let started = Instant::now();
        self.rounds += 1;
        self.metrics.rounds.inc();
        // Pre-round roll-up pass: traces each zone's constant-size view
        // and remembers group sizes so completed moves can report them.
        // The balance round's own summary calls hit the zones' memos.
        let mut group_sizes: BTreeMap<String, u32> = BTreeMap::new();
        for (i, zone) in zones.iter_mut().enumerate() {
            let summary = zone.summary();
            let bytes = serde::to_bytes(&summary).len();
            self.metrics.summary_bytes.add(bytes as u64);
            for load in &summary.tenant_loads {
                *group_sizes.entry(load.name.clone()).or_insert(0) += load.replicas;
            }
            self.log.record(
                tick,
                DecisionEvent::ZoneSummarized {
                    zone: i,
                    tenants: summary.tenants,
                    groups: summary.tenant_loads.len(),
                    machines_used: summary.machines_used,
                    summary_bytes: bytes,
                },
            );
        }
        let records = run_balance_round(
            zones,
            &self.cfg.balancer,
            self.rounds,
            tick,
            &mut self.cooldown,
            &mut self.parked,
            &mut self.log,
            &mut self.spans,
        );
        for record in &records {
            match record.outcome {
                HandoffOutcome::Completed => {
                    let to = record.to.expect("completed moves carry a destination");
                    self.metrics.groups_moved.inc();
                    self.log.record(
                        tick,
                        DecisionEvent::GroupMoved {
                            group: record.tenant.clone(),
                            tenants: group_sizes.get(&record.tenant).copied().unwrap_or(0) as usize,
                            from_zone: record.from,
                            to_zone: to,
                        },
                    );
                }
                HandoffOutcome::NoReceiver => self.metrics.moves_rejected.inc(),
                HandoffOutcome::Failed => self.metrics.moves_failed.inc(),
            }
        }
        self.moves.extend(records.iter().cloned());
        self.metrics
            .round_usecs
            .record(started.elapsed().as_micros() as u64);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use kairos_controller::{ControllerConfig, SyntheticSource};
    use kairos_types::Bytes;
    use kairos_workloads::RatePattern;

    fn source(name: &str, tps: f64) -> Box<dyn TelemetrySource> {
        Box::new(
            SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps })
                .with_noise(0.0),
        )
    }

    fn binder() -> ZoneSourceBinder {
        Box::new(|name: &str, _tick: u64| Some(source(name, 50.0)))
    }

    fn zone_with(id: usize, tenants: &[&str], budget: usize) -> Zone {
        let cfg = FleetConfig {
            shards: 2,
            shard: ControllerConfig {
                horizon: 8,
                check_every: 4,
                cooldown_ticks: 8,
                ..ControllerConfig::default()
            },
            balancer: BalancerConfig {
                machines_per_shard: budget,
                balance_every: 4,
                ..BalancerConfig::default()
            },
            tick_threads: 1,
        };
        let mut fleet = FleetController::new(cfg);
        for t in tenants {
            fleet.add_workload(source(t, 50.0));
        }
        let mut zone = Zone::new(id, fleet, 8, binder());
        for _ in 0..10 {
            zone.tick();
        }
        zone
    }

    #[test]
    fn group_partition_is_deterministic_and_total() {
        for groups in [1, 8, 64] {
            for t in ["t0", "t1", "alpha", "bravo"] {
                let g = group_of(t, groups);
                assert!(g < groups);
                assert_eq!(g, group_of(t, groups));
            }
        }
        assert_eq!(group_index(&group_name(17)), Some(17));
    }

    #[test]
    fn rollup_sums_shards_and_buckets_groups() {
        let mut zone = zone_with(0, &["t0", "t1", "t2", "t3"], 16);
        let rollup = zone.rollup();
        assert_eq!(rollup.tenants, 4);
        assert!(rollup.summary.planned);
        assert!(rollup.summary.machines_used >= 1);
        // Every tenant is accounted to exactly one group envelope.
        let members: u32 = rollup.summary.tenant_loads.iter().map(|t| t.replicas).sum();
        assert_eq!(members, 4);
        // The roll-up is constant-size: its encoded length must not
        // scale with the monitoring window (sketch marks dominate).
        assert!(
            rollup.encoded_len() < 4096,
            "rollup {}B",
            rollup.encoded_len()
        );
    }

    #[test]
    fn group_evict_admit_moves_whole_group_between_zones() {
        let mut donor = zone_with(0, &["t0", "t1", "t2", "t3"], 16);
        let mut receiver = zone_with(1, &[], 16);
        let groups = donor.resident_groups();
        let g = groups[0].index;
        let moved = groups[0].members.clone();
        let evicted = ShardHandle::evict(&mut donor, &group_name(g)).expect("group evicts");
        assert!(ShardHandle::owns(&mut donor, &group_name(g)) == Some(false));
        assert!(ShardHandle::admit(&mut receiver, evicted).is_ok());
        assert_eq!(ShardHandle::owns(&mut receiver, &group_name(g)), Some(true));
        for t in &moved {
            assert!(receiver.fleet().map().shard_of(t).is_some());
            assert!(donor.fleet().map().shard_of(t).is_none());
        }
    }

    #[test]
    fn damaged_group_frame_rejects_with_zero_state_change() {
        let mut donor = zone_with(0, &["t0", "t1", "t2", "t3"], 16);
        let mut receiver = zone_with(1, &[], 16);
        let g = donor.resident_groups()[0].index;
        let mut evicted = ShardHandle::evict(&mut donor, &group_name(g)).expect("group evicts");
        let before = receiver.fleet().map().len();
        let mid = evicted.wire.len() / 2;
        evicted.wire[mid] ^= 0x40;
        assert!(ShardHandle::admit(&mut receiver, evicted).is_err());
        assert_eq!(receiver.fleet().map().len(), before);
    }

    #[test]
    fn root_round_moves_groups_off_the_overloaded_zone() {
        // Zone 0 far over its (tiny) zone budget, zone 1 idle.
        let mut zones = vec![
            zone_with(0, &["t0", "t1", "t2", "t3", "t4", "t5"], 16),
            zone_with(1, &[], 16),
        ];
        let mut root = RootBalancer::new(RootConfig {
            balancer: BalancerConfig {
                machines_per_shard: 1,
                balance_every: 1,
                max_moves_per_round: 4,
                low_watermark: 0,
                cooldown_rounds: 0,
            },
            groups: 8,
        });
        let mut completed = 0;
        for round in 0..4 {
            let records = root.run_round(&mut zones, round);
            completed += records
                .iter()
                .filter(|r| r.outcome == HandoffOutcome::Completed)
                .count();
        }
        assert!(completed > 0, "root must move at least one group");
        assert!(!zones[1].fleet().map().is_empty());
        let events = root.trace_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.event, DecisionEvent::ZoneSummarized { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, DecisionEvent::GroupMoved { .. })));
        assert!(root.metrics_json().contains("root_groups_moved"));
    }
}
