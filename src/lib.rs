//! # Kairos — workload-aware database monitoring and consolidation
//!
//! A from-scratch Rust reproduction of *Curino, Jones, Madden,
//! Balakrishnan: "Workload-Aware Database Monitoring and Consolidation",
//! SIGMOD 2011* — the Kairos system — including every substrate the paper
//! depends on (a DBMS/host simulator, workload generators, an rrd-style
//! monitoring store, a DIRECT global optimizer) and a harness regenerating
//! every table and figure of its evaluation.
//!
//! This facade crate re-exports the workspace so examples and integration
//! tests can span crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `kairos-types` | units, time series, machine specs, profiles |
//! | [`dbsim`] | `kairos-dbsim` | buffer pool, WAL, flusher, disk/CPU devices, hosts |
//! | [`workloads`] | `kairos-workloads` | TPC-C-like, Wikipedia-like, synthetic generators |
//! | [`monitor`] | `kairos-monitor` | resource monitor + buffer-pool gauging |
//! | [`diskmodel`] | `kairos-diskmodel` | empirical disk profiler + LAR polynomial fit |
//! | [`solver`] | `kairos-solver` | DIRECT, greedy baseline, fractional bound, warm restarts |
//! | [`traces`] | `kairos-traces` | rrd store + synthetic production fleets |
//! | [`vmsim`] | `kairos-vmsim` | DB-in-VM / DB-per-process baselines |
//! | [`core`] | `kairos-core` | combined-load estimator + consolidation engine |
//! | [`controller`] | `kairos-controller` | online rolling-horizon consolidation daemon |
//! | [`fleet`] | `kairos-fleet` | sharded control plane: per-shard loops + cross-shard balancer |
//! | [`net`] | `kairos-net` | multi-node transport: RPC shard/balancer roles over loopback or TCP |
//!
//! ## Quickstart: one-shot consolidation
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use kairos::core::prelude::*;
//!
//! // Profile a small fleet (here: synthetic flat profiles)…
//! let profiles = demo_profiles();
//! // …and ask Kairos for a consolidation plan onto 12-core/96 GB targets.
//! let engine = ConsolidationEngine::builder().build();
//! let plan = engine.consolidate(&profiles).expect("feasible");
//! assert!(plan.machines_used() <= profiles.len());
//! ```
//!
//! ## Quickstart: the online loop
//!
//! The paper's pipeline is one-shot; [`controller`] turns it into a
//! continuous control loop — stream telemetry into rolling RRD windows,
//! detect drift against the planned profiles, re-solve *warm* with a
//! migration-cost objective, and execute a capacity-safe move list
//! against the simulated fleet. `examples/online_consolidation.rs` runs
//! the full drift-scenario suite (diurnal phase shift, flash crowd,
//! workload churn, stationary control); the short version:
//!
//! ```
//! use kairos::controller::prelude::*;
//!
//! // A stationary fleet: the controller plans once, then stays quiet.
//! let report = run_scenario(
//!     &ControllerConfig::default(),
//!     scenario_stationary(6, 120),
//! );
//! assert_eq!(report.resolves, 0);
//! assert!(report.final_feasible);
//!
//! // A flash crowd forces exactly the cheap kind of re-plan: warm-started
//! // and churn-bounded by the migration-cost term.
//! let crowd = run_scenario(
//!     &ControllerConfig::default(),
//!     scenario_flash_crowd(8, 160),
//! );
//! assert!(crowd.resolves >= 1);
//! assert!(crowd.final_feasible);
//! ```
//!
//! Building blocks, individually reusable:
//!
//! * [`controller::TelemetryIngester`] — [`monitor`] samples → rolling
//!   [`traces::Rrd`] windows per workload;
//! * [`controller::DriftDetector`] — phase-aligned, one-sided relative
//!   RMSE against the planned horizon (overload trips fast, slack lazily);
//! * [`controller::ReSolver`] — [`solver::solve_warm`] +
//!   [`solver::MigrationCost`]: plans that move less win among near-equals;
//! * [`controller::plan_migration`] — diff two placements into an ordered
//!   move list whose every intermediate state respects capacity;
//! * [`controller::FleetExecutor`] — applies the moves to simulated
//!   [`dbsim::Host`]s, estimating copy traffic and migration time.

pub use kairos_controller as controller;
pub use kairos_core as core;
pub use kairos_dbsim as dbsim;
pub use kairos_diskmodel as diskmodel;
pub use kairos_fleet as fleet;
pub use kairos_monitor as monitor;
pub use kairos_net as net;
pub use kairos_obs as obs;
pub use kairos_solver as solver;
pub use kairos_store as store;
pub use kairos_traces as traces;
pub use kairos_types as types;
pub use kairos_vmsim as vmsim;
pub use kairos_workloads as workloads;
