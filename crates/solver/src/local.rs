//! Local-search polish with incremental evaluation.
//!
//! §6: once K′ is fixed, "this allows us to parametrize the DIRECT
//! algorithm in favor of local searches to increase the quality of the
//! final solution". We complement DIRECT's coarse global structure with a
//! deterministic best-move hill climber over slot→machine moves, using
//! cached per-machine load series so each candidate move costs O(windows)
//! rather than a full re-evaluation.
//!
//! Two layers of caching keep the neighborhood scan cheap:
//!
//! * per-slot series come from the problem's structure-of-arrays cache
//!   ([`crate::problem::SlotSeries`]) — no per-window bounds-checked
//!   lookups in the inner loops;
//! * per-machine extrema (peak CPU/RAM over the horizon) feed a sound
//!   **lower-bound pruner**: candidate moves whose best-case objective
//!   delta provably cannot beat the incumbent are skipped without
//!   touching the load series. Pruning never changes the chosen move —
//!   only moves that could not have won are skipped — so polish results
//!   are identical with pruning on or off.

use crate::objective::{evaluate, Evaluation};
use crate::problem::{Assignment, ConsolidationProblem, SlotSeries};
use std::sync::Arc;

const PENALTY: f64 = 1e4;

struct MachineState {
    slots: Vec<usize>,
    cpu: Vec<f64>,
    ram: Vec<f64>,
    ws: Vec<f64>,
    rate: Vec<f64>,
    /// Objective contribution (mean-exp) — 0 when empty.
    contrib: f64,
    /// Resource-excess + co-location violations on this machine.
    violation: f64,
    /// Peak CPU / RAM over the horizon (pruning bounds; refreshed with
    /// the score).
    cpu_peak: f64,
    ram_peak: f64,
}

struct SearchState<'a> {
    problem: &'a ConsolidationProblem,
    /// Shared slot cache; the slot list itself is `series.slots`.
    series: Arc<SlotSeries>,
    machines: Vec<MachineState>,
    assignment: Vec<usize>,
    /// Slots currently off the migration baseline (0 without a baseline);
    /// kept incrementally so the cached objective matches `evaluate`.
    mig_moves: usize,
    /// Moves skipped by the lower-bound pruner (observability).
    pruned: usize,
}

impl<'a> SearchState<'a> {
    fn new(
        problem: &'a ConsolidationProblem,
        assignment: &Assignment,
        k: usize,
    ) -> SearchState<'a> {
        let series = problem.slot_series().clone();
        let windows = problem.windows;
        let mut machines: Vec<MachineState> = (0..k)
            .map(|_| MachineState {
                slots: Vec::new(),
                cpu: vec![0.0; windows],
                ram: vec![0.0; windows],
                ws: vec![0.0; windows],
                rate: vec![0.0; windows],
                contrib: 0.0,
                violation: 0.0,
                cpu_peak: 0.0,
                ram_peak: 0.0,
            })
            .collect();
        let mut asg = assignment.machine_of.clone();
        for (s, m) in asg.iter_mut().enumerate() {
            // Clamp any out-of-range machine and force pins.
            if *m >= k {
                *m = k - 1;
            }
            let slot = series.slots[s];
            if slot.replica == 0 {
                if let Some(pin) = problem.workloads[slot.workload].pinned {
                    if pin < k {
                        *m = pin;
                    }
                }
            }
            machines[*m].slots.push(s);
        }
        let mig_moves = problem
            .migration
            .as_ref()
            .map(|m| m.moves(&asg))
            .unwrap_or(0);
        let mut state = SearchState {
            problem,
            series,
            machines,
            assignment: asg,
            mig_moves,
            pruned: 0,
        };
        for m in 0..k {
            state.recompute_sums(m);
            state.refresh(m);
        }
        state
    }

    fn recompute_sums(&mut self, m: usize) {
        let windows = self.problem.windows;
        let ms = &mut self.machines[m];
        ms.cpu[..windows].fill(0.0);
        ms.ram[..windows].fill(0.0);
        ms.ws[..windows].fill(0.0);
        ms.rate[..windows].fill(0.0);
        for i in 0..ms.slots.len() {
            let s = ms.slots[i];
            let base = s * windows;
            for t in 0..windows {
                ms.cpu[t] += self.series.cpu[base + t];
                ms.ram[t] += self.series.ram[base + t];
                ms.ws[t] += self.series.ws[base + t];
                ms.rate[t] += self.series.rate[base + t];
            }
        }
    }

    /// Recompute the cached contribution and violation of machine `m`.
    fn refresh(&mut self, m: usize) {
        let (contrib, violation) = self.score_machine(m);
        let windows = self.problem.windows;
        let ms = &mut self.machines[m];
        ms.contrib = contrib;
        ms.violation = violation;
        if ms.slots.is_empty() {
            ms.cpu_peak = 0.0;
            ms.ram_peak = 0.0;
        } else {
            ms.cpu_peak = ms.cpu[..windows].iter().copied().fold(0.0, f64::max);
            ms.ram_peak = ms.ram[..windows].iter().copied().fold(0.0, f64::max);
        }
    }

    fn score_machine(&self, m: usize) -> (f64, f64) {
        let ms = &self.machines[m];
        if ms.slots.is_empty() {
            return (0.0, 0.0);
        }
        let p = self.problem;
        let cap = p.machine;
        let weights = p.weights;
        let wsum = weights.total().max(1e-12);
        let mut exp_sum = 0.0;
        let mut violation = 0.0;
        for t in 0..p.windows {
            let cpu = ms.cpu[t] / cap.cpu_cores;
            let ram = ms.ram[t] / cap.ram_bytes;
            let disk = p.disk.utilization(ms.ws[t], ms.rate[t]);
            for u in [cpu, ram, disk] {
                if u > p.headroom {
                    violation += u - p.headroom;
                }
            }
            let norm = (weights.cpu * cpu + weights.ram * ram + weights.disk * disk) / wsum;
            exp_sum += norm.clamp(0.0, 1.0).exp();
        }
        // Co-location violations among this machine's slots.
        for (i, &a) in ms.slots.iter().enumerate() {
            for &b in &ms.slots[i + 1..] {
                let (sa, sb) = (self.series.slots[a], self.series.slots[b]);
                if sa.workload == sb.workload {
                    violation += 1.0;
                }
                if p.anti_affinity.iter().any(|&(x, y)| {
                    (x, y) == (sa.workload, sb.workload) || (y, x) == (sa.workload, sb.workload)
                }) {
                    violation += 1.0;
                }
            }
        }
        (exp_sum / p.windows as f64, violation)
    }

    fn total_objective(&self) -> f64 {
        let mut contrib: f64 = self.machines.iter().map(|m| m.contrib).sum();
        let violation: f64 = self.machines.iter().map(|m| m.violation).sum();
        if let Some(m) = &self.problem.migration {
            contrib += m.cost_per_move * self.mig_moves as f64;
        }
        if violation > 0.0 {
            contrib + PENALTY * (1.0 + violation)
        } else {
            contrib
        }
    }

    fn total_violation(&self) -> f64 {
        self.machines.iter().map(|m| m.violation).sum()
    }

    /// Apply `slot → dst`, updating caches.
    fn apply_move(&mut self, slot: usize, dst: usize) {
        let src = self.assignment[slot];
        if src == dst {
            return;
        }
        let windows = self.problem.windows;
        let base = slot * windows;
        let pos = self.machines[src]
            .slots
            .iter()
            .position(|&s| s == slot)
            .expect("slot tracked on its machine");
        self.machines[src].slots.swap_remove(pos);
        {
            let ms = &mut self.machines[src];
            for t in 0..windows {
                ms.cpu[t] -= self.series.cpu[base + t];
                ms.ram[t] -= self.series.ram[base + t];
                ms.ws[t] -= self.series.ws[base + t];
                ms.rate[t] -= self.series.rate[base + t];
            }
        }
        self.machines[dst].slots.push(slot);
        {
            let ms = &mut self.machines[dst];
            for t in 0..windows {
                ms.cpu[t] += self.series.cpu[base + t];
                ms.ram[t] += self.series.ram[base + t];
                ms.ws[t] += self.series.ws[base + t];
                ms.rate[t] += self.series.rate[base + t];
            }
        }
        if let Some(m) = &self.problem.migration {
            if let Some(&Some(base)) = m.baseline.get(slot) {
                if src == base && dst != base {
                    self.mig_moves += 1;
                } else if src != base && dst == base {
                    self.mig_moves -= 1;
                }
            }
        }
        self.assignment[slot] = dst;
        self.refresh(src);
        self.refresh(dst);
    }

    /// Objective if `slot` moved to `dst` (without committing).
    fn probe_move(&mut self, slot: usize, dst: usize) -> f64 {
        let src = self.assignment[slot];
        if src == dst {
            return self.total_objective();
        }
        self.apply_move(slot, dst);
        let obj = self.total_objective();
        self.apply_move(slot, src);
        obj
    }

    /// Upper bound on what moving `slot` anywhere could gain, valid when
    /// the current state is violation-free. Removing the slot can drop
    /// its source machine's contribution at most to 1 (the mean-exp floor
    /// of a non-empty machine) or to 0 if the machine empties; adding it
    /// elsewhere never *decreases* any destination's contribution (loads
    /// are non-negative, so per-window `exp(clamp(norm))` is monotone);
    /// and the migration term can recover at most one move's cost (when
    /// the slot is currently off its baseline).
    fn single_move_gain_bound(&self, slot: usize) -> f64 {
        let src = self.assignment[slot];
        let ms = &self.machines[src];
        let floor = if ms.slots.len() > 1 { 1.0 } else { 0.0 };
        let mig_relief = match &self.problem.migration {
            Some(m) => match m.baseline.get(slot) {
                Some(&Some(b)) if b != src => m.cost_per_move,
                _ => 0.0,
            },
            None => 0.0,
        };
        (ms.contrib - floor) + mig_relief
    }

    /// Would placing `slot` on `dst` provably violate a CPU or RAM
    /// capacity constraint? Sound per-machine-peak bound:
    /// `max_t(dst_t + slot_t) ≥ max_t(dst_t) + min_t(slot_t)`, so when
    /// the cached destination peak plus the slot's cached minimum already
    /// exceeds capacity·headroom, the combined series certainly does.
    /// (Disk is non-linear and excluded — the bound stays conservative.)
    fn dst_certainly_violates(&self, slot: usize, dst: usize) -> bool {
        let ms = &self.machines[dst];
        if ms.slots.is_empty() {
            return false;
        }
        let cap = self.problem.machine;
        let headroom = self.problem.headroom;
        ms.cpu_peak + self.series.cpu_min[slot] > cap.cpu_cores * headroom
            || ms.ram_peak + self.series.ram_min[slot] > cap.ram_bytes * headroom
    }
}

/// Outcome of a polish run.
#[derive(Debug, Clone)]
pub struct PolishReport {
    pub assignment: Assignment,
    pub evaluation: Evaluation,
    pub moves: usize,
    pub rounds: usize,
    /// Candidate moves skipped by the lower-bound pruner (they provably
    /// could not beat the incumbent; skipping them never changes the
    /// result).
    pub pruned: usize,
}

/// Deterministic best-move local search over `k` machines.
pub fn polish(
    problem: &ConsolidationProblem,
    start: &Assignment,
    k: usize,
    max_rounds: usize,
) -> PolishReport {
    assert!(k >= 1);
    let mut state = SearchState::new(problem, start, k);
    let n_slots = state.series.slots.len();
    let mut moves = 0usize;
    let mut rounds = 0usize;

    for _ in 0..max_rounds {
        rounds += 1;
        let mut improved = false;
        // Single-slot moves.
        for slot in 0..n_slots {
            // Pinned replica-0 slots stay put.
            let s = state.series.slots[slot];
            if s.replica == 0 && problem.workloads[s.workload].pinned.is_some() {
                continue;
            }
            let current = state.total_objective();
            let src = state.assignment[slot];
            // Lower-bound pruning (sound only from a violation-free
            // state, where any new violation costs ≥ PENALTY): if the
            // best case — source contribution collapsing to its floor,
            // destinations absorbing the slot for free, one migration
            // move recovered — cannot improve on the incumbent, no
            // destination needs probing.
            let feasible_now = state.total_violation() == 0.0 && current < PENALTY;
            if feasible_now && current - state.single_move_gain_bound(slot) >= current - 1e-12 {
                state.pruned += k - 1;
                continue;
            }
            let mut best = (current, src);
            for dst in 0..k {
                if dst == src {
                    continue;
                }
                // Capacity pruning: the cached destination peak plus the
                // slot's minimum already exceeds CPU or RAM capacity, so
                // the move is certainly infeasible and cannot beat a
                // feasible incumbent.
                if feasible_now && state.dst_certainly_violates(slot, dst) {
                    state.pruned += 1;
                    continue;
                }
                let obj = state.probe_move(slot, dst);
                if obj < best.0 - 1e-12 {
                    best = (obj, dst);
                }
            }
            if best.1 != src {
                state.apply_move(slot, best.1);
                moves += 1;
                improved = true;
            }
        }
        // Machine-merge moves: relocating a whole machine's slots at once
        // captures the "+1 per server" gain that single moves cannot see
        // (the first slot moved off a balanced pair looks like a loss).
        for src in 0..k {
            let src_slots: Vec<usize> = state.machines[src].slots.clone();
            if src_slots.is_empty() {
                continue;
            }
            if src_slots.iter().any(|&s| {
                let slot = state.series.slots[s];
                slot.replica == 0 && problem.workloads[slot.workload].pinned.is_some()
            }) {
                continue;
            }
            let current = state.total_objective();
            let feasible_now = state.total_violation() == 0.0 && current < PENALTY;
            let src_cpu_min: f64 = state.machines[src].cpu[..problem.windows]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let src_ram_min: f64 = state.machines[src].ram[..problem.windows]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let cap = problem.machine;
            let mut best: Option<(f64, usize)> = None;
            for dst in 0..k {
                if dst == src || state.machines[dst].slots.is_empty() {
                    continue;
                }
                // Same peak+min capacity bound, applied to the whole
                // source machine being folded into `dst`.
                if feasible_now
                    && (state.machines[dst].cpu_peak + src_cpu_min
                        > cap.cpu_cores * problem.headroom
                        || state.machines[dst].ram_peak + src_ram_min
                            > cap.ram_bytes * problem.headroom)
                {
                    state.pruned += src_slots.len();
                    continue;
                }
                for &s in &src_slots {
                    state.apply_move(s, dst);
                }
                let obj = state.total_objective();
                if obj < current - 1e-12 && best.as_ref().is_none_or(|b| obj < b.0) {
                    best = Some((obj, dst));
                }
                for &s in &src_slots {
                    state.apply_move(s, src);
                }
            }
            if let Some((_, dst)) = best {
                for &s in &src_slots {
                    state.apply_move(s, dst);
                }
                moves += src_slots.len();
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let assignment = Assignment::new(state.assignment.clone());
    let evaluation = evaluate(problem, &assignment);
    PolishReport {
        assignment,
        evaluation,
        moves,
        rounds,
        pruned: state.pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(n: usize, cpu_each: f64) -> ConsolidationProblem {
        let w = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 3, cpu_each, 2e9, 1e8, 20.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn incremental_objective_matches_full_evaluation() {
        let p = problem(6, 1.5);
        let a = Assignment::new(vec![0, 1, 2, 0, 1, 2]);
        let state = SearchState::new(&p, &a, 3);
        let full = evaluate(&p, &a);
        assert!(
            (state.total_objective() - full.objective).abs() < 1e-9,
            "incremental {} vs full {}",
            state.total_objective(),
            full.objective
        );
    }

    #[test]
    fn incremental_matches_after_moves() {
        let p = problem(5, 2.0);
        let a = Assignment::new(vec![0, 1, 2, 3, 4]);
        let mut state = SearchState::new(&p, &a, 5);
        state.apply_move(0, 3);
        state.apply_move(4, 1);
        let now = Assignment::new(state.assignment.clone());
        let full = evaluate(&p, &now);
        assert!((state.total_objective() - full.objective).abs() < 1e-9);
    }

    #[test]
    fn polish_consolidates_spread_workloads() {
        // 6 × 1-core workloads easily fit one 12-core machine.
        let p = problem(6, 1.0);
        let spread = Assignment::new(vec![0, 1, 2, 3, 4, 5]);
        let report = polish(&p, &spread, 6, 50);
        assert!(report.evaluation.feasible);
        assert_eq!(
            report.assignment.machines_used(),
            1,
            "{:?}",
            report.assignment
        );
        assert!(report.moves >= 5);
    }

    #[test]
    fn polish_repairs_infeasible_start() {
        // 4 × 5-core workloads cannot share one 12-core machine 4-up, but
        // fit pairwise (10 < 0.95 × 12).
        let p = problem(4, 5.0);
        let packed = Assignment::new(vec![0, 0, 0, 0]);
        let report = polish(&p, &packed, 4, 50);
        assert!(report.evaluation.feasible, "polish must repair violations");
        assert_eq!(report.assignment.machines_used(), 2);
    }

    #[test]
    fn polish_respects_pinning() {
        let mut p = problem(3, 1.0);
        p.workloads[1].pinned = Some(2);
        let start = Assignment::new(vec![0, 2, 0]);
        let report = polish(&p, &start, 3, 50);
        assert!(report.evaluation.feasible);
        assert_eq!(report.assignment.machine_of[1], 2);
    }

    #[test]
    fn polish_respects_replica_anti_affinity() {
        let mut p = problem(2, 1.0);
        p.workloads[0].replicas = 2; // slots: (0,r0), (0,r1), (1,r0)
        let start = Assignment::new(vec![0, 0, 1]);
        let report = polish(&p, &start, 3, 50);
        assert!(report.evaluation.feasible);
        assert_ne!(
            report.assignment.machine_of[0],
            report.assignment.machine_of[1]
        );
    }

    #[test]
    fn polish_is_deterministic() {
        let p = problem(8, 2.3);
        let start = Assignment::new((0..8).collect());
        let a = polish(&p, &start, 8, 50);
        let b = polish(&p, &start, 8, 50);
        assert_eq!(a.assignment, b.assignment);
    }
}
