//! Figure 5 — the objective-function landscape: for a scenario whose
//! optimum uses 4 servers, show (i) the constraint-violation spike below 4
//! servers, (ii) local minima at balanced 5- and 6-server solutions, and
//! (iii) the global minimum at the balanced 4-server solution.

use kairos_bench::{print_table, section};
use kairos_solver::{
    evaluate, Assignment, ConsolidationProblem, LinearDiskCombiner, TargetMachine, WorkloadSpec,
};
use std::sync::Arc;

fn main() {
    // 12 × 3.5-core workloads on 12-core machines with 0.95 headroom:
    // 3 per machine (10.5 cores) fits, 4 (14) does not → K' = 4.
    let workloads: Vec<WorkloadSpec> = (0..12)
        .map(|i| WorkloadSpec::flat(format!("w{i}"), 4, 3.5, 4e9, 5e8, 120.0))
        .collect();
    let problem = ConsolidationProblem::new(
        workloads,
        TargetMachine::paper_target(),
        12,
        Arc::new(LinearDiskCombiner::default()),
    );

    section("Figure 5: objective values across server counts and balance");
    let mut rows = Vec::new();

    // k = 3: any assignment violates the CPU constraint → penalty spike.
    let k3 = Assignment::new((0..12).map(|i| i % 3).collect());
    let e3 = evaluate(&problem, &k3);
    rows.push(vec![
        "3 (infeasible)".into(),
        "4+4+4 per server".into(),
        format!("{:.1}", e3.objective),
        format!("{}", e3.feasible),
    ]);

    // k = 4: balanced (3+3+3+3) = global minimum; skewed variants higher.
    let balanced4 = Assignment::new((0..12).map(|i| i % 4).collect());
    let e4 = evaluate(&problem, &balanced4);
    rows.push(vec![
        "4 (balanced)".into(),
        "3+3+3+3".into(),
        format!("{:.4}", e4.objective),
        format!("{}", e4.feasible),
    ]);

    // k = 5 and 6: feasible but strictly worse (the local minima bands).
    for k in [5usize, 6] {
        let a = Assignment::new((0..12).map(|i| i % k).collect());
        let e = evaluate(&problem, &a);
        rows.push(vec![
            format!("{k} (balanced)"),
            format!("12 workloads over {k}"),
            format!("{:.4}", e.objective),
            format!("{}", e.feasible),
        ]);
    }

    // Imbalance sweep at k = 4: move workloads onto server 0 until it
    // bursts — the left wall of each Fig 5 band.
    for extra in 1..=2 {
        // server 0 gets 3+extra, donor servers shed one each.
        let mut asg: Vec<usize> = (0..12).map(|i| i % 4).collect();
        for e in 0..extra {
            // move one workload from server e+1 to server 0
            let victim = asg
                .iter()
                .position(|&m| m == e + 1)
                .expect("server occupied");
            asg[victim] = 0;
        }
        let a = Assignment::new(asg);
        let e = evaluate(&problem, &a);
        rows.push(vec![
            format!("4 (skew +{extra})"),
            format!("{}+...", 3 + extra),
            format!("{:.4}", e.objective),
            format!("{}", e.feasible),
        ]);
    }

    print_table(&["servers", "shape", "objective", "feasible"], &rows);

    println!();
    println!(
        "global minimum at balanced 4-server solution: {}",
        e4.objective
            < rows
                .iter()
                .skip(2)
                .map(|r| r[2].parse::<f64>().unwrap_or(f64::MAX))
                .fold(f64::MAX, f64::min)
    );
    println!("constraint-violation spike below K': objective jumps by ~1e4 (penalty)");
}
