//! Criterion micro-benchmarks for the DBMS simulator substrate: buffer
//! pool operations, simulated-second throughput, and the probe-scan path
//! buffer-pool gauging stresses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kairos_dbsim::{ClockCache, DbmsConfig, DbmsInstance, Host, OpBatch, PageId, UpdateSpec};
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{Driver, TpccWorkload};
use std::hint::black_box;

fn bench_clock_cache(c: &mut Criterion) {
    c.bench_function("buffer/touch_hit", |b| {
        let mut cache = ClockCache::new(65_536);
        for i in 0..65_536u64 {
            cache.touch(PageId(i), false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 65_536;
            black_box(cache.touch(PageId(i), false))
        })
    });
    c.bench_function("buffer/touch_evicting", |b| {
        let mut cache = ClockCache::new(4_096);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.touch(PageId(i), i.is_multiple_of(3)))
        })
    });
    c.bench_function("buffer/dirty_batch_1k", |b| {
        b.iter_batched(
            || {
                let mut cache = ClockCache::new(16_384);
                for i in 0..8_192u64 {
                    cache.touch(PageId(i), true);
                }
                cache
            },
            |mut cache| black_box(cache.take_dirty_batch(1_000).len()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_instance_tick(c: &mut Criterion) {
    c.bench_function("engine/tick_1k_updates", |b| {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512)));
        let db = inst.create_database("bench");
        let t = inst.create_table(db, 1_000_000, 164).unwrap();
        inst.prewarm_table(t);
        let grant = kairos_dbsim::DeviceGrant {
            fg_fraction: 1.0,
            writeback_pages: 300.0,
            cpu_fraction: 1.0,
            cpu_latency_factor: 1.0,
            read_service_secs: 0.008,
            disk_utilization: 0.5,
        };
        b.iter(|| {
            let batch = OpBatch {
                txns: 100.0,
                updates: vec![UpdateSpec {
                    table: t,
                    prefix_pages: 0,
                    rows: 1_000.0,
                }],
                cpu_core_secs: 0.04,
                ..Default::default()
            };
            inst.prepare_tick(0.1, &[(db, batch)]);
            black_box(inst.complete_tick(0.1, grant).committed_txns)
        })
    });
}

fn bench_hosted_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("host");
    group.sample_size(10);
    group.bench_function("tpcc_10s_simulated", |b| {
        b.iter_batched(
            || {
                let mut host = Host::new(MachineSpec::server1());
                host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(2))));
                let mut driver = Driver::new();
                driver.bind(&mut host, 0, Box::new(TpccWorkload::new(5, 200.0)));
                (host, driver)
            },
            |(mut host, mut driver)| {
                let stats = driver.run(&mut host, 10.0);
                black_box(stats[0].committed_txns)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_probe_scan(c: &mut Criterion) {
    c.bench_function("engine/probe_scan_64mib", |b| {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256)));
        let db = inst.create_database("probe");
        let t = inst.create_table(db, 4_096, 16_384).unwrap();
        inst.prewarm_table(t);
        b.iter(|| black_box(inst.scan_count(t, u64::MAX)))
    });
}

criterion_group!(
    benches,
    bench_clock_cache,
    bench_instance_tick,
    bench_hosted_simulation,
    bench_probe_scan
);
criterion_main!(benches);
