//! Workload resource profiles — the monitor's output and the
//! consolidation engine's input.
//!
//! A [`WorkloadProfile`] carries, per workload:
//! * a CPU series in standardized-core units,
//! * a RAM series in bytes (post-gauging working set, not OS RSS),
//! * a disk-demand series as the *(working set, row-update rate)* pairs the
//!   non-linear disk model needs (§4.1: disk I/O of a combined workload is a
//!   function of aggregate working set and aggregate update rate, not the
//!   sum of individual byte rates),
//! * plus placement metadata: replica count and optional pinning (§5).

use crate::series::TimeSeries;
use crate::units::{Bytes, Rate};
use serde::{Deserialize, Serialize};

/// Disk demand at one time window: the two parameters the empirical disk
/// profile is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DiskDemand {
    /// Working-set size in bytes.
    pub working_set: Bytes,
    /// Row modification rate (update/insert/delete rows per second).
    pub update_rows_per_sec: Rate,
}

impl DiskDemand {
    pub fn new(working_set: Bytes, update_rows_per_sec: Rate) -> DiskDemand {
        DiskDemand {
            working_set,
            update_rows_per_sec,
        }
    }

    /// Aggregate two demands: working sets and update rates both add (the
    /// central combination property validated in §7.5 / Fig 12).
    pub fn combine(self, other: DiskDemand) -> DiskDemand {
        DiskDemand {
            working_set: self.working_set + other.working_set,
            update_rows_per_sec: self.update_rows_per_sec + other.update_rows_per_sec,
        }
    }
}

impl std::iter::Sum for DiskDemand {
    fn sum<I: Iterator<Item = DiskDemand>>(iter: I) -> DiskDemand {
        iter.fold(DiskDemand::default(), DiskDemand::combine)
    }
}

/// One sampled time window of a workload profile, convenient for iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileWindow {
    /// CPU in standardized cores.
    pub cpu_cores: f64,
    /// Required RAM in bytes.
    pub ram: Bytes,
    /// Disk demand parameters.
    pub disk: DiskDemand,
}

/// Resource utilization of one database workload over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Stable identifier (e.g. hostname of the source server).
    pub name: String,
    /// CPU series in standardized-core units.
    pub cpu_cores: TimeSeries,
    /// RAM series in bytes (gauged working set + per-database overhead).
    pub ram_bytes: TimeSeries,
    /// Working-set size series in bytes (disk-model input).
    pub disk_working_set_bytes: TimeSeries,
    /// Row-update-rate series in rows/second (disk-model input).
    pub disk_update_rows_per_sec: TimeSeries,
    /// Number of replicas to place (`R_i` in §5); 1 = unreplicated.
    pub replicas: u32,
    /// If set, this workload must be placed on the named machine (§5's
    /// pinning constraint `x_{i'j'} = 1`).
    pub pinned_to: Option<String>,
}

impl WorkloadProfile {
    /// Create a profile with uniform sampling; all four series must share
    /// the interval and the longest defines the horizon.
    pub fn new(
        name: impl Into<String>,
        cpu_cores: TimeSeries,
        ram_bytes: TimeSeries,
        disk_working_set_bytes: TimeSeries,
        disk_update_rows_per_sec: TimeSeries,
    ) -> WorkloadProfile {
        let interval = cpu_cores.interval_secs();
        for s in [
            &ram_bytes,
            &disk_working_set_bytes,
            &disk_update_rows_per_sec,
        ] {
            assert!(
                (s.interval_secs() - interval).abs() < f64::EPSILON,
                "profile series must share one sampling interval"
            );
        }
        WorkloadProfile {
            name: name.into(),
            cpu_cores,
            ram_bytes,
            disk_working_set_bytes,
            disk_update_rows_per_sec,
            replicas: 1,
            pinned_to: None,
        }
    }

    /// A flat profile: constant load over `windows` samples. Useful for
    /// tests and the controlled experiments of §7.2.
    pub fn flat(
        name: impl Into<String>,
        interval_secs: f64,
        windows: usize,
        cpu_cores: f64,
        ram: Bytes,
        disk: DiskDemand,
    ) -> WorkloadProfile {
        WorkloadProfile::new(
            name,
            TimeSeries::constant(interval_secs, cpu_cores, windows),
            TimeSeries::constant(interval_secs, ram.as_f64(), windows),
            TimeSeries::constant(interval_secs, disk.working_set.as_f64(), windows),
            TimeSeries::constant(interval_secs, disk.update_rows_per_sec.as_f64(), windows),
        )
    }

    pub fn with_replicas(mut self, replicas: u32) -> WorkloadProfile {
        assert!(replicas >= 1, "a workload needs at least one replica");
        self.replicas = replicas;
        self
    }

    pub fn pinned(mut self, machine: impl Into<String>) -> WorkloadProfile {
        self.pinned_to = Some(machine.into());
        self
    }

    /// Number of sampled windows (longest series).
    pub fn windows(&self) -> usize {
        self.cpu_cores
            .len()
            .max(self.ram_bytes.len())
            .max(self.disk_working_set_bytes.len())
            .max(self.disk_update_rows_per_sec.len())
    }

    pub fn interval_secs(&self) -> f64 {
        self.cpu_cores.interval_secs()
    }

    /// The profile at window `t` (out-of-range series read as zero).
    pub fn window(&self, t: usize) -> ProfileWindow {
        let get = |s: &TimeSeries| s.values().get(t).copied().unwrap_or(0.0);
        ProfileWindow {
            cpu_cores: get(&self.cpu_cores),
            ram: Bytes(get(&self.ram_bytes).max(0.0) as u64),
            disk: DiskDemand::new(
                Bytes(get(&self.disk_working_set_bytes).max(0.0) as u64),
                Rate(get(&self.disk_update_rows_per_sec)),
            ),
        }
    }

    /// Peak CPU over the horizon (standardized cores).
    pub fn peak_cpu(&self) -> f64 {
        self.cpu_cores.max()
    }

    /// Peak RAM over the horizon.
    pub fn peak_ram(&self) -> Bytes {
        Bytes(self.ram_bytes.max().max(0.0) as u64)
    }

    /// Apply the user-defined RAM scaling factor of §6 ("linearly scales
    /// down the measured RAM values", used when gauging is unavailable,
    /// e.g. on the historical Wikipedia/Second Life statistics).
    pub fn scale_ram(&self, factor: f64) -> WorkloadProfile {
        assert!(factor >= 0.0, "RAM scaling factor must be non-negative");
        let mut out = self.clone();
        out.ram_bytes = self.ram_bytes.scale(factor);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> WorkloadProfile {
        WorkloadProfile::new(
            "w0",
            TimeSeries::new(300.0, vec![0.5, 1.5, 1.0]),
            TimeSeries::new(300.0, vec![1e9, 2e9, 1.5e9]),
            TimeSeries::new(300.0, vec![5e8, 5e8, 5e8]),
            TimeSeries::new(300.0, vec![100.0, 400.0, 200.0]),
        )
    }

    #[test]
    fn window_access() {
        let p = demo();
        let w = p.window(1);
        assert_eq!(w.cpu_cores, 1.5);
        assert_eq!(w.ram, Bytes(2_000_000_000));
        assert_eq!(w.disk.update_rows_per_sec, Rate(400.0));
    }

    #[test]
    fn window_out_of_range_is_zero() {
        let p = demo();
        let w = p.window(99);
        assert_eq!(w.cpu_cores, 0.0);
        assert_eq!(w.ram, Bytes::ZERO);
    }

    #[test]
    fn peaks() {
        let p = demo();
        assert_eq!(p.peak_cpu(), 1.5);
        assert_eq!(p.peak_ram(), Bytes(2_000_000_000));
    }

    #[test]
    fn disk_demand_combines_additively() {
        let a = DiskDemand::new(Bytes::mib(100), Rate(50.0));
        let b = DiskDemand::new(Bytes::mib(200), Rate(75.0));
        let c = a.combine(b);
        assert_eq!(c.working_set, Bytes::mib(300));
        assert_eq!(c.update_rows_per_sec, Rate(125.0));
    }

    #[test]
    fn disk_demand_sum() {
        let total: DiskDemand = [
            DiskDemand::new(Bytes::mib(1), Rate(1.0)),
            DiskDemand::new(Bytes::mib(2), Rate(2.0)),
            DiskDemand::new(Bytes::mib(3), Rate(3.0)),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.working_set, Bytes::mib(6));
        assert_eq!(total.update_rows_per_sec, Rate(6.0));
    }

    #[test]
    fn ram_scaling() {
        let p = demo().scale_ram(0.7);
        assert!((p.ram_bytes.values()[0] - 0.7e9).abs() < 1.0);
    }

    #[test]
    fn flat_profile_shape() {
        let p = WorkloadProfile::flat(
            "f",
            300.0,
            10,
            0.25,
            Bytes::mib(512),
            DiskDemand::new(Bytes::mib(512), Rate(10.0)),
        );
        assert_eq!(p.windows(), 10);
        assert_eq!(p.window(9).cpu_cores, 0.25);
    }

    #[test]
    fn replicas_builder() {
        let p = demo().with_replicas(3).pinned("m1");
        assert_eq!(p.replicas, 3);
        assert_eq!(p.pinned_to.as_deref(), Some("m1"));
    }

    #[test]
    #[should_panic(expected = "share one sampling interval")]
    fn mismatched_intervals_rejected() {
        WorkloadProfile::new(
            "bad",
            TimeSeries::new(300.0, vec![1.0]),
            TimeSeries::new(60.0, vec![1.0]),
            TimeSeries::new(300.0, vec![1.0]),
            TimeSeries::new(300.0, vec![1.0]),
        );
    }
}
