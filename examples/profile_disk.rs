//! Build the empirical disk model (§4.1 / Fig 4) for a machine
//! configuration and query it.
//!
//! ```text
//! cargo run --release --example profile_disk
//! ```

use kairos::diskmodel::{run_profiler, DiskModel, ProfilerConfig};
use kairos::types::{Bytes, DiskDemand, Rate};

fn main() {
    // A compact sweep (the full tool uses a denser grid, offline, per
    // hardware configuration — the paper's took ~2 hours on metal).
    let cfg = ProfilerConfig {
        ws_points: vec![
            Bytes::mib(512),
            Bytes::mib(1024),
            Bytes::mib(2048),
            Bytes::mib(3072),
        ],
        rate_points: vec![2_000.0, 8_000.0, 16_000.0, 28_000.0, 45_000.0],
        settle_secs: 25.0,
        measure_secs: 10.0,
        log_capacity_bytes: Some(128.0 * 1024.0 * 1024.0),
        ..ProfilerConfig::paper_like()
    };
    println!(
        "profiling {} points on {} ...",
        cfg.ws_points.len() * cfg.rate_points.len(),
        cfg.machine.name
    );
    let profile = run_profiler(&cfg);
    println!("{}", profile.to_csv());

    let model = DiskModel::fit(&profile).expect("enough unsaturated points");
    for ws_mib in [512u64, 1024, 2048, 3072] {
        let ws = Bytes::mib(ws_mib);
        println!(
            "ws {:>5} MiB: saturation {:>7.0} rows/s; at half-rate the disk writes {:.1} MB/s",
            ws_mib,
            model.saturation_rate(ws),
            model.predict_write_bytes(DiskDemand::new(ws, Rate(model.saturation_rate(ws) / 2.0)))
                / 1e6,
        );
    }

    // The combination property: two tenants = one equivalent tenant.
    let a = DiskDemand::new(Bytes::mib(512), Rate(3_000.0));
    let b = DiskDemand::new(Bytes::mib(1024), Rate(6_000.0));
    println!(
        "tenant A + tenant B -> combined predicted write rate {:.1} MB/s",
        model.predict_write_bytes(a.combine(b)) / 1e6
    );
}
