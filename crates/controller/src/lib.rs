//! # kairos-controller — online rolling-horizon consolidation
//!
//! The paper's pipeline is one-shot: observe each workload in isolation,
//! fit the models, solve placement once. Production fleets drift — diurnal
//! phase shifts, flash crowds, tenants arriving and leaving — so this
//! crate turns that pipeline into a **continuous control loop**, the
//! direction pointed at by online workload-management advisors (WiSeDB;
//! Snowflake's warehouse-level management):
//!
//! ```text
//!        ┌────────────────────────────────────────────────────────┐
//!        │                     Controller::tick                   │
//!        │                                                        │
//!   telemetry → [ingest] → rolling RRD windows → [drift] ─ no ─►  │ (keep plan)
//!        │                                          │             │
//!        │                                        drift           │
//!        │                                          ▼             │
//!        │        [resolver] warm-start + migration-cost solve    │
//!        │                                          ▼             │
//!        │        [migration] ordered capacity-safe move list     │
//!        │                                          ▼             │
//!        │        [executor]  apply moves to the simulated fleet  │
//!        └────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`ingest`] — streaming telemetry: [`kairos_monitor::MonitorSample`]s
//!   flow into per-workload rolling [`kairos_traces::Rrd`] windows;
//! * [`drift`] — compares the live window against the profile the current
//!   placement was solved for (phase-aligned relative RMSE);
//! * [`resolver`] — on drift, re-solves **warm**: the incumbent placement
//!   seeds the search ([`kairos_solver::solve_warm`]) and a per-move
//!   penalty ([`kairos_solver::MigrationCost`]) makes low-churn plans win
//!   among near-equals;
//! * [`migration`] — diffs consecutive assignments into an ordered move
//!   list where every intermediate fleet state respects capacity;
//! * [`executor`] — executes the moves step-by-step against simulated
//!   [`kairos_dbsim::Host`]s;
//! * [`scenarios`] — deterministic drift scenarios (diurnal shift, flash
//!   crowd, workload churn, stationary control) shared by the example,
//!   the integration tests and the `controller_loop` bench;
//! * [`shard`] — the loop itself as a reusable [`ShardController`]: one
//!   self-contained slice of a sharded fleet, with the summary /
//!   reservation / evict / admit surface the `kairos-fleet` balancer
//!   drives cross-shard handoffs through;
//! * [`controller`] — the single-fleet wrapper around one shard.
//!
//! ## Quickstart
//!
//! ```
//! use kairos_controller::prelude::*;
//!
//! // A stationary 6-workload fleet: the controller plans once and then
//! // never needs to re-solve.
//! let scenario = scenario_stationary(6, 120);
//! let report = run_scenario(&ControllerConfig::default(), scenario);
//! assert_eq!(report.resolves, 0);
//! assert!(report.final_feasible);
//! ```

pub mod controller;
pub mod drift;
pub mod executor;
pub mod ingest;
pub mod migration;
pub mod resolver;
pub mod scenarios;
pub mod shard;
pub mod snapshot;

pub use controller::{
    Controller, ControllerConfig, ControllerStats, ReplanReason, ReplanSummary, ShardMetrics,
    TickOutcome,
};
pub use drift::{DriftDetector, DriftReport, ResourceDrift};
pub use executor::{ExecutionReport, FleetExecutor};
pub use ingest::{
    SessionSource, TelemetryConfig, TelemetryIngester, TelemetrySketch, TelemetrySource,
    WorkloadTelemetry,
};
pub use migration::{plan_migration, MigrationPlan, MigrationStep, Move};
pub use resolver::{
    forecast_profile, forecast_profile_flagged, forecast_profile_tail, forecast_series,
    forecast_series_flagged, FleetPlacement, ReSolveOutcome, ReSolver,
};
pub use scenarios::{
    run_scenario, scenario_churn, scenario_diurnal_shift, scenario_flash_crowd,
    scenario_stationary, FleetEvent, Scenario, ScenarioReport, SyntheticSource,
};
pub use shard::{ShardController, ShardSummary, TenantHandoff, TenantLoad, HANDOFF_WIRE_VERSION};
pub use snapshot::{ShardSnapshot, SHARD_SNAPSHOT_VERSION, TRACE_CHECKPOINT_CAP};

/// Convenience re-exports for downstream users and doc examples.
pub mod prelude {
    pub use crate::controller::{Controller, ControllerConfig, TickOutcome};
    pub use crate::drift::DriftDetector;
    pub use crate::scenarios::{
        run_scenario, scenario_churn, scenario_diurnal_shift, scenario_flash_crowd,
        scenario_stationary, Scenario, ScenarioReport,
    };
    pub use kairos_core::ConsolidationEngine;
    pub use kairos_solver::SolverConfig;
}
