//! # Kairos — workload-aware database monitoring and consolidation
//!
//! A from-scratch Rust reproduction of *Curino, Jones, Madden,
//! Balakrishnan: "Workload-Aware Database Monitoring and Consolidation",
//! SIGMOD 2011* — the Kairos system — including every substrate the paper
//! depends on (a DBMS/host simulator, workload generators, an rrd-style
//! monitoring store, a DIRECT global optimizer) and a harness regenerating
//! every table and figure of its evaluation.
//!
//! This facade crate re-exports the workspace so examples and integration
//! tests can span crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `kairos-types` | units, time series, machine specs, profiles |
//! | [`dbsim`] | `kairos-dbsim` | buffer pool, WAL, flusher, disk/CPU devices, hosts |
//! | [`workloads`] | `kairos-workloads` | TPC-C-like, Wikipedia-like, synthetic generators |
//! | [`monitor`] | `kairos-monitor` | resource monitor + buffer-pool gauging |
//! | [`diskmodel`] | `kairos-diskmodel` | empirical disk profiler + LAR polynomial fit |
//! | [`solver`] | `kairos-solver` | DIRECT, greedy baseline, fractional bound |
//! | [`traces`] | `kairos-traces` | rrd store + synthetic production fleets |
//! | [`vmsim`] | `kairos-vmsim` | DB-in-VM / DB-per-process baselines |
//! | [`core`] | `kairos-core` | combined-load estimator + consolidation engine |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use kairos::core::prelude::*;
//!
//! // Profile a small fleet (here: synthetic flat profiles)…
//! let profiles = demo_profiles();
//! // …and ask Kairos for a consolidation plan onto 12-core/96 GB targets.
//! let engine = ConsolidationEngine::builder().build();
//! let plan = engine.consolidate(&profiles).expect("feasible");
//! assert!(plan.machines_used() <= profiles.len());
//! ```

pub use kairos_core as core;
pub use kairos_dbsim as dbsim;
pub use kairos_diskmodel as diskmodel;
pub use kairos_monitor as monitor;
pub use kairos_solver as solver;
pub use kairos_traces as traces;
pub use kairos_types as types;
pub use kairos_vmsim as vmsim;
pub use kairos_workloads as workloads;
