//! The disk-profiler's controlled load (§4.1).
//!
//! "Given a DBMS/OS/hardware configuration, our tool tests the disk
//! subsystem with a controlled synthetic workload that sweeps through a
//! range of database working set sizes and user request rates. [...] The
//! workload we use for this test is based on TPC-C. [...] Our workload
//! generator allows us to control both the working set size and rate at
//! which rows are updated."
//!
//! [`ProfileLoad`] is exactly that generator: a fixed `(working set,
//! rows-updated/s)` point with negligible read/CPU load, so the measured
//! disk-write throughput isolates the log + write-back response.

use crate::{TxnCarry, Workload, WorkloadHandle};
use kairos_dbsim::{DbmsInstance, OpBatch, UpdateSpec};
use kairos_types::Bytes;

/// Average TPC-C-style row size used by the profiler.
pub const ROW_BYTES: u64 = 164;

/// A single (working-set, update-rate) measurement point.
#[derive(Debug, Clone)]
pub struct ProfileLoad {
    name: String,
    working_set: Bytes,
    db_size: Bytes,
    rows_per_sec: f64,
    carry: TxnCarry,
    /// Rows per transaction (affects only commit/force counts).
    rows_per_txn: f64,
}

impl ProfileLoad {
    pub fn new(working_set: Bytes, rows_per_sec: f64) -> ProfileLoad {
        ProfileLoad {
            name: format!(
                "profile-{:.0}MB-{:.0}rps",
                working_set.as_mib(),
                rows_per_sec
            ),
            working_set,
            db_size: Bytes(working_set.0 * 2),
            rows_per_sec,
            carry: TxnCarry::default(),
            rows_per_txn: 10.0,
        }
    }

    /// Use a database much larger than the working set (the Fig 12a
    /// size-independence experiment).
    pub fn with_db_size(mut self, db_size: Bytes) -> ProfileLoad {
        assert!(db_size >= self.working_set);
        self.db_size = db_size;
        self
    }

    pub fn rows_per_sec(&self) -> f64 {
        self.rows_per_sec
    }
}

impl Workload for ProfileLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&mut self, inst: &mut DbmsInstance) -> WorkloadHandle {
        let db = inst.create_database(self.name.clone());
        let rows = self.db_size.0 / ROW_BYTES;
        let table = inst
            .create_table(db, rows, ROW_BYTES)
            .expect("database was just created");
        let ws_pages = self.working_set.pages(inst.page_size());
        inst.prewarm_pages(table, ws_pages);
        WorkloadHandle {
            db,
            table,
            append_table: None,
            ws_pages,
        }
    }

    fn batch(&mut self, handle: &WorkloadHandle, _now: f64, dt: f64) -> OpBatch {
        let rows = self.rows_per_sec * dt;
        let txns = self.carry.take(self.rows_per_sec / self.rows_per_txn, dt);
        if rows <= 0.0 {
            return OpBatch::default();
        }
        OpBatch {
            txns,
            rows_read: 0.0,
            reads: Vec::new(),
            updates: vec![UpdateSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                rows,
            }],
            insert_bytes: 0.0,
            insert_table: None,
            cpu_core_secs: rows * 8e-6,
            base_latency_secs: 0.002,
        }
    }

    fn working_set(&self) -> Bytes {
        self.working_set
    }

    fn mean_rate(&self) -> f64 {
        self.rows_per_sec / self.rows_per_txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_dbsim::DbmsConfig;

    #[test]
    fn update_rows_match_requested_rate() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256)));
        let mut w = ProfileLoad::new(Bytes::mib(64), 5000.0);
        let h = w.install(&mut inst);
        let mut rows = 0.0;
        for i in 0..100 {
            let b = w.batch(&h, i as f64 * 0.1, 0.1);
            rows += b.updates.iter().map(|u| u.rows).sum::<f64>();
        }
        // 5000 rows/s * 10 s.
        assert!((rows - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn db_size_override_keeps_ws() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(1)));
        let mut w = ProfileLoad::new(Bytes::mib(512), 100.0).with_db_size(Bytes::gib(5));
        let h = w.install(&mut inst);
        assert_eq!(h.ws_pages, Bytes::mib(512).pages(inst.page_size()));
        assert!(inst.table_pages(h.table) >= Bytes::gib(5).pages(inst.page_size()));
    }

    #[test]
    fn zero_rate_is_idle() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(64)));
        let mut w = ProfileLoad::new(Bytes::mib(16), 0.0);
        let h = w.install(&mut inst);
        let b = w.batch(&h, 0.0, 0.1);
        assert!(b.updates.is_empty());
    }
}
