//! Migration planning: turn "placement A → placement B" into an ordered
//! move list every intermediate state of which respects capacity.
//!
//! The solver guarantees the *final* placement is feasible; it says
//! nothing about the path. Executing moves in a bad order can transiently
//! overload a destination (move the big tenant in before the one vacating
//! made room). The planner simulates the fleet's per-window load ledger
//! and schedules each move only when its destination can absorb it; if a
//! circular dependency leaves no safe move (A↔B swaps with no spare
//! headroom), the least-damaging move is forced and flagged so operators
//! can see exactly which step briefly exceeded the ceiling.

use kairos_solver::{Assignment, ConsolidationProblem};

/// One relocation (or initial placement) of one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    pub workload: String,
    pub replica: u32,
    /// Slot index within the problem this plan was built from.
    pub slot: usize,
    /// `None` = new arrival being provisioned, not migrated.
    pub from: Option<usize>,
    pub to: usize,
}

impl Move {
    pub fn is_provision(&self) -> bool {
        self.from.is_none()
    }
}

/// One scheduled step of the plan.
#[derive(Debug, Clone)]
pub struct MigrationStep {
    pub mv: Move,
    /// True when no capacity-safe order existed and this step was forced
    /// through a transient overload.
    pub forced: bool,
    /// Worst per-resource utilization on the destination machine across
    /// the horizon, *after* this step (fractions of capacity; > headroom
    /// only on forced steps).
    pub dest_peak_utilization: f64,
}

/// The ordered, capacity-checked plan.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    pub steps: Vec<MigrationStep>,
    /// True when every step respected the capacity ceiling.
    pub capacity_safe: bool,
}

impl MigrationPlan {
    pub fn moves(&self) -> usize {
        self.steps.iter().filter(|s| !s.mv.is_provision()).count()
    }

    pub fn provisions(&self) -> usize {
        self.steps.iter().filter(|s| s.mv.is_provision()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Per-machine per-window load ledger used to validate intermediate
/// states (same combination rules as `solver::objective`, without the
/// objective machinery).
struct Ledger<'a> {
    problem: &'a ConsolidationProblem,
    /// [machine][window] sums.
    cpu: Vec<Vec<f64>>,
    ram: Vec<Vec<f64>>,
    ws: Vec<Vec<f64>>,
    rate: Vec<Vec<f64>>,
}

impl<'a> Ledger<'a> {
    fn new(problem: &'a ConsolidationProblem, machines: usize) -> Ledger<'a> {
        let w = problem.windows;
        Ledger {
            problem,
            cpu: vec![vec![0.0; w]; machines],
            ram: vec![vec![0.0; w]; machines],
            ws: vec![vec![0.0; w]; machines],
            rate: vec![vec![0.0; w]; machines],
        }
    }

    fn apply(&mut self, workload: usize, machine: usize, sign: f64) {
        let w = &self.problem.workloads[workload];
        for t in 0..self.problem.windows {
            self.cpu[machine][t] += sign * w.cpu_at(t);
            self.ram[machine][t] += sign * w.ram_at(t);
            self.ws[machine][t] += sign * w.ws_at(t);
            self.rate[machine][t] += sign * w.rate_at(t);
        }
    }

    /// Peak utilization fraction on `machine` if `workload` were added.
    fn peak_with(&self, workload: usize, machine: usize) -> f64 {
        let p = self.problem;
        let wl = &p.workloads[workload];
        let mut peak = 0.0f64;
        for t in 0..p.windows {
            let cpu = (self.cpu[machine][t] + wl.cpu_at(t)) / p.machine.cpu_cores;
            let ram = (self.ram[machine][t] + wl.ram_at(t)) / p.machine.ram_bytes;
            let disk = p.disk.utilization(
                self.ws[machine][t] + wl.ws_at(t),
                self.rate[machine][t] + wl.rate_at(t),
            );
            peak = peak.max(cpu).max(ram).max(disk);
        }
        peak
    }
}

/// Diff `from` (incumbent, `None` per new slot) against `to` (the solved
/// target) and order the moves capacity-safely. Workloads that left the
/// fleet are assumed retired before migration starts — they are not part
/// of `problem` and never occupy ledger capacity.
pub fn plan_migration(
    problem: &ConsolidationProblem,
    from: &[Option<usize>],
    to: &Assignment,
) -> MigrationPlan {
    let slots = problem.slots();
    assert_eq!(from.len(), slots.len(), "baseline must cover every slot");
    assert_eq!(
        to.machine_of.len(),
        slots.len(),
        "target must cover every slot"
    );
    let machines = problem
        .max_machines
        .max(from.iter().flatten().copied().max().map_or(0, |m| m + 1))
        .max(to.machine_of.iter().copied().max().unwrap_or(0) + 1);

    // Seed the ledger with every slot that stays put, plus movers at
    // their *source* (they occupy it until their step runs).
    let mut ledger = Ledger::new(problem, machines);
    let mut pending: Vec<Move> = Vec::new();
    for (s, slot) in slots.iter().enumerate() {
        let dst = to.machine_of[s];
        match from[s] {
            Some(src) if src == dst => ledger.apply(slot.workload, src, 1.0),
            src => {
                if let Some(src) = src {
                    ledger.apply(slot.workload, src, 1.0);
                }
                pending.push(Move {
                    workload: problem.workloads[slot.workload].name.clone(),
                    replica: slot.replica,
                    slot: s,
                    from: src,
                    to: dst,
                });
            }
        }
    }

    let headroom = problem.headroom;
    let mut steps = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        // Pass: schedule every move whose destination currently accepts it.
        let mut scheduled_any = false;
        let mut i = 0;
        while i < pending.len() {
            let mv = &pending[i];
            let wl = slots[mv.slot].workload;
            let peak = ledger.peak_with(wl, mv.to);
            if peak <= headroom {
                if let Some(src) = mv.from {
                    ledger.apply(wl, src, -1.0);
                }
                ledger.apply(wl, mv.to, 1.0);
                steps.push(MigrationStep {
                    mv: pending.remove(i),
                    forced: false,
                    dest_peak_utilization: peak,
                });
                scheduled_any = true;
            } else {
                i += 1;
            }
        }
        if scheduled_any {
            continue;
        }
        // Deadlock: force the least-damaging pending move.
        let (idx, peak) = pending
            .iter()
            .enumerate()
            .map(|(i, mv)| (i, ledger.peak_with(slots[mv.slot].workload, mv.to)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite peaks"))
            .expect("pending is non-empty");
        let mv = pending.remove(idx);
        let wl = slots[mv.slot].workload;
        if let Some(src) = mv.from {
            ledger.apply(wl, src, -1.0);
        }
        ledger.apply(wl, mv.to, 1.0);
        steps.push(MigrationStep {
            mv,
            forced: true,
            dest_peak_utilization: peak,
        });
    }

    let capacity_safe = steps.iter().all(|s| !s.forced);
    MigrationPlan {
        steps,
        capacity_safe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_solver::{evaluate, LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(cpus: &[f64], max_machines: usize) -> ConsolidationProblem {
        let w = cpus
            .iter()
            .enumerate()
            .map(|(i, &c)| WorkloadSpec::flat(format!("w{i}"), 2, c, 2e9, 2e8, 50.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            max_machines,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn no_changes_means_empty_plan() {
        let p = problem(&[1.0, 1.0], 2);
        let from = vec![Some(0), Some(1)];
        let plan = plan_migration(&p, &from, &Assignment::new(vec![0, 1]));
        assert!(plan.is_empty());
        assert!(plan.capacity_safe);
    }

    #[test]
    fn vacate_before_fill_ordering() {
        // Machine 0 holds w0 (6c) + w1 (5c) = 11 of 11.4 usable cores;
        // machine 1 holds w2 (6c); machine 2 is free. Target: w0 → m2,
        // w2 → m0. Moving w2 first would put 11 + 6 = 17 cores on m0 —
        // the planner must vacate w0 to the free machine first.
        let p = problem(&[6.0, 5.0, 6.0], 3);
        let from = vec![Some(0), Some(0), Some(1)];
        let to = Assignment::new(vec![2, 0, 0]);
        assert!(evaluate(&p, &to).feasible);
        let plan = plan_migration(&p, &from, &to);
        assert!(plan.capacity_safe, "safe order exists and must be found");
        assert_eq!(plan.moves(), 2);
        assert_eq!(plan.steps[0].mv.workload, "w0", "vacate first");
        assert_eq!(plan.steps[1].mv.workload, "w2");
    }

    #[test]
    fn provisions_are_separated_from_moves() {
        let p = problem(&[1.0, 1.0, 1.0], 3);
        let from = vec![Some(0), Some(0), None];
        let to = Assignment::new(vec![0, 0, 1]);
        let plan = plan_migration(&p, &from, &to);
        assert_eq!(plan.moves(), 0);
        assert_eq!(plan.provisions(), 1);
        assert!(plan.steps[0].mv.is_provision());
        assert_eq!(plan.steps[0].mv.to, 1);
    }

    #[test]
    fn true_deadlock_forces_a_flagged_step() {
        // Two 6-core workloads swapping machines with nothing else free:
        // each destination already holds 6 + incoming 6 = 12 > 11.4.
        let p = problem(&[6.0, 6.0], 2);
        let from = vec![Some(0), Some(1)];
        let to = Assignment::new(vec![1, 0]);
        let plan = plan_migration(&p, &from, &to);
        assert_eq!(plan.steps.len(), 2);
        assert!(!plan.capacity_safe);
        assert!(plan.steps[0].forced, "first step must break the cycle");
        assert!(!plan.steps[1].forced, "second step is then free");
    }

    #[test]
    fn final_ledger_state_matches_target() {
        let p = problem(&[2.0, 3.0, 1.0, 4.0], 4);
        let from = vec![Some(0), Some(1), Some(2), None];
        let to = Assignment::new(vec![1, 1, 3, 2]);
        let plan = plan_migration(&p, &from, &to);
        // Every pending change appears exactly once.
        assert_eq!(plan.steps.len(), 3); // w0, w2 move; w3 provisions; w1 stays
        let mut seen: Vec<usize> = plan.steps.iter().map(|s| s.mv.slot).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3]);
        for s in &plan.steps {
            assert_eq!(s.mv.to, to.machine_of[s.mv.slot]);
        }
    }
}
