//! Integration coverage for the public gauge surface: the pieces the
//! observability layer leans on — gauge determinism (the simulated
//! environment is clock-free, so two identical runs must agree
//! bit-for-bit), the outcome accessors, and the `ResourceMonitor` →
//! profile pipeline driven end-to-end against the simulator.

use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::{
    BufferGauge, GaugeOutcome, GaugeParams, MemoryClass, ResourceMonitor, SimGaugeEnv,
};
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{Driver, TpccWorkload};

fn gauge_run(warehouses: u32, tps: f64) -> GaugeOutcome {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512))));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(TpccWorkload::new(warehouses, tps)));
    let db = driver.bindings()[0].handle.db;
    driver.warmup(&mut host, 5.0);
    let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
    let params = GaugeParams {
        initial_step_pages: 256,
        max_step_pages: 4096,
        read_wait_secs: 1.0,
        window_secs: 5.0,
        ..Default::default()
    };
    BufferGauge::new(params).run(&mut env)
}

#[test]
fn gauging_is_deterministic_bit_for_bit() {
    let a = gauge_run(2, 60.0);
    let b = gauge_run(2, 60.0);
    assert_eq!(a.working_set, b.working_set);
    assert_eq!(a.safely_stolen, b.safely_stolen);
    assert_eq!(a.duration_secs.to_bits(), b.duration_secs.to_bits());
    assert_eq!(a.steps.len(), b.steps.len());
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(sa.stolen_bytes.to_bits(), sb.stolen_bytes.to_bits());
        assert_eq!(sa.reads_per_sec.to_bits(), sb.reads_per_sec.to_bits());
    }
}

#[test]
fn gauge_outcome_accessors_are_consistent() {
    let outcome = gauge_run(1, 40.0);
    assert!(!outcome.steps.is_empty(), "the sweep must record rounds");
    assert!(outcome.duration_secs > 0.0);
    assert!(outcome.growth_bytes_per_sec() > 0.0);
    // Working set + safely stolen partition the gaugeable memory.
    let total = outcome.working_set.as_f64() + outcome.safely_stolen.as_f64();
    let capacity = {
        let cfg = DbmsConfig::mysql(Bytes::mib(512));
        (cfg.buffer_pool + cfg.os_cache).as_f64()
    };
    assert!(
        (total - capacity).abs() / capacity < 0.01,
        "working set {} + stolen {} must cover the {capacity}-byte pool",
        outcome.working_set,
        outcome.safely_stolen
    );
    // Stolen fractions are monotone and within [0, 1].
    for pair in outcome.steps.windows(2) {
        assert!(pair[1].stolen_fraction > pair[0].stolen_fraction);
    }
    for step in &outcome.steps {
        assert!((0.0..=1.0).contains(&step.stolen_fraction));
    }
}

#[test]
fn fixed_step_trace_is_monotone_and_bounded() {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256))));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(TpccWorkload::new(1, 30.0)));
    let db = driver.bindings()[0].handle.db;
    driver.warmup(&mut host, 5.0);
    let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
    let steps = BufferGauge::default().trace(&mut env, 1024, 0.6);
    assert!(!steps.is_empty());
    let last = steps.last().unwrap();
    assert!(last.stolen_fraction <= 0.6, "sweep overshot its bound");
    for pair in steps.windows(2) {
        assert!(pair[1].stolen_bytes > pair[0].stolen_bytes);
    }
}

#[test]
fn memory_class_boundaries_are_exact() {
    // The classifier thresholds: miss ratio 0.02, reads/s 8.0. Values on
    // the threshold fall to the *colder* class (strict less-than).
    assert_eq!(
        MemoryClass::classify(0.0199, 1e9),
        MemoryClass::FitsBufferPool
    );
    assert_eq!(MemoryClass::classify(0.02, 7.99), MemoryClass::FitsOsCache);
    assert_eq!(MemoryClass::classify(0.02, 8.0), MemoryClass::DiskBound);
    assert!(MemoryClass::FitsOsCache.gaugeable());
    assert!(!MemoryClass::DiskBound.gaugeable());
}

#[test]
fn monitor_profile_pipeline_runs_end_to_end() {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256))));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(TpccWorkload::new(1, 40.0)));
    driver.warmup(&mut host, 2.0);
    let mut monitor = ResourceMonitor::new(5.0, host.instance(0));
    for _ in 0..6 {
        driver.warmup(&mut host, 5.0);
        let sample = monitor.sample(host.instance(0));
        assert!(sample.tps > 0.0, "the workload must commit transactions");
    }
    assert_eq!(monitor.samples().len(), 6);
    assert!(monitor.memory_class().is_some());
    let gauged = Bytes::mib(32);
    let profile = monitor.into_profile("tpcc-1", Some(gauged), Bytes::mib(190));
    assert_eq!(profile.windows(), 6);
    assert_eq!(profile.window(0).disk.working_set, gauged);
}
