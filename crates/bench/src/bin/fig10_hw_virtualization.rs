//! Figure 10 — hardware virtualization vs consolidated DBMS at a fixed
//! 20:1 consolidation level (TPC-C), uniform and skewed offered load.
//!
//! Expected shape: the consolidated DBMS sustains several-fold higher
//! total throughput (the paper reports 6–12×) in both load shapes.

use kairos_bench::{print_table, quick, section};
use kairos_vmsim::{run_strategy, ComparisonConfig, LoadShape, Strategy};

fn run_case(label: &str, load: LoadShape) {
    let cfg = ComparisonConfig {
        warmup_secs: if quick() { 15.0 } else { 30.0 },
        measure_secs: if quick() { 40.0 } else { 120.0 },
        ..ComparisonConfig::fig10(load)
    };
    section(&format!(
        "Figure 10 ({label}): 20 TPC-C databases, one machine"
    ));
    let cons = run_strategy(Strategy::ConsolidatedDbms, &cfg).expect("runnable");
    let vm = run_strategy(Strategy::HardwareVirtualization, &cfg).expect("runnable");

    let mut rows = Vec::new();
    let windows = cons.total_tps.len().max(vm.total_tps.len());
    for t in 0..windows {
        rows.push(vec![
            format!("{:.0}", t as f64 * cfg.series_window_secs),
            format!(
                "{:.0}",
                cons.total_tps.values().get(t).copied().unwrap_or(0.0)
            ),
            format!(
                "{:.0}",
                vm.total_tps.values().get(t).copied().unwrap_or(0.0)
            ),
        ]);
    }
    print_table(&["t (s)", "consolidated tps", "db-in-vm tps"], &rows);
    println!(
        "avg: consolidated {:.0} tps vs db-in-vm {:.0} tps => {:.1}x (paper: 6-12x)",
        cons.avg_total_tps,
        vm.avg_total_tps,
        cons.avg_total_tps / vm.avg_total_tps.max(1e-9)
    );
    println!(
        "latency: consolidated {:.0} ms vs db-in-vm {:.0} ms",
        cons.mean_latency_secs * 1e3,
        vm.mean_latency_secs * 1e3
    );
}

fn main() {
    run_case("uniform", LoadShape::Uniform { tps_per_db: 25.0 });
    run_case(
        "skewed: 19 throttled to 1 rps, 1 at max",
        LoadShape::Skewed {
            throttled_tps: 1.0,
            hot_tps: 400.0,
        },
    );
}
