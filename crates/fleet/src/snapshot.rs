//! Fleet-wide durable checkpoints.
//!
//! [`FleetSnapshot`] aggregates every shard's
//! [`kairos_controller::ShardSnapshot`] with the cross-shard state only
//! the fleet layer owns — the [`crate::ShardMap`] routing truth, the
//! balancer's probe-cooldown memory and counters, and the handoff audit
//! log — into one atomically-written, CRC-trailed file (framing and
//! atomicity live in `kairos-store`; see its docs for the header/CRC
//! layout).
//!
//! The write is a single frame covering the whole fleet, not one file
//! per shard: a checkpoint is taken between ticks, so the map, the
//! balancer state and every shard are mutually consistent by
//! construction, and the temp-file-then-rename replacement keeps them
//! that way on disk — a crash mid-checkpoint leaves the previous
//! complete snapshot.
//!
//! Restore is [`crate::FleetController::resume_from`]; it validates the
//! snapshot's cross-shard invariants (the map and the shards' telemetry
//! must describe the same partition of tenants) before any state is
//! adopted, so a corrupt-but-CRC-valid file is rejected whole rather
//! than half-applied.

use crate::handoff::HandoffRecord;
use crate::FleetStats;
use kairos_controller::ShardSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Most recent [`HandoffRecord`]s a checkpoint persists. The in-memory
/// log is unbounded observability; checkpoints keep only this tail so a
/// long-lived fleet's checkpoint latency and file size stay proportional
/// to current state, not to total handoffs ever performed. Resuming
/// never reads the log (stats and cooldowns carry the balancer state),
/// so truncation only shortens the restored audit trail.
pub const HANDOFF_LOG_CHECKPOINT_CAP: usize = 4096;

/// Frame version of the fleet checkpoint file. Bump on any change to
/// [`FleetSnapshot`]'s layout (or any type it transitively embeds);
/// loading an older version then fails with an explicit
/// `UnsupportedVersion` instead of misdecoding.
///
/// v2: `ShardSnapshot` gained the scheduled-horizon-refresh state
/// (`envelope_planned`, `profile_refresh_due`), `ControllerStats` gained
/// `profile_refreshes`, and `FleetStats` gained `handoffs_failed`.
///
/// v3: decision traces — `ShardSnapshot` carries each shard's trace tail
/// (`trace`, `last_objective_bits`) and [`FleetSnapshot`] the fleet-level
/// balancer trace, so a restored control plane's event streams *continue*
/// the checkpointed history instead of forking it.
///
/// v4: sketched summaries — the embedded `ShardSnapshot`s moved to
/// `SHARD_SNAPSHOT_VERSION` 3 (constant-size `AggregateSketch` roll-ups
/// and a sketch-digest-keyed summary cache).
pub const FLEET_SNAPSHOT_VERSION: u32 = 4;

/// The whole control plane's checkpointable state. Construct via
/// [`crate::FleetController::snapshot`] / persist via
/// [`crate::FleetController::checkpoint`].
#[derive(Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-shard loop state, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Tenant → shard routing, sorted by tenant.
    pub map: Vec<(String, usize)>,
    /// Fleet-wide anti-affinity pairs (also present per shard; kept here
    /// so newly added shards can be seeded on a future resharding path).
    pub anti_affinity: Vec<(String, String)>,
    /// Complete handoff audit trail.
    pub handoff_log: Vec<HandoffRecord>,
    /// Balance round each tenant was last probed at — the balancer's
    /// hysteresis memory.
    pub probe_cooldown: BTreeMap<String, u64>,
    pub stats: FleetStats,
    /// The fleet-level decision trace's most recent
    /// [`kairos_controller::TRACE_CHECKPOINT_CAP`] events (balancer
    /// rounds: donors, proposals, outcomes). Restore resumes the
    /// sequence counter after the last entry — post-restore history
    /// appends rather than forking.
    pub trace: Vec<kairos_obs::TracedEvent>,
}
