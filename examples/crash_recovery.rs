//! Crash-recovery for the fleet control plane, end to end.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! KAIROS_TEST_SEED=7 cargo run --release --example crash_recovery
//! ```
//!
//! The scenario: a sharded fleet rides out a regional flash crowd while
//! checkpointing (`FleetController::checkpoint`). Mid-run — at a seeded
//! random tick — the controller process "crashes" (the in-memory fleet is
//! dropped on the floor). A fresh process resumes from the snapshot file
//! (`FleetController::resume_from`), re-binds its telemetry sources, and
//! finishes the run.
//!
//! Acceptance properties asserted here:
//!
//! * the resumed fleet converges to the **same final placement** as an
//!   uninterrupted control run — audit objectives compared **bit for
//!   bit** per shard;
//! * recovery costs **zero spurious re-solves**: total re-solves equal
//!   the uninterrupted run's (no re-bootstrap, no conservative
//!   flat-envelope replanning — the restored rolling windows carry the
//!   full planning horizon);
//! * the handoff audit log is identical, tick stamps included;
//! * a **truncated** snapshot and a **bit-flipped** snapshot are both
//!   rejected with a clean error — never a panic, never a silent
//!   partial restore;
//! * the **decision trace does not fork**: the restored fleet carries
//!   the pre-kill trace verbatim (sequence numbers included) and
//!   finishes with a trace byte-identical to the uninterrupted run's.
//!   The traces are dumped as text next to the snapshot
//!   (`trace-prekill.txt`, `trace-restored.txt`, `trace-reference.txt`)
//!   so CI can diff them and upload them on failure.

use kairos::controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos::fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos::types::{Bytes, SplitMix64};
use kairos::workloads::RatePattern;
use std::path::{Path, PathBuf};

const SHARDS: usize = 3;
const TENANTS_PER_SHARD: usize = 20;
const TICKS: u64 = 120;
const BUDGET: usize = 6;

fn config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 10,
            check_every: 4,
            cooldown_ticks: 10,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: BUDGET,
            balance_every: 5,
            max_moves_per_round: 4,
            ..BalancerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// The tenants are reconstructible by name: the same constructor yields
/// the same deterministic sample stream, which is what lets a restarted
/// process fast-forward its sources to the crash tick.
fn make_source(shard: usize, i: usize) -> SyntheticSource {
    let base = 170.0 + 12.0 * (i % 5) as f64;
    let name = format!("s{shard}-t{i:02}");
    let src = SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps: base });
    if shard == 0 && i < 8 {
        // The regional flash crowd: shard 0's hottest tenants spike ~3x
        // mid-run, forcing drift re-solves and cross-shard handoffs.
        src.then_at(35, RatePattern::Flat { tps: 600.0 })
            .then_at(85, RatePattern::Flat { tps: base })
    } else {
        src
    }
}

fn build_fleet() -> FleetController {
    let mut fleet = FleetController::new(config());
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            fleet.add_workload_to(shard, Box::new(make_source(shard, i)));
        }
    }
    fleet
}

fn total_resolves(fleet: &FleetController) -> u64 {
    fleet.shards().iter().map(|s| s.stats().resolves).sum()
}

/// Per-shard audit objective bit patterns — the "same placement" check
/// at full precision.
fn audit_objective_bits(fleet: &FleetController) -> Vec<Option<u64>> {
    fleet
        .audit()
        .per_shard
        .iter()
        .map(|e| e.as_ref().map(|e| e.objective.to_bits()))
        .collect()
}

fn snapshot_dir() -> PathBuf {
    let dir = std::env::var("KAIROS_SNAPSHOT_DIR").unwrap_or_else(|_| "target/ckpt".to_string());
    std::fs::create_dir_all(&dir).expect("snapshot dir is creatable");
    PathBuf::from(dir)
}

/// Human-readable trace rendering, one event per line — what the CI
/// decision-trace job diffs (a fork shows up as a line-level diff, not a
/// binary mismatch).
fn render_trace(events: &[kairos::obs::TracedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("#{:06} t{:04} {:?}\n", e.seq, e.tick, e.event));
    }
    out
}

fn dump_trace(dir: &Path, name: &str, events: &[kairos::obs::TracedEvent]) {
    std::fs::write(dir.join(name), render_trace(events)).expect("trace dump writes");
}

fn main() {
    println!("== kairos-store: durable checkpoint/restore for the fleet control plane ==\n");
    let dir = snapshot_dir();
    let path = dir.join("fleet.ksnp");
    // The crash lands at a random tick between bootstrap and the end of
    // the run (seeded; sweep with KAIROS_TEST_SEED).
    let mut rng = SplitMix64::from_env(0x00C4_A511);
    let crash_at = 20 + rng.next_range(TICKS - 20 - 10);

    // --- reference: the run nothing interrupts ---------------------------
    let mut reference = build_fleet();
    for _ in 0..TICKS {
        reference.tick();
    }
    let ref_audit = reference.audit();
    assert!(ref_audit.complete() && ref_audit.zero_violations());
    println!(
        "uninterrupted run : {} ticks, {} re-solves, {} handoffs, machines {:?}",
        TICKS,
        total_resolves(&reference),
        reference.stats().handoffs_completed,
        ref_audit.machines_used,
    );
    dump_trace(&dir, "trace-reference.txt", &reference.trace_events());

    // --- interrupted: checkpoint, crash at a random tick ------------------
    let mut doomed = build_fleet();
    for _ in 0..crash_at {
        doomed.tick();
    }
    doomed
        .checkpoint(&path)
        .expect("checkpoint written atomically");
    let file_len = std::fs::metadata(&path).expect("snapshot exists").len();
    println!(
        "crash at tick {crash_at:>3} : checkpoint {} ({file_len} bytes, CRC-trailed)",
        path.display()
    );
    let prekill_trace = doomed.trace_events();
    dump_trace(&dir, "trace-prekill.txt", &prekill_trace);
    drop(doomed); // the crash: every in-memory window, placement and plan is gone

    // --- restart: restore, re-bind sources, finish the run ----------------
    let mut restored =
        FleetController::resume_from(config(), &path).expect("snapshot restores cleanly");
    assert_eq!(restored.stats().ticks, crash_at);
    assert_eq!(
        restored.trace_events(),
        prekill_trace,
        "restore must carry the pre-kill decision trace verbatim, not fork it"
    );
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let src = make_source(shard, i).fast_forward(crash_at);
            restored.reattach(Box::new(src)).expect("tenant is mapped");
        }
    }
    assert!(
        restored.missing_sources().is_empty(),
        "every tenant re-bound before ticking"
    );
    let mut post_restore_replans = 0u64;
    for _ in crash_at..TICKS {
        let report = restored.tick();
        post_restore_replans += report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    TickOutcome::Replanned(_) | TickOutcome::InitialPlan { .. }
                )
            })
            .count() as u64;
    }
    println!(
        "restored run      : resumed at tick {crash_at}, {} re-solves after restore",
        post_restore_replans
    );

    // --- the acceptance properties ----------------------------------------
    let restored_audit = restored.audit();
    assert!(restored_audit.complete() && restored_audit.zero_violations());
    assert!(restored_audit.within_budget(BUDGET));
    assert_eq!(
        audit_objective_bits(&restored),
        audit_objective_bits(&reference),
        "restored fleet must converge to the same placement (bit-identical audit objective)"
    );
    for (a, b) in restored.shards().iter().zip(reference.shards()) {
        assert_eq!(
            a.placement(),
            b.placement(),
            "placements must match exactly"
        );
    }
    assert_eq!(
        restored.handoffs(),
        reference.handoffs(),
        "handoff audit trails must match"
    );
    assert_eq!(
        total_resolves(&restored),
        total_resolves(&reference),
        "recovery must cost zero spurious re-solves"
    );
    println!(
        "equivalence       : placements identical, audit objectives bit-identical, \
         0 spurious re-solves"
    );

    // --- the decision trace must not fork ----------------------------------
    let restored_trace = restored.trace_events();
    dump_trace(&dir, "trace-restored.txt", &restored_trace);
    assert_eq!(
        restored_trace[..prekill_trace.len()],
        prekill_trace[..],
        "the pre-kill trace must be a verbatim prefix of the restored run's"
    );
    assert_eq!(
        restored.trace_bytes(),
        reference.trace_bytes(),
        "restored and uninterrupted decision traces must be byte-identical"
    );
    for (shard, (a, b)) in restored.shards().iter().zip(reference.shards()).enumerate() {
        assert_eq!(
            a.trace_bytes(),
            b.trace_bytes(),
            "shard {shard} traces must be byte-identical"
        );
    }
    println!(
        "decision trace    : {} fleet events, prefix preserved across restore, \
         byte-identical to the uninterrupted run",
        restored_trace.len()
    );
    if let Some(last) = restored_trace.last() {
        println!(
            "  last event      : #{:06} t{:04} {:?}",
            last.seq, last.tick, last.event
        );
    }

    // Metrics, both renderings — the same text the Metrics RPC serves.
    let prometheus = restored.metrics_prometheus();
    let completed_line = prometheus
        .lines()
        .find(|l| l.starts_with("kairos_fleet_handoffs_completed_total"))
        .unwrap_or("kairos_fleet_handoffs_completed_total <missing>");
    println!("  metrics         : {completed_line} (full dump: metrics.prom / metrics.json)");
    std::fs::write(dir.join("metrics.prom"), &prometheus).expect("metrics dump writes");
    std::fs::write(dir.join("metrics.json"), restored.metrics_json()).expect("metrics dump writes");

    // --- corruption injection ---------------------------------------------
    let clean = std::fs::read(&path).expect("snapshot readable");

    let truncated = &clean[..clean.len() / 2];
    std::fs::write(&path, truncated).expect("write truncated snapshot");
    match FleetController::resume_from(config(), &path) {
        Err(e) => println!("truncated snapshot: rejected — {e}"),
        Ok(_) => panic!("a truncated snapshot must never restore"),
    }

    let mut flipped = clean.clone();
    let byte = (rng.next_range(clean.len() as u64)) as usize;
    flipped[byte] ^= 1 << rng.next_range(8);
    std::fs::write(&path, &flipped).expect("write bit-flipped snapshot");
    match FleetController::resume_from(config(), &path) {
        Err(e) => println!("bit-flipped snapshot (byte {byte}): rejected — {e}"),
        Ok(_) => panic!("a bit-flipped snapshot must never restore"),
    }

    // Restore the clean bytes so the uploaded CI artifact (on failure
    // elsewhere) is the real checkpoint.
    std::fs::write(&path, &clean).expect("restore clean snapshot");

    println!("\nall crash-recovery acceptance properties passed.");
}
