//! Simulation driver: binds workloads to instances and runs the clock.
//!
//! The driver is the "client machines" of the paper's testbed: it offers
//! transactions at each workload's scheduled rate, collects per-workload
//! throughput and latency, and leaves all resource arbitration to the
//! [`kairos_dbsim::Host`].

use crate::{Workload, WorkloadHandle};
use kairos_dbsim::{DatabaseId, Host, OpBatch, DEFAULT_TICK_SECS};
use kairos_types::series::percentile_of_sorted;

/// A workload bound to a DBMS instance on the host.
pub struct Binding {
    pub instance: usize,
    pub handle: WorkloadHandle,
    pub workload: Box<dyn Workload>,
}

/// Per-workload measurements from a run.
#[derive(Debug, Clone)]
pub struct WorkloadRunStats {
    pub name: String,
    pub offered_txns: f64,
    pub committed_txns: f64,
    pub secs: f64,
    /// Per-tick mean latency samples (seconds), weighted by commits when
    /// summarized.
    latencies: Vec<(f64, f64)>, // (latency, committed weight)
}

impl WorkloadRunStats {
    fn new(name: String) -> WorkloadRunStats {
        WorkloadRunStats {
            name,
            offered_txns: 0.0,
            committed_txns: 0.0,
            secs: 0.0,
            latencies: Vec::new(),
        }
    }

    /// Committed transactions per second.
    pub fn tps(&self) -> f64 {
        if self.secs == 0.0 {
            0.0
        } else {
            self.committed_txns / self.secs
        }
    }

    /// Offered transactions per second.
    pub fn offered_tps(&self) -> f64 {
        if self.secs == 0.0 {
            0.0
        } else {
            self.offered_txns / self.secs
        }
    }

    /// Commit-weighted mean latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        let (num, den) = self
            .latencies
            .iter()
            .fold((0.0, 0.0), |(n, d), &(l, w)| (n + l * w, d + w));
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Latency percentile over tick samples (ignores weights below one
    /// commit to avoid idle-tick noise).
    pub fn latency_percentile_secs(&self, p: f64) -> f64 {
        let mut samples: Vec<f64> = self
            .latencies
            .iter()
            .filter(|&&(_, w)| w >= 1.0)
            .map(|&(l, _)| l)
            .collect();
        if samples.is_empty() {
            return 0.0;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
        percentile_of_sorted(&samples, p)
    }
}

/// Runs bound workloads against a host.
pub struct Driver {
    bindings: Vec<Binding>,
    now: f64,
    tick_secs: f64,
}

impl Default for Driver {
    fn default() -> Driver {
        Driver::new()
    }
}

impl Driver {
    pub fn new() -> Driver {
        Driver {
            bindings: Vec::new(),
            now: 0.0,
            tick_secs: DEFAULT_TICK_SECS,
        }
    }

    pub fn with_tick(mut self, tick_secs: f64) -> Driver {
        assert!(tick_secs > 0.0);
        self.tick_secs = tick_secs;
        self
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Install a workload into instance `instance` of `host` and bind it.
    pub fn bind(&mut self, host: &mut Host, instance: usize, mut workload: Box<dyn Workload>) {
        let handle = workload.install(host.instance_mut(instance));
        self.bindings.push(Binding {
            instance,
            handle,
            workload,
        });
    }

    /// Run for `secs` of simulated time; returns per-binding stats.
    pub fn run(&mut self, host: &mut Host, secs: f64) -> Vec<WorkloadRunStats> {
        let n_inst = host.instances().len();
        let mut stats: Vec<WorkloadRunStats> = self
            .bindings
            .iter()
            .map(|b| WorkloadRunStats::new(b.workload.name().to_string()))
            .collect();

        let ticks = (secs / self.tick_secs).round() as usize;
        for _ in 0..ticks {
            // Gather batches per instance.
            let mut loads: Vec<Vec<(DatabaseId, OpBatch)>> = vec![Vec::new(); n_inst];
            let mut offered: Vec<f64> = Vec::with_capacity(self.bindings.len());
            for b in self.bindings.iter_mut() {
                let batch = b.workload.batch(&b.handle, self.now, self.tick_secs);
                offered.push(batch.txns);
                loads[b.instance].push((b.handle.db, batch));
            }
            let report = host.tick(self.tick_secs, &loads);
            // Attribute per-db commits back to bindings.
            for (bi, b) in self.bindings.iter().enumerate() {
                let inst_result = &report.per_instance[b.instance];
                let committed = inst_result
                    .per_db_committed
                    .iter()
                    .find(|(db, _)| *db == b.handle.db)
                    .map(|(_, c)| *c)
                    .unwrap_or(0.0);
                let s = &mut stats[bi];
                s.offered_txns += offered[bi];
                s.committed_txns += committed;
                s.secs += self.tick_secs;
                if committed > 0.0 {
                    s.latencies.push((inst_result.mean_latency_secs, committed));
                }
            }
            self.now += self.tick_secs;
        }
        stats
    }

    /// Run and discard measurements (warm-up).
    pub fn warmup(&mut self, host: &mut Host, secs: f64) {
        let _ = self.run(host, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticSpec, SyntheticWorkload};
    use crate::RatePattern;
    use kairos_dbsim::{DbmsConfig, DbmsInstance};
    use kairos_types::{Bytes, MachineSpec};

    fn small_workload(name: &str, tps: f64) -> Box<dyn Workload> {
        let spec = SyntheticSpec::balanced(name, Bytes::mib(32), RatePattern::Flat { tps });
        Box::new(SyntheticWorkload::new(spec))
    }

    fn host_one_instance() -> Host {
        let mut host = Host::new(MachineSpec::server1());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(256))));
        host
    }

    #[test]
    fn driver_commits_offered_load_under_capacity() {
        let mut host = host_one_instance();
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, small_workload("a", 50.0));
        let stats = driver.run(&mut host, 20.0);
        assert_eq!(stats.len(), 1);
        assert!(
            (stats[0].tps() - 50.0).abs() < 2.0,
            "tps = {}",
            stats[0].tps()
        );
        assert!(stats[0].mean_latency_secs() > 0.0);
    }

    #[test]
    fn multiple_workloads_share_one_instance() {
        let mut host = host_one_instance();
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, small_workload("a", 30.0));
        driver.bind(&mut host, 0, small_workload("b", 60.0));
        let stats = driver.run(&mut host, 10.0);
        assert!((stats[0].tps() - 30.0).abs() < 2.0);
        assert!((stats[1].tps() - 60.0).abs() < 2.0);
    }

    #[test]
    fn workloads_on_separate_instances() {
        let mut host = Host::new(MachineSpec::server1());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(128))));
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(128))));
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, small_workload("a", 20.0));
        driver.bind(&mut host, 1, small_workload("b", 20.0));
        let stats = driver.run(&mut host, 10.0);
        assert!((stats[0].tps() - 20.0).abs() < 2.0);
        assert!((stats[1].tps() - 20.0).abs() < 2.0);
    }

    #[test]
    fn latency_percentiles_ordered() {
        let mut host = host_one_instance();
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, small_workload("a", 100.0));
        let stats = driver.run(&mut host, 20.0);
        let p50 = stats[0].latency_percentile_secs(50.0);
        let p95 = stats[0].latency_percentile_secs(95.0);
        assert!(p50 > 0.0);
        assert!(p95 >= p50);
    }

    #[test]
    fn time_advances_across_runs() {
        let mut host = host_one_instance();
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, small_workload("a", 10.0));
        driver.warmup(&mut host, 5.0);
        assert!((driver.now() - 5.0).abs() < 1e-9);
        driver.run(&mut host, 5.0);
        assert!((driver.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overload_reports_lost_throughput() {
        // A 32 MiB-working-set workload with absurd CPU cost per txn.
        let spec = SyntheticSpec {
            cpu_secs_per_txn: 50e-3,
            ..SyntheticSpec::balanced("hog", Bytes::mib(32), RatePattern::Flat { tps: 500.0 })
        };
        let mut host = host_one_instance();
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, Box::new(SyntheticWorkload::new(spec)));
        let stats = driver.run(&mut host, 10.0);
        // 500 tps * 50 ms = 25 core-seconds/sec >> 8 cores.
        assert!(stats[0].tps() < 250.0, "tps = {}", stats[0].tps());
        assert!(stats[0].offered_tps() > 490.0);
    }
}
