//! Property-based tests (proptest) on the system's core invariants.

use kairos::solver::{
    evaluate, fractional_lower_bound, greedy_pack, polish, solve, Assignment,
    ConsolidationProblem, LinearDiskCombiner, SolverConfig, TargetMachine, WorkloadSpec,
};
use kairos::types::{Bytes, SplitMix64, TimeSeries};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_problem() -> impl Strategy<Value = ConsolidationProblem> {
    (2usize..12, 1usize..6, 0u64..1000).prop_map(|(n, windows, seed)| {
        let mut rng = SplitMix64::new(seed);
        let workloads: Vec<WorkloadSpec> = (0..n)
            .map(|i| {
                let cpu = rng.next_in(0.1, 5.0);
                let ram = rng.next_in(1e9, 30e9);
                let ws = ram * 0.3;
                let rate = rng.next_in(10.0, 2_000.0);
                WorkloadSpec::flat(format!("w{i}"), windows, cpu, ram, ws, rate)
            })
            .collect();
        ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any plan the solver returns satisfies every constraint, and never
    /// beats the fractional lower bound.
    #[test]
    fn solver_output_is_feasible_and_bounded(problem in arb_problem()) {
        let cfg = SolverConfig {
            probe_evals: 300,
            final_evals: 800,
            polish_rounds: 20,
            ..Default::default()
        };
        if let Ok(report) = solve(&problem, &cfg) {
            prop_assert!(report.evaluation.feasible);
            let again = evaluate(&problem, &report.assignment);
            prop_assert!(again.feasible);
            prop_assert!(report.assignment.machines_used() >= fractional_lower_bound(&problem));
            prop_assert_eq!(report.assignment.machine_of.len(), problem.slots().len());
        }
    }

    /// Greedy solutions, when produced, are feasible.
    #[test]
    fn greedy_output_is_feasible(problem in arb_problem()) {
        if let Some(g) = greedy_pack(&problem) {
            prop_assert!(evaluate(&problem, &g.assignment).feasible);
        }
    }

    /// Local search never worsens the objective.
    #[test]
    fn polish_never_worsens(problem in arb_problem(), seed in 0u64..500) {
        let slots = problem.slots().len();
        let k = problem.max_machines;
        let mut rng = SplitMix64::new(seed);
        let start = Assignment::new(
            (0..slots).map(|_| rng.next_range(k as u64) as usize).collect(),
        );
        let before = evaluate(&problem, &start).objective;
        let report = polish(&problem, &start, k, 25);
        prop_assert!(report.evaluation.objective <= before + 1e-9);
    }

    /// The exponential objective prefers fewer machines whenever both
    /// assignments are feasible.
    #[test]
    fn fewer_machines_win_when_feasible(n in 2usize..8) {
        let workloads: Vec<WorkloadSpec> = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 2, 1.0, 2e9, 5e8, 50.0))
            .collect();
        let problem = ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        );
        let packed = evaluate(&problem, &Assignment::new(vec![0; n]));
        let spread = evaluate(&problem, &Assignment::new((0..n).collect()));
        if packed.feasible && spread.feasible {
            prop_assert!(packed.objective < spread.objective);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Time-series downsampling with AVG conserves the mean on exact
    /// bucket boundaries.
    #[test]
    fn downsample_avg_conserves_mean(
        vals in proptest::collection::vec(-1e6f64..1e6, 4..64),
        factor in 1usize..8,
    ) {
        let n = (vals.len() / factor) * factor;
        prop_assume!(n > 0);
        let ts = TimeSeries::new(1.0, vals[..n].to_vec());
        let down = ts.downsample_avg(factor);
        prop_assert!((down.mean() - ts.mean()).abs() < 1e-6);
    }

    /// MAX consolidation dominates AVG pointwise.
    #[test]
    fn downsample_max_dominates_avg(
        vals in proptest::collection::vec(0f64..1e6, 4..64),
        factor in 1usize..8,
    ) {
        let ts = TimeSeries::new(1.0, vals);
        let avg = ts.downsample_avg(factor);
        let max = ts.downsample_max(factor);
        for (a, m) in avg.values().iter().zip(max.values()) {
            prop_assert!(m >= a);
        }
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_are_monotone(
        vals in proptest::collection::vec(-1e9f64..1e9, 1..128),
        p1 in 0f64..100.0,
        p2 in 0f64..100.0,
    ) {
        let ts = TimeSeries::new(1.0, vals);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(ts.percentile(lo) <= ts.percentile(hi) + 1e-9);
        prop_assert!(ts.percentile(0.0) >= ts.min() - 1e-9);
        prop_assert!(ts.percentile(100.0) <= ts.max() + 1e-9);
    }
}

mod buffer_pool {
    use super::*;
    use kairos::dbsim::{ClockCache, PageId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The cache never exceeds capacity, never loses dirty pages
        /// silently (dirty_count matches ground truth), and hits+misses
        /// equals the access count.
        #[test]
        fn clock_cache_invariants(
            capacity in 1usize..64,
            ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..256),
        ) {
            let mut cache = ClockCache::new(capacity);
            let mut accesses = 0u64;
            for (page, dirty) in ops {
                cache.touch(PageId(page), dirty);
                accesses += 1;
                prop_assert!(cache.resident() <= capacity);
                prop_assert!(cache.dirty_count() <= cache.resident());
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, accesses);
        }

        /// Flushing each dirty batch eventually cleans everything, and
        /// batches come out sorted.
        #[test]
        fn dirty_batches_are_sorted_and_drain(
            pages in proptest::collection::vec(0u64..512, 1..128),
        ) {
            let mut cache = ClockCache::new(1024);
            for &p in &pages {
                cache.touch(PageId(p), true);
            }
            let mut total = 0;
            loop {
                let batch = cache.take_dirty_batch(7);
                if batch.is_empty() {
                    break;
                }
                for w in batch.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                total += batch.len();
            }
            let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
            prop_assert_eq!(total, distinct.len());
            prop_assert_eq!(cache.dirty_count(), 0);
        }
    }
}

mod disk_model {
    use super::*;
    use kairos::diskmodel::{DiskModel, DiskPoint, DiskProfile};
    use kairos::types::{DiskDemand, Rate};

    fn profile_from_seed(seed: u64) -> DiskProfile {
        let mut rng = SplitMix64::new(seed);
        let a = rng.next_in(150.0, 300.0); // log bytes per row
        let b = rng.next_in(0.0005, 0.003); // ws coupling
        let mut points = Vec::new();
        for i in 1..=5 {
            let ws = i as f64 * 0.6e9;
            for j in 1..=8 {
                let rate = j as f64 * 4_000.0;
                points.push(DiskPoint {
                    ws_bytes: ws,
                    rows_per_sec: rate,
                    write_bytes_per_sec: a * rate + b * ws + rng.next_in(0.0, 1e5),
                    achieved_fraction: 1.0,
                });
            }
        }
        DiskProfile { machine: "prop".into(), points }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For monotone profiles the fitted model predicts monotonically
        /// in rate and stays within the clamp envelope.
        #[test]
        fn model_predicts_monotone_in_rate(seed in 0u64..10_000) {
            let model = DiskModel::fit(&profile_from_seed(seed)).unwrap();
            let ws = Bytes(1_500_000_000);
            let mut prev = 0.0;
            for j in 1..=6 {
                let v = model.predict_write_bytes(DiskDemand::new(ws, Rate(j as f64 * 5_000.0)));
                prop_assert!(v >= prev - 1e5, "rate step {j}: {v} < {prev}");
                prop_assert!(v.is_finite() && v >= 0.0);
                prev = v;
            }
        }
    }
}
