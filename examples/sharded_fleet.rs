//! The sharded control plane end-to-end: a 4-shard, ~200-tenant fleet
//! driven through a regional flash crowd and a membership-churn wave.
//!
//! ```text
//! cargo run --release --example sharded_fleet
//! ```
//!
//! Demonstrates the acceptance properties of `kairos-fleet`:
//!
//! * every shard converges to a placement that re-evaluates as feasible
//!   against the shard-local restriction of one *global* problem
//!   (`FleetController::audit`) — zero capacity violations fleet-wide;
//! * every shard ends within its machine budget, with the cross-shard
//!   balancer moving tenants off the overloaded shard via two-phase
//!   (reserve → evict → admit) handoffs;
//! * every intermediate state is capacity-safe: intra-shard migrations
//!   report zero forced steps, and handoffs only complete after the
//!   destination certified capacity;
//! * migrated-away tenants are garbage-collected from their source hosts
//!   (`DROP DATABASE`), so live database counts match the routing truth.

use kairos::controller::{ControllerConfig, SyntheticSource};
use kairos::fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos::types::Bytes;
use kairos::workloads::RatePattern;

const INTERVAL: f64 = 300.0;
const BUDGET: usize = 12;

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        shard: ControllerConfig {
            horizon: 12,
            check_every: 4,
            cooldown_ticks: 12,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: BUDGET,
            balance_every: 6,
            max_moves_per_round: 4,
            ..BalancerConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn tenant(name: String, tps: f64) -> SyntheticSource {
    SyntheticSource::new(name, INTERVAL, Bytes::gib(4), RatePattern::Flat { tps })
}

fn show(label: &str, fleet: &FleetController) {
    let audit = fleet.audit();
    let stats = fleet.stats();
    let tenants: usize = fleet.shards().iter().map(|s| s.workloads().len()).sum();
    let forced: u64 = fleet.shards().iter().map(|s| s.stats().forced_steps).sum();
    let resolves: u64 = fleet.shards().iter().map(|s| s.stats().resolves).sum();
    println!(
        "  {label:<22} tenants/shard {:>3?}  machines {:>3?}  re-solves {resolves:<3} \
         handoffs {}✓/{}✗  forced {forced}  violations-free {}",
        fleet.map().counts(),
        audit.machines_used,
        stats.handoffs_completed,
        stats.handoffs_rejected,
        audit.zero_violations(),
    );
    println!(
        "  {:<22} tenants {tenants}  total machines {}  balance rounds {}",
        "",
        audit.total_machines(),
        stats.balance_rounds
    );
}

/// Every tenant the routing map knows is really materialized on exactly
/// its shard's hosts, and sources carry no ghost databases.
fn assert_hosts_faithful(fleet: &FleetController) {
    for shard in fleet.shards() {
        let routed = shard.workloads().len();
        let live: usize = shard
            .executor()
            .hosts()
            .iter()
            .map(|h| h.instance(0).live_databases().count())
            .sum();
        assert_eq!(
            live, routed,
            "live databases must match routed tenants (tenant GC)"
        );
    }
}

fn flash_crowd() {
    println!("flash crowd (regional spike on shard 0):");
    let mut fleet = FleetController::new(config(4));
    // 50 tenants per shard, ~2 cores each -> ~9 machines (budget 12).
    for shard in 0..4 {
        for i in 0..50 {
            let base = 190.0 + 10.0 * (i % 4) as f64;
            let name = format!("s{shard}-t{i:02}");
            let src = if shard == 0 && i < 20 {
                // A fifth of the fleet's "region" spikes ~3x for ~70
                // monitoring intervals, then subsides.
                tenant(name, base)
                    .then_at(40, RatePattern::Flat { tps: 640.0 })
                    .then_at(110, RatePattern::Flat { tps: base })
            } else {
                tenant(name, base)
            };
            fleet.add_workload_to(shard, Box::new(src));
        }
    }

    for _ in 0..180 {
        fleet.tick();
    }
    show("after spike+subside", &fleet);

    let audit = fleet.audit();
    let stats = fleet.stats();
    assert!(audit.complete(), "all shards planned");
    assert!(
        audit.zero_violations(),
        "fleet must converge to zero capacity violations"
    );
    assert!(
        audit.within_budget(BUDGET),
        "every shard within its machine budget: {:?}",
        audit.machines_used
    );
    assert!(
        stats.handoffs_completed >= 1,
        "the spike must force cross-shard handoffs"
    );
    let forced: u64 = fleet.shards().iter().map(|s| s.stats().forced_steps).sum();
    assert_eq!(
        forced, 0,
        "every intra-shard move order must be capacity-safe"
    );
    // Completed handoffs were all reservation-checked; rejected ones
    // changed nothing.
    for h in fleet.handoffs() {
        assert_eq!(h.completed(), h.to.is_some());
    }
    assert_hosts_faithful(&fleet);

    // The observability face of the same run: the decision trace names
    // every balancer choice, and the metrics registry serves both
    // renderings (the `Metrics` RPC exposes the same text per node).
    let trace = fleet.trace_events();
    assert!(!trace.is_empty(), "the spike must leave a decision trace");
    println!(
        "  decision trace ({} fleet events), last three:",
        trace.len()
    );
    for e in trace.iter().rev().take(3).rev() {
        println!("    #{:06} t{:04} {:?}", e.seq, e.tick, e.event);
    }
    let prometheus = fleet.metrics_prometheus();
    println!("  prometheus excerpt:");
    for line in prometheus
        .lines()
        .filter(|l| l.starts_with("kairos_fleet_handoffs") || l.starts_with("kairos_fleet_ticks"))
    {
        println!("    {line}");
    }
    assert!(fleet
        .metrics_json()
        .contains("\"kairos_fleet_ticks_total\""));

    // The audit explanation reads clean after convergence.
    let explanation = fleet.explain_audit(&audit);
    assert!(explanation.contains("audit clean"), "{explanation}");
    println!("  explain_audit: {}", explanation.trim_end());
}

fn churn() {
    println!("\nworkload churn (arrival wave + departures):");
    let mut fleet = FleetController::new(config(4));
    for shard in 0..4 {
        for i in 0..40 {
            fleet.add_workload_to(shard, Box::new(tenant(format!("s{shard}-t{i:02}"), 220.0)));
        }
    }
    for _ in 0..30 {
        fleet.tick();
    }
    // An arrival wave lands on the least-populated shards…
    for i in 0..24 {
        fleet.add_workload(Box::new(tenant(format!("new-{i:02}"), 240.0)));
    }
    for _ in 0..40 {
        fleet.tick();
    }
    // …then a departure wave frees capacity for opportunistic repacks.
    for shard in 0..4 {
        for i in 0..4 {
            fleet.remove_workload(&format!("s{shard}-t{i:02}"));
        }
    }
    for _ in 0..70 {
        fleet.tick();
    }
    show("after churn", &fleet);

    let audit = fleet.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());
    assert!(audit.within_budget(BUDGET), "{:?}", audit.machines_used);
    // Every arrival is placed somewhere; every departure is gone.
    for i in 0..24 {
        let name = format!("new-{i:02}");
        let shard = fleet.map().shard_of(&name).expect("arrival routed");
        assert!(
            fleet.shards()[shard]
                .placement()
                .machine_of(&name, 0)
                .is_some(),
            "{name} must be placed"
        );
    }
    for shard in 0..4 {
        assert_eq!(fleet.map().shard_of(&format!("s{shard}-t00")), None);
    }
    let forced: u64 = fleet.shards().iter().map(|s| s.stats().forced_steps).sum();
    assert_eq!(forced, 0, "churn must stay capacity-safe");
    assert_hosts_faithful(&fleet);
}

fn main() {
    println!("== kairos-fleet: sharded control plane with cross-shard balancing ==\n");
    flash_crowd();
    churn();
    println!("\nall sharded-fleet acceptance scenarios passed.");
}
