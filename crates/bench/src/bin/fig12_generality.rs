//! Figure 12 — disk-model generality:
//! (a) total database size does not affect disk write throughput — only
//!     the working set does (1/2/5 GB databases, fixed 512 MB hot set);
//! (b) transaction type does not matter — TPC-C and Wikipedia at matched
//!     working sets impose the same disk pressure per updated row.

use kairos_bench::{mbps, print_table, quick, section};
use kairos_dbsim::DbmsConfig;
use kairos_diskmodel::measure_workload;
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{ProfileLoad, TpccTxnProfile, TpccWorkload, WikipediaWorkload};

fn main() {
    let machine = MachineSpec::server1();
    let settle = if quick() { 15.0 } else { 40.0 };
    let measure = if quick() { 10.0 } else { 20.0 };

    // (a) Database-size independence.
    section("Figure 12a: database size vs disk writes (512 MB working set)");
    let rates: Vec<f64> = if quick() {
        vec![5_000.0, 20_000.0]
    } else {
        vec![2_500.0, 5_000.0, 10_000.0, 20_000.0, 40_000.0]
    };
    let sizes = [Bytes::gib(1), Bytes::gib(2), Bytes::gib(5)];
    let mut rows = Vec::new();
    for &rate in &rates {
        let mut row = vec![format!("{rate:.0}")];
        for &db in &sizes {
            let load = ProfileLoad::new(Bytes::mib(512), rate).with_db_size(db);
            let m = measure_workload(
                &machine,
                DbmsConfig::mysql(Bytes::gib(2)),
                Box::new(load),
                settle,
                measure,
            );
            row.push(mbps(m.write_bytes_per_sec));
        }
        rows.push(row);
    }
    print_table(&["rows/s", "db 1GB", "db 2GB", "db 5GB"], &rows);
    println!("columns nearly identical => database size does not matter (paper Fig 12a)");

    // (b) Transaction-type independence at matched working sets (~2.2 GB).
    section("Figure 12b: TPC-C vs Wikipedia at matched working set (~2.2 GB)");
    let row_rates: Vec<f64> = if quick() {
        vec![500.0, 2_000.0]
    } else {
        vec![250.0, 500.0, 1_000.0, 2_000.0, 4_000.0]
    };
    let mut rows = Vec::new();
    for &rate in &row_rates {
        // TPC-C 18 warehouses: ws = 18 × 125 MB ≈ 2.2 GB; 10 rows/txn.
        let tpcc = TpccWorkload::new(18, rate / 10.0).with_profile(TpccTxnProfile {
            insert_bytes_per_txn: 0.0,
            ..Default::default()
        });
        let m_tpcc = measure_workload(
            &machine,
            DbmsConfig::mysql(Bytes::gib(4)),
            Box::new(tpcc),
            settle,
            measure,
        );
        // Wikipedia 100K pages with working set pinned to TPC-C's; its
        // write mix averages ~0.32 rows/txn.
        let wiki = WikipediaWorkload::new(100, rate / 0.32).with_working_set(Bytes::mib(18 * 125));
        let m_wiki = measure_workload(
            &machine,
            DbmsConfig::mysql(Bytes::gib(4)),
            Box::new(wiki),
            settle,
            measure,
        );
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{:.0}", m_tpcc.rows_per_sec),
            mbps(m_tpcc.write_bytes_per_sec),
            format!("{:.0}", m_wiki.rows_per_sec),
            mbps(m_wiki.write_bytes_per_sec),
        ]);
    }
    print_table(
        &[
            "target rows/s",
            "tpcc rows/s",
            "tpcc MB/s",
            "wiki rows/s",
            "wiki MB/s",
        ],
        &rows,
    );
    println!(
        "matched (ws, rows/s) => matched disk MB/s, independent of transaction mix \
         (paper Fig 12b; Wikipedia shows higher variance from its tuple-size tail)"
    );
}
