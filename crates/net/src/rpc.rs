//! The RPC catalog: every message a balancer exchanges with a shard
//! node.
//!
//! The catalog is exactly the `ShardController` surface the balancer
//! already drove in-process — summaries, reservation, the two-phase
//! evict/admit handshake, checkpoint/reattach — plus the heartbeat the
//! lease layer rides on. A handoff's telemetry does **not** get a bespoke
//! message shape: it travels as the same checksummed
//! [`kairos_controller::TenantHandoff::into_wire`] frame the in-process
//! balancer produces, nested as opaque bytes inside [`Request::Admit`]
//! (frame-in-frame: the transport envelope protects the message, the
//! inner CRC protects the handoff across *any* path, including disk).
//!
//! Every request maps to exactly one response shape; anything else is a
//! protocol error. Errors cross as [`Response::Error`] strings — the
//! caller turns them into `NetError::Remote`.

use crate::frame;
use crate::transport::{Conn, NetError};
use kairos_controller::{ControllerStats, FleetPlacement, ShardSummary, TickOutcome};
use kairos_types::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// What a balancer asks a shard node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Heartbeat / lease renewal. Cheap and state-free.
    Ping,
    /// Advance the shard one monitoring interval.
    Tick,
    /// Has the shard produced its first plan? (Pure; used by the balance
    /// cadence gate without touching the summary cache.)
    PlannedOnce,
    /// The shard's (cached) balancer summary.
    Summary,
    /// Greedy machine estimate with the named tenants excluded.
    PackEstimate { exclude: Vec<String> },
    /// Forecast one tenant's next horizon.
    Forecast { tenant: String },
    /// Forecast every tenant (the fleet audit's input).
    ForecastFleet,
    /// Phase 1 reservation: would `profile` fit within `budget`?
    CanAdmit {
        profile: WorkloadProfile,
        budget: usize,
    },
    /// Phase 2a: evict a tenant, returning its handoff wire frame.
    Evict { tenant: String },
    /// Phase 2b: admit a tenant from a handoff wire frame (the node
    /// re-binds a destination-side telemetry source itself).
    Admit { frame: Vec<u8> },
    /// Register a brand-new tenant; the node binds a source by name.
    AddWorkload { tenant: String, replicas: u32 },
    /// Retire a tenant (also the rejoin reconciliation path: a node
    /// restored from a pre-handoff checkpoint drops the stale copy of a
    /// tenant the routing map has since moved elsewhere).
    RemoveWorkload { tenant: String },
    /// Register a fleet-wide anti-affinity pair.
    AddAntiAffinity { a: String, b: String },
    /// Tenant names the shard currently owns.
    Workloads,
    /// Does the shard currently own one tenant? The handshake recovery
    /// probe — constant-size either way, unlike `Workloads`.
    Owns { tenant: String },
    /// The shard's full membership view: replica counts and the
    /// anti-affinity pairs registered on it — what a promoted standby
    /// adopts (the shards are the ground truth; a balancer that died
    /// took its own copy with it).
    Membership,
    /// Tenants with telemetry but no live source (post-restore).
    DetachedWorkloads,
    /// The shard's current placement.
    Placement,
    /// The shard's loop counters.
    Stats,
    /// Persist a shard snapshot at the node-local path.
    Checkpoint { path: String },
    /// Ask the node process to exit its serve loop.
    Shutdown,
    // New requests append here: the wire tag is the variant index, so
    // reordering or inserting above breaks every recorded frame.
    /// The node's metrics registries rendered as JSON and Prometheus
    /// text (the scrape endpoint, over the control transport).
    Metrics,
    /// The shard's decision trace as canonical codec bytes
    /// (`Vec<TracedEvent>` through the workspace codec).
    Trace,
    /// Tenant names sitting in the node's evict outbox: evicted here,
    /// handoff frame retained, not yet admitted anywhere the node knows
    /// of. Answered with [`Response::Workloads`]. A promoted standby
    /// probes this to rebuild the parked-handoff lot from shard ground
    /// truth — the outbox is exactly where a double-faulted handoff's
    /// tenant is still recoverable from.
    EvictOutbox,
    /// Replicated balancer soft state: a `kairos-fleet`
    /// `BalancerSoftState` frame (cooldown memory, parked-handoff lot,
    /// audit log, gate state) the primary streams to each standby after
    /// every balance round. Answered with [`Response::Synced`]; a
    /// promoted standby resumes from the last ingested frame and uses
    /// the probe-first shard adoption only as fallback reconciliation.
    SyncState { frame: Vec<u8> },
    /// A shard node announcing itself to the balancer's lease endpoint
    /// (self-healing membership): sent at serve/restore and re-sent
    /// with bounded tick-based backoff until acknowledged. The balancer
    /// reconciles it into a rejoin on its next tick.
    Announce {
        shard: u64,
        endpoint: String,
        generation: u64,
    },
    /// Flight-recorder query: run a [`kairos_obs::TraceQuery`] against
    /// the node's decision log and span log. Any node answers "show me
    /// everything about tenant T between ticks a..b" (or one trace id)
    /// without shipping whole logs. Answered with [`Response::Query`].
    Query { query: kairos_obs::TraceQuery },
    /// The node's current health report (watchdog rules evaluated over
    /// its metrics registries). Answered with [`Response::Health`].
    Health,
    /// The node's span log as canonical codec bytes
    /// (`Vec<SpanRecord>` through the workspace codec) — the span
    /// counterpart of [`Request::Trace`].
    Spans,
}

/// What a shard node answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    Pong {
        ticks: u64,
    },
    Tick(TickOutcome),
    PlannedOnce(bool),
    Summary(ShardSummary),
    PackEstimate(Option<usize>),
    Forecast(Option<WorkloadProfile>),
    Profiles(Vec<WorkloadProfile>),
    CanAdmit(bool),
    /// `None`: the tenant is unknown here.
    Evicted(Option<Vec<u8>>),
    Workloads(Vec<String>),
    Owns(bool),
    Membership {
        /// `(tenant, replicas)` for tenants running more than one copy.
        replicas: Vec<(String, u32)>,
        /// Named anti-affinity pairs, in registration order.
        anti_affinity: Vec<(String, String)>,
    },
    Placement(FleetPlacement),
    Stats(ControllerStats),
    /// Generic success for requests with nothing to report.
    Done,
    /// The request was understood but failed; the handshake layers turn
    /// this into a rollback, never a partial application.
    Error(String),
    // New responses append here (wire tag = variant index; see Request).
    /// The node's rendered metrics.
    Metrics {
        json: String,
        prometheus: String,
    },
    /// The shard's decision trace bytes.
    Trace(Vec<u8>),
    /// A standby ingested (or deliberately ignored, if stale) a
    /// [`Request::SyncState`] frame; `round` echoes the balance round
    /// of the newest state it now holds.
    Synced {
        round: u64,
    },
    /// The node's answer to a flight-recorder [`Request::Query`].
    Query(kairos_obs::QueryResult),
    /// The node's current [`kairos_obs::HealthReport`].
    Health(kairos_obs::HealthReport),
    /// The node's span log bytes (see [`Request::Spans`]).
    Spans(Vec<u8>),
}

/// The wire tag (enum variant index) a request encodes with — the first
/// four payload bytes of its frame. Test fault injectors use it to
/// target one message kind (e.g. corrupt only `Admit` frames, proving
/// the mid-handshake guarantee) without parsing whole messages.
pub fn wire_tag(request: &Request) -> u32 {
    let payload = serde::to_bytes(request);
    u32::from_le_bytes(payload[..4].try_into().expect("tagged enum payload"))
}

/// Transport-layer instruments, registered once on the process-global
/// [`kairos_obs::global`] registry: RPC count, frame bytes both ways,
/// and wall-clock round-trip latency. Wall clocks are fine here —
/// metrics are observability, never part of the decision trace.
struct NetMetrics {
    rpcs: kairos_obs::Counter,
    bytes_sent: kairos_obs::Counter,
    bytes_received: kairos_obs::Counter,
    rpc_usecs: kairos_obs::Histogram,
}

fn net_metrics() -> &'static NetMetrics {
    static NET: std::sync::OnceLock<NetMetrics> = std::sync::OnceLock::new();
    NET.get_or_init(|| {
        let registry = kairos_obs::global();
        NetMetrics {
            rpcs: registry.counter("kairos_net_rpcs_total"),
            bytes_sent: registry.counter("kairos_net_frame_bytes_sent_total"),
            bytes_received: registry.counter("kairos_net_frame_bytes_received_total"),
            rpc_usecs: registry.histogram("kairos_net_rpc_usecs"),
        }
    })
}

/// One round trip: encode the request, seal it under the process key
/// (if any — see [`crate::auth`]), ship it, verify and decode the
/// response. [`Response::Error`] becomes [`NetError::Remote`] so call
/// sites match on the one success shape they expect.
pub fn call(conn: &mut dyn Conn, request: &Request) -> Result<Response, NetError> {
    let metrics = net_metrics();
    let key = crate::auth::process_key();
    // The caller's active span context (if any) rides in the frame
    // header's span section, so the server's nested work chains into
    // the caller's trace. No context ⇒ the exact pre-span wire bytes.
    let span = kairos_obs::span::current();
    let frame = crate::auth::seal(frame::encode_frame_with_span(request, span), key);
    metrics.rpcs.inc();
    metrics.bytes_sent.add(frame.len() as u64);
    let started = std::time::Instant::now();
    let response = conn.call(&frame)?;
    metrics
        .rpc_usecs
        .record(started.elapsed().as_micros() as u64);
    metrics.bytes_received.add(response.len() as u64);
    let body = crate::auth::verify(&response, key)?;
    match frame::decode_frame::<Response>(body)? {
        Response::Error(msg) => Err(NetError::Remote(msg)),
        ok => Ok(ok),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_envelope() {
        let reqs = vec![
            Request::Ping,
            Request::Tick,
            Request::PackEstimate {
                exclude: vec!["a".into(), "b".into()],
            },
            Request::Evict {
                tenant: "t0".into(),
            },
            Request::Admit {
                frame: vec![1, 2, 3, 255],
            },
            Request::AddWorkload {
                tenant: "t1".into(),
                replicas: 2,
            },
            Request::Checkpoint {
                path: "/tmp/x.ksnp".into(),
            },
        ];
        for req in reqs {
            let bytes = frame::encode_frame(&req);
            let back: Request = frame::decode_frame(&bytes).expect("request roundtrips");
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn responses_roundtrip_through_the_envelope() {
        let resps = vec![
            Response::Pong { ticks: 42 },
            Response::PlannedOnce(true),
            Response::Evicted(Some(vec![9, 9, 9])),
            Response::Workloads(vec!["a".into()]),
            Response::Done,
            Response::Error("nope".into()),
        ];
        for resp in resps {
            let bytes = frame::encode_frame(&resp);
            let back: Response = frame::decode_frame(&bytes).expect("response roundtrips");
            assert_eq!(format!("{resp:?}"), format!("{back:?}"));
        }
    }
}
