//! The unified fault-injection surface.
//!
//! Before the chaos harness, each loopback fault was its own ad-hoc
//! method with its own private state and an *implicit* interaction
//! order. [`FaultPlan`] makes the whole per-endpoint fault state one
//! declarative value with one documented precedence, so a schedule
//! interpreter (`kairos-chaos`) can inject any mix of faults and
//! reason about exactly which call fails how.
//!
//! # Precedence (normative)
//!
//! For each outbound call, faults are consulted in this order:
//!
//! 1. **Partition** — if the endpoint is partitioned the call fails
//!    `Unreachable`. Nothing else is consulted and no counters burn:
//!    a partition *pauses* the pending one-shot faults behind it.
//! 2. **Drop** — a pending `DropNext` counter > 0 burns one count and
//!    fails the call `Dropped`.
//! 3. **Corrupt** — a pending `CorruptNext` counter > 0 burns one
//!    count and delivers the frame with one bit flipped; otherwise the
//!    first queued `CorruptNextMatching` rule whose tag equals the
//!    call's tag burns one count and corrupts.
//!
//! **Healing cancels, it does not release.** [`FaultPlan::heal`]
//! removes the partition *and discards every pending one-shot fault*
//! (drops and corruptions) for the endpoint: a healed endpoint comes
//! back clean. This closes the trap where a drop scheduled before a
//! partition silently survived the heal and fired arbitrarily later —
//! the old behaviour was never specified, merely what two independent
//! maps happened to do. A schedule that wants post-heal drops states
//! so by injecting them after the heal.

use std::collections::{BTreeMap, BTreeSet};

/// One injectable fault against a single endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The endpoint becomes unreachable until healed.
    Partition,
    /// Drop the next `n` calls (`NetError::Dropped`).
    DropNext(u64),
    /// Flip one seeded bit in each of the next `n` request frames.
    CorruptNext(u64),
    /// Flip one seeded bit in each of the next `n` request frames
    /// whose payload tag (see `rpc::wire_tag`) matches. Rules queue:
    /// injecting `Admit` then `Owns` corruption arms both at once.
    CorruptNextMatching { tag: u32, n: u64 },
}

/// What the transport must do with one outbound call, as decided by
/// [`FaultPlan::next_call`] under the precedence above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Partitioned: fail with `NetError::Unreachable`.
    Unreachable,
    /// A pending drop was consumed: fail with `NetError::Dropped`.
    Drop,
    /// Deliver the frame; `corrupt` says whether to flip one bit first.
    Deliver { corrupt: bool },
}

/// The declarative per-endpoint fault state a transport consults on
/// every call. Owned by the transport (under its state lock); mutated
/// through [`inject`](FaultPlan::inject) / [`heal`](FaultPlan::heal).
#[derive(Debug, Default)]
pub struct FaultPlan {
    partitioned: BTreeSet<String>,
    drop_next: BTreeMap<String, u64>,
    corrupt_next: BTreeMap<String, u64>,
    /// FIFO rule queue per endpoint; the first tag-matching rule with
    /// budget left burns a count. Exhausted rules are pruned.
    corrupt_matching: BTreeMap<String, Vec<(u32, u64)>>,
}

impl FaultPlan {
    /// Arm one fault against `endpoint`. Counter faults accumulate
    /// (two `DropNext(1)` injections equal one `DropNext(2)`);
    /// matching rules append to the endpoint's rule queue.
    pub fn inject(&mut self, endpoint: &str, fault: Fault) {
        match fault {
            Fault::Partition => {
                self.partitioned.insert(endpoint.to_string());
            }
            Fault::DropNext(n) => {
                *self.drop_next.entry(endpoint.to_string()).or_insert(0) += n;
            }
            Fault::CorruptNext(n) => {
                *self.corrupt_next.entry(endpoint.to_string()).or_insert(0) += n;
            }
            Fault::CorruptNextMatching { tag, n } => {
                self.corrupt_matching
                    .entry(endpoint.to_string())
                    .or_default()
                    .push((tag, n));
            }
        }
    }

    /// Heal `endpoint`: remove its partition **and cancel every pending
    /// one-shot fault** (see the module precedence contract).
    pub fn heal(&mut self, endpoint: &str) {
        self.partitioned.remove(endpoint);
        self.drop_next.remove(endpoint);
        self.corrupt_next.remove(endpoint);
        self.corrupt_matching.remove(endpoint);
    }

    /// Heal every endpoint (a chaos schedule's end-of-faults barrier).
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
        self.drop_next.clear();
        self.corrupt_next.clear();
        self.corrupt_matching.clear();
    }

    /// Is the endpoint currently partitioned?
    pub fn is_partitioned(&self, endpoint: &str) -> bool {
        self.partitioned.contains(endpoint)
    }

    /// Decide the fate of one outbound call to `endpoint` whose payload
    /// tag is `tag` (`None` when the frame is too short to carry one).
    /// Burns at most one fault count, per the precedence contract.
    pub fn next_call(&mut self, endpoint: &str, tag: Option<u32>) -> FaultVerdict {
        if self.partitioned.contains(endpoint) {
            return FaultVerdict::Unreachable;
        }
        if let Some(n) = self.drop_next.get_mut(endpoint) {
            if *n > 0 {
                *n -= 1;
                return FaultVerdict::Drop;
            }
        }
        if let Some(n) = self.corrupt_next.get_mut(endpoint) {
            if *n > 0 {
                *n -= 1;
                return FaultVerdict::Deliver { corrupt: true };
            }
        }
        if let (Some(tag), Some(rules)) = (tag, self.corrupt_matching.get_mut(endpoint)) {
            let mut hit = false;
            for (want, n) in rules.iter_mut() {
                if *want == tag && *n > 0 {
                    *n -= 1;
                    hit = true;
                    break;
                }
            }
            rules.retain(|(_, n)| *n > 0);
            if hit {
                return FaultVerdict::Deliver { corrupt: true };
            }
        }
        FaultVerdict::Deliver { corrupt: false }
    }
}

/// The shared named-fault surface: everything that owns a [`FaultPlan`]
/// (the loopback's in-memory registry, the [`crate::FaultedTransport`]
/// decorator over any backend) exposes the same injection verbs, so a
/// schedule interpreter (`kairos-chaos`) is generic over *where* the
/// faults land — in-memory dispatch or a real TCP socket.
pub trait FaultInjector {
    /// Arm one [`Fault`] against `endpoint` on the owned [`FaultPlan`].
    fn inject_fault(&self, endpoint: &str, fault: Fault);
    /// Heal `endpoint` (cancels its pending one-shot faults too).
    fn heal(&self, endpoint: &str);
    /// Heal every endpoint (a schedule's end-of-faults barrier).
    fn heal_all(&self);

    /// Make `endpoint` unreachable until healed.
    fn partition(&self, endpoint: &str) {
        self.inject_fault(endpoint, Fault::Partition);
    }
    /// Drop the next `n` calls to `endpoint`.
    fn drop_next_calls(&self, endpoint: &str, n: u64) {
        self.inject_fault(endpoint, Fault::DropNext(n));
    }
    /// Flip one seeded bit in each of the next `n` frames to `endpoint`.
    fn corrupt_next_calls(&self, endpoint: &str, n: u64) {
        self.inject_fault(endpoint, Fault::CorruptNext(n));
    }
    /// Tag-targeted corruption (see [`Fault::CorruptNextMatching`]).
    fn corrupt_next_calls_matching(&self, endpoint: &str, tag: u32, n: u64) {
        self.inject_fault(endpoint, Fault::CorruptNextMatching { tag, n });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_masks_and_heal_cancels_pending_drops() {
        let mut plan = FaultPlan::default();
        plan.inject("a", Fault::DropNext(2));
        plan.inject("a", Fault::Partition);
        // Partition wins without burning the drop counter.
        assert_eq!(plan.next_call("a", None), FaultVerdict::Unreachable);
        assert_eq!(plan.next_call("a", None), FaultVerdict::Unreachable);
        // Heal cancels the paused drops: the endpoint comes back clean.
        plan.heal("a");
        assert_eq!(
            plan.next_call("a", None),
            FaultVerdict::Deliver { corrupt: false }
        );
    }

    #[test]
    fn drop_outranks_corruption_and_counters_burn_one_at_a_time() {
        let mut plan = FaultPlan::default();
        plan.inject("a", Fault::DropNext(1));
        plan.inject("a", Fault::CorruptNext(1));
        assert_eq!(plan.next_call("a", None), FaultVerdict::Drop);
        assert_eq!(
            plan.next_call("a", None),
            FaultVerdict::Deliver { corrupt: true }
        );
        assert_eq!(
            plan.next_call("a", None),
            FaultVerdict::Deliver { corrupt: false }
        );
    }

    #[test]
    fn matching_rules_queue_independently_per_tag() {
        let mut plan = FaultPlan::default();
        plan.inject("a", Fault::CorruptNextMatching { tag: 8, n: 1 });
        plan.inject("a", Fault::CorruptNextMatching { tag: 9, n: 1 });
        // Tag 9 fires even though the tag-8 rule queued first.
        assert_eq!(
            plan.next_call("a", Some(9)),
            FaultVerdict::Deliver { corrupt: true }
        );
        // Tag 7 matches nothing.
        assert_eq!(
            plan.next_call("a", Some(7)),
            FaultVerdict::Deliver { corrupt: false }
        );
        // Tag 8's rule is still armed, then exhausted.
        assert_eq!(
            plan.next_call("a", Some(8)),
            FaultVerdict::Deliver { corrupt: true }
        );
        assert_eq!(
            plan.next_call("a", Some(8)),
            FaultVerdict::Deliver { corrupt: false }
        );
    }

    #[test]
    fn drop_counters_accumulate_across_injections() {
        let mut plan = FaultPlan::default();
        plan.inject("a", Fault::DropNext(1));
        plan.inject("a", Fault::DropNext(1));
        assert_eq!(plan.next_call("a", None), FaultVerdict::Drop);
        assert_eq!(plan.next_call("a", None), FaultVerdict::Drop);
        assert_eq!(
            plan.next_call("a", None),
            FaultVerdict::Deliver { corrupt: false }
        );
    }

    #[test]
    fn faults_are_per_endpoint() {
        let mut plan = FaultPlan::default();
        plan.inject("a", Fault::Partition);
        assert_eq!(plan.next_call("a", None), FaultVerdict::Unreachable);
        assert_eq!(
            plan.next_call("b", None),
            FaultVerdict::Deliver { corrupt: false }
        );
        assert!(plan.is_partitioned("a"));
        assert!(!plan.is_partitioned("b"));
        plan.heal_all();
        assert!(!plan.is_partitioned("a"));
    }
}
