//! # kairos-solver — the Consolidation Engine's optimizer (§5–6)
//!
//! Assigning workloads to machines is a mixed-integer **non-linear**
//! program: the objective minimizes server count (signum term) and
//! imbalance (exponential term), and the disk constraint goes through the
//! non-linear empirical disk model. This crate implements:
//!
//! * the problem/assignment model ([`problem`]) with replication,
//!   pinning, and anti-affinity constraints;
//! * the objective and constraint evaluator ([`objective`]) — the Fig 5
//!   landscape, penalty spike included;
//! * a from-scratch **DIRECT** global optimizer ([`direct`]);
//! * deterministic **local-search polish** with incremental evaluation
//!   ([`local`]);
//! * the §7.3 baselines: single-resource **greedy** first-fit
//!   ([`greedy`]) and the **fractional/idealized** lower bound
//!   ([`bounds`]);
//! * the §6 search pipeline ([`search`]): bound K, binary-search the
//!   minimal feasible K′, then a well-funded final solve — the
//!   optimization the paper credits with up to 45× faster solves.
//!
//! The solver is deliberately independent of the rest of Kairos: disk
//! non-linearity enters only through the [`problem::DiskCombiner`] trait,
//! which `kairos-core` implements with the fitted
//! `kairos_diskmodel::DiskModel`.

pub mod bounds;
pub mod direct;
pub mod greedy;
pub mod local;
pub mod objective;
pub mod problem;
pub mod search;

pub use bounds::{fractional_lower_bound, identity_assignment, upper_bound};
pub use direct::{direct_minimize, DirectConfig, DirectResult};
pub use greedy::{greedy_pack, GreedyReport, GreedyResource};
pub use local::{polish, PolishReport};
pub use objective::{
    evaluate, evaluate_objective, evaluate_reference, evaluate_with_series, EvalScratch,
    Evaluation, WindowLoad,
};
pub use problem::{
    Assignment, ConsolidationProblem, DiskCombiner, LinearDiskCombiner, MigrationCost,
    ResourceWeights, Slot, SlotSeries, TargetMachine, WorkloadSpec,
};
pub use search::{
    decode, decode_into, free_dims, solve, solve_at_k, solve_at_k_with, solve_unbounded,
    solve_warm, solve_warm_with, solve_with, SolveReport, SolveScratch, SolverConfig,
};
