//! The tentpole property: a fleet run **over the RPC transport** is
//! tick-for-tick identical to the in-process `FleetController`.
//!
//! Two fleets are built from one seeded [`SplitMix64`] stream:
//!
//! * the **reference** — today's in-process `FleetController` (serial
//!   ticks, direct `ShardController` access);
//! * the **networked fleet** — one [`ShardNode`] per shard served over a
//!   transport, a [`BalancerNode`] driving ticks, balance rounds
//!   (through the *shared* `run_balance_round` policy), and audits
//!   purely over RPC, with live sources flowing through a
//!   [`SourceEscrow`].
//!
//! Every tick must agree: outcome signatures, handoff records (tick
//! stamps and all), and — on a cadence — the fleet audit **bit for bit**
//! (objective and violation f64 bit patterns). At the end: same
//! workloads, same placements, same stats.
//!
//! The transport defaults to the deterministic loopback;
//! `KAIROS_NET_TRANSPORT=tcp` reruns the same property over real
//! localhost sockets (CI runs both legs of the matrix), proving the
//! equivalence is a property of the RPC layer, not of the loopback's
//! synchronous dispatch.

use kairos_controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos_net::{BalancerNode, LeaseConfig, ShardNode, SourceEscrow, Transport};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;
use std::sync::Arc;

const SHARDS: usize = 3;
const TENANTS_PER_SHARD: usize = 20;
const TICKS: u64 = 70;

fn config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            // Exercise the scheduled refresh inside the equivalence run.
            profile_refresh_ticks: 8,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 6,
            balance_every: 5,
            max_moves_per_round: 4,
            ..BalancerConfig::default()
        },
        // The reference runs fully serial; the networked fleet is serial
        // by construction (RPC dispatch order = call order).
        tick_threads: 1,
    }
}

struct TenantSpec {
    shard: usize,
    name: String,
    replicas: u32,
    base: f64,
    spike: Option<(u64, f64)>,
}

fn tenant_specs(rng: &mut SplitMix64) -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let base = rng.next_in(150.0, 280.0);
            let spike_tps = rng.next_in(520.0, 640.0);
            let spike_at = 22 + rng.next_range(10);
            // Shard 0 takes a regional flash crowd (its first eight
            // tenants always spike ~3×, blowing past the machine
            // budget) so every seed exercises drift re-solves AND
            // cross-shard handoffs — the equality checks are never
            // vacuous. A sprinkling of other tenants drifts too.
            let spikes = (shard == 0 && i < 8) || rng.next_range(6) == 0;
            specs.push(TenantSpec {
                shard,
                name: format!("s{shard}-t{i}"),
                replicas: if i == 0 { 2 } else { 1 },
                base,
                spike: spikes.then_some((spike_at, spike_tps)),
            });
        }
    }
    specs
}

fn make_source(spec: &TenantSpec) -> SyntheticSource {
    let src = SyntheticSource::new(
        spec.name.clone(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: spec.base },
    );
    match spec.spike {
        Some((at, tps)) => src.then_at(at, RatePattern::Flat { tps }),
        None => src,
    }
}

fn build_reference(specs: &[TenantSpec]) -> FleetController {
    let mut fleet = FleetController::new(config());
    for spec in specs {
        let src = Box::new(make_source(spec));
        if spec.replicas > 1 {
            fleet.add_workload_with_replicas(spec.shard, src, spec.replicas);
        } else {
            fleet.add_workload_to(spec.shard, src);
        }
    }
    for shard in 0..SHARDS {
        fleet.add_anti_affinity(&format!("s{shard}-t1"), &format!("s{shard}-t2"));
    }
    fleet
}

/// The transport under test: loopback by default, TCP when
/// `KAIROS_NET_TRANSPORT=tcp` (the CI matrix runs both).
fn transport() -> Arc<dyn Transport> {
    match std::env::var("KAIROS_NET_TRANSPORT").as_deref() {
        Ok("tcp") => Arc::new(kairos_net::TcpTransport::new()),
        _ => Arc::new(kairos_net::LoopbackTransport::new()),
    }
}

/// Endpoint name per shard: loopback names are symbolic; TCP binds
/// kernel-assigned localhost ports (the serve handle reports them).
fn bind_endpoint(shard: usize) -> String {
    match std::env::var("KAIROS_NET_TRANSPORT").as_deref() {
        Ok("tcp") => "127.0.0.1:0".to_string(),
        _ => format!("shard-{shard}"),
    }
}

fn outcome_sig(o: &TickOutcome) -> String {
    match o {
        TickOutcome::Bootstrapping => "boot".into(),
        TickOutcome::Idle => "idle".into(),
        TickOutcome::Stable => "stable".into(),
        TickOutcome::ProfileRefreshed { refreshed } => format!("refresh:{refreshed}"),
        TickOutcome::InitialPlan { machines, .. } => format!("init:m{machines}"),
        TickOutcome::Replanned(r) => format!(
            "replan:{:?}:feasible={}:moves={}:churn={:016x}:m{}:exec[{},{},{},{:016x},{}]",
            r.reason,
            r.feasible,
            r.moves,
            r.churn.to_bits(),
            r.machines,
            r.execution.steps,
            r.execution.moves,
            r.execution.provisions,
            r.execution.bytes_copied.to_bits(),
            r.execution.forced_steps,
        ),
    }
}

fn audit_bits(audit: &kairos_fleet::FleetAudit) -> Vec<Option<(u64, u64)>> {
    audit
        .per_shard
        .iter()
        .map(|e| {
            e.as_ref()
                .map(|e| (e.objective.to_bits(), e.violation.to_bits()))
        })
        .collect()
}

#[test]
fn rpc_fleet_is_tick_for_tick_identical_to_in_process() {
    let seed_rng = SplitMix64::from_env(0x4E7F_1EE7);
    let specs = tenant_specs(&mut seed_rng.clone());

    let mut reference = build_reference(&specs);

    // --- the networked fleet: nodes, escrow, balancer -------------------
    let transport = transport();
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..SHARDS {
        let node = ShardNode::new(
            config().shard,
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        let handle = node
            .serve(transport.as_ref(), &bind_endpoint(shard))
            .expect("shard node serves");
        nodes.push(node);
        handles.push(handle);
    }
    let endpoints: Vec<String> = handles.iter().map(|h| h.endpoint.clone()).collect();
    let mut balancer = BalancerNode::connect(
        config(),
        LeaseConfig::default(),
        transport.clone(),
        &endpoints,
    )
    .expect("balancer connects");

    // Tenants reach their nodes through the escrow + AddWorkload RPC —
    // the registration crosses the wire, the live source does not.
    for spec in &specs {
        escrow.park(Box::new(make_source(spec)));
        balancer
            .add_workload_to(spec.shard, &spec.name, spec.replicas)
            .expect("registration");
    }
    for shard in 0..SHARDS {
        balancer
            .add_anti_affinity(&format!("s{shard}-t1"), &format!("s{shard}-t2"))
            .expect("anti-affinity registration");
    }
    assert!(escrow.parked().is_empty(), "every source was bound");

    // --- run both, comparing every tick ---------------------------------
    for tick in 0..TICKS {
        let a = reference.tick();
        let b = balancer.tick();
        assert!(b.down.is_empty(), "no shard may miss a lease here");
        let sig_a: Vec<String> = a.outcomes.iter().map(outcome_sig).collect();
        let sig_b: Vec<String> = b
            .outcomes
            .iter()
            .map(|o| outcome_sig(o.as_ref().expect("all shards alive")))
            .collect();
        assert_eq!(sig_a, sig_b, "tick {tick}: outcomes diverged over RPC");
        assert_eq!(
            a.handoffs, b.handoffs,
            "tick {tick}: balance rounds diverged over RPC"
        );
        if tick % 10 == 9 {
            let audit_a = reference.audit();
            let audit_b = balancer.audit();
            assert_eq!(audit_a.machines_used, audit_b.machines_used);
            assert_eq!(
                audit_bits(&audit_a),
                audit_bits(&audit_b),
                "tick {tick}: audits diverged bit-for-bit"
            );
        }
    }

    // The run must have exercised the interesting paths.
    let resolves: u64 = reference.shards().iter().map(|s| s.stats().resolves).sum();
    assert!(resolves > 0, "no shard ever re-solved; drift too weak");
    assert!(
        reference.stats().handoffs_completed > 0,
        "no handoffs; the two-phase RPC handshake went unexercised"
    );

    // --- end state ------------------------------------------------------
    assert_eq!(reference.handoffs(), balancer.handoffs());
    let (sa, sb) = (reference.stats(), balancer.stats());
    assert_eq!(sa.ticks, sb.ticks);
    assert_eq!(sa.balance_rounds, sb.balance_rounds);
    assert_eq!(sa.handoffs_completed, sb.handoffs_completed);
    assert_eq!(sa.handoffs_rejected, sb.handoffs_rejected);
    assert_eq!(sb.handoffs_failed, 0, "clean transport: no failed handoffs");
    for (shard, (ctrl, net_workloads)) in reference
        .shards()
        .iter()
        .zip(balancer.shard_workloads())
        .enumerate()
    {
        let net_workloads = net_workloads.expect("shard alive");
        assert_eq!(ctrl.workloads(), net_workloads, "shard {shard} membership");
        assert_eq!(
            reference.map().tenants_of(shard),
            balancer.map().tenants_of(shard),
            "shard {shard} routing"
        );
    }
    // Placements byte-for-byte, via the node side (the balancer holds no
    // placement state of its own — that is the point).
    for (shard, node) in nodes.iter().enumerate() {
        node.with_shard(|s| {
            assert_eq!(
                s.placement(),
                reference.shards()[shard].placement(),
                "shard {shard} placement"
            );
            let (na, nb) = (s.stats(), reference.shards()[shard].stats());
            assert_eq!(na.ticks, nb.ticks);
            assert_eq!(na.resolves, nb.resolves);
            assert_eq!(na.profile_refreshes, nb.profile_refreshes);
        });
    }

    // Decision traces: the in-process and RPC fleets must have recorded
    // **byte-identical** event streams — the balancer's donor/receiver
    // choices through the shared `run_balance_round` recorder, and each
    // shard's drift/re-solve history (fetched here over the `Trace`
    // RPC). This is the observability face of the equivalence property.
    assert!(
        !reference.trace_events().is_empty(),
        "reference fleet recorded no decisions; trace equality vacuous"
    );
    assert_eq!(
        reference.trace_bytes(),
        balancer.trace_bytes(),
        "fleet decision traces diverged between in-process and RPC"
    );
    for (shard, ctrl) in reference.shards().iter().enumerate() {
        let remote = balancer
            .shard_trace(shard)
            .expect("shard answers the Trace RPC");
        assert!(!remote.is_empty(), "shard {shard} trace crossed empty");
        assert_eq!(
            ctrl.trace_bytes(),
            remote,
            "shard {shard} decision traces diverged between in-process and RPC"
        );
    }

    // The Metrics RPC serves both renderings, and the balancer's own
    // registry carries the fleet counters the stats view mirrors.
    let (json, prometheus) = balancer
        .shard_metrics(0)
        .expect("shard answers the Metrics RPC");
    assert!(json.contains("\"kairos_shard_ticks_total\""));
    assert!(prometheus.contains("kairos_shard_ticks_total"));
    assert!(balancer
        .metrics_prometheus()
        .contains("kairos_fleet_handoffs_completed_total"));
}

/// One faulted run of the equivalence fleet: a skipped balance round, a
/// delayed one, and a checkpoint → kill → restore → rejoin of shard 1
/// mid-run — all transport-agnostic, so the property holds on both the
/// loopback and TCP legs of the CI matrix. Returns the behaviour
/// digest: balancer trace, per-shard traces, final membership.
fn faulted_run(tag: &str) -> (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<String>>) {
    static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "kairos-equiv-chaos-{}-{tag}-{}",
        std::process::id(),
        RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    let seed_rng = SplitMix64::from_env(0x4E7F_1EE7);
    let specs = tenant_specs(&mut seed_rng.clone());
    let transport = transport();
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..SHARDS {
        let node = ShardNode::new(
            config().shard,
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        let handle = node
            .serve(transport.as_ref(), &bind_endpoint(shard))
            .expect("shard node serves");
        nodes.push(node);
        handles.push(handle);
    }
    let endpoints: Vec<String> = handles.iter().map(|h| h.endpoint.clone()).collect();
    let mut balancer = BalancerNode::connect(
        config(),
        LeaseConfig::default(),
        transport.clone(),
        &endpoints,
    )
    .expect("balancer connects");
    for spec in &specs {
        escrow.park(Box::new(make_source(spec)));
        balancer
            .add_workload_to(spec.shard, &spec.name, spec.replicas)
            .expect("registration");
    }

    let mut ckpt: Option<(String, u64, Vec<String>)> = None;
    for tick in 0..TICKS {
        match tick {
            // Post-round quiet spot (rounds run every 5 ticks): the
            // checkpoint and the kill straddle no handoff, so the
            // restored node needs no reconciliation — determinism of
            // the rejoin events is part of what the rerun asserts.
            26 => {
                let dir_str = dir.to_string_lossy().to_string();
                let results = balancer.checkpoint_shards(&dir_str);
                let path = results[1].as_ref().expect("shard 1 checkpoints").clone();
                let at = nodes[1].with_shard(|s| s.stats().ticks);
                let names = balancer.map().tenants_of(1);
                ckpt = Some((path, at, names));
            }
            28 => {
                // Kill shard 1 and bring it back from the checkpoint in
                // the same breath — no lease arithmetic involved, which
                // is what keeps this leg TCP-safe (an established TCP
                // conn keeps draining after stop(); the rejoin swaps
                // the link to the new endpoint either way).
                let (path, at, names) = ckpt.clone().expect("checkpointed at tick 26");
                handles.remove(1).stop();
                for name in &names {
                    let spec = specs
                        .iter()
                        .find(|s| &s.name == name)
                        .expect("known tenant");
                    escrow.park(Box::new(make_source(spec).fast_forward(at)));
                }
                let restored = ShardNode::restore_from(
                    config().shard,
                    kairos_core::ConsolidationEngine::builder().build(),
                    std::path::Path::new(&path),
                    Box::new(escrow.clone()),
                )
                .expect("checkpoint restores");
                let handle = restored
                    .serve(transport.as_ref(), &bind_endpoint(1))
                    .expect("restored shard serves");
                let endpoint = handle.endpoint.clone();
                nodes[1] = restored;
                handles.insert(1, handle);
                balancer.rejoin(1, &endpoint).expect("rejoins");
            }
            30 => balancer.skip_balance_rounds(1),
            40 => balancer.delay_balance_rounds(1),
            _ => {}
        }
        let report = balancer.tick();
        assert!(report.down.is_empty(), "tick {tick}: no lease may expire");
    }

    // Ownership conservation after the faulted run: every tenant owned
    // exactly once, the map agrees with shard ground truth, the lot is
    // empty, and audits converge.
    let mut seen = std::collections::BTreeSet::new();
    let mut membership = Vec::new();
    for (shard, names) in balancer.shard_workloads().into_iter().enumerate() {
        let names = names.expect("shard alive");
        for name in &names {
            assert!(seen.insert(name.clone()), "{name} owned twice");
            assert_eq!(
                balancer.map().shard_of(name),
                Some(shard),
                "map must agree with shard ground truth for {name}"
            );
        }
        membership.push(names);
    }
    assert_eq!(
        seen.len(),
        SHARDS * TENANTS_PER_SHARD,
        "nobody lost, nobody doubled across skip/delay/kill/restore"
    );
    assert!(
        balancer.parked_handoffs().is_empty(),
        "no handoff may stay parked after a clean-transport run"
    );
    let audit = balancer.audit();
    assert!(audit.complete(), "every shard audits after the rejoin");
    assert!(audit.zero_violations());

    let fleet_trace = balancer.trace_bytes();
    let shard_traces: Vec<Vec<u8>> = (0..SHARDS)
        .map(|s| balancer.shard_trace(s).expect("shard answers Trace RPC"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    (fleet_trace, shard_traces, membership)
}

#[test]
fn faulted_run_conserves_ownership_and_reruns_byte_identical() {
    let first = faulted_run("a");
    let second = faulted_run("b");
    assert_eq!(
        first.0, second.0,
        "fleet decision traces diverged between reruns of the same faulted schedule"
    );
    for (shard, (a, b)) in first.1.iter().zip(&second.1).enumerate() {
        assert_eq!(
            a, b,
            "shard {shard} decision traces diverged between reruns"
        );
    }
    assert_eq!(
        first.2, second.2,
        "final membership diverged between reruns"
    );
}

/// The spans-enabled leg of the equivalence property (observability
/// tentpole): with causal span tracing armed on both fleets, the span
/// logs — balancer roots, handoff children, shard-side evict/admit
/// spans chained through the frame's span section — must be
/// **record-identical** between the in-process reference and the RPC
/// fleet, on loopback and TCP alike (`KAIROS_NET_TRANSPORT=tcp`).
#[test]
fn spans_enabled_fleet_records_identical_trees_over_rpc() {
    let seed_rng = SplitMix64::from_env(0x4E7F_1EE7);
    let specs = tenant_specs(&mut seed_rng.clone());

    let mut reference = build_reference(&specs);
    reference.set_span_tracing(true);

    let transport = transport();
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..SHARDS {
        let node = ShardNode::new(
            config().shard,
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        node.with_shard(|s| s.configure_spans(kairos_obs::span::node_for_shard(shard), true));
        let handle = node
            .serve(transport.as_ref(), &bind_endpoint(shard))
            .expect("shard node serves");
        nodes.push(node);
        handles.push(handle);
    }
    let endpoints: Vec<String> = handles.iter().map(|h| h.endpoint.clone()).collect();
    let mut balancer = BalancerNode::connect(
        config(),
        LeaseConfig::default(),
        transport.clone(),
        &endpoints,
    )
    .expect("balancer connects");
    balancer.set_span_tracing(true);
    for spec in &specs {
        escrow.park(Box::new(make_source(spec)));
        balancer
            .add_workload_to(spec.shard, &spec.name, spec.replicas)
            .expect("registration");
    }
    for shard in 0..SHARDS {
        balancer
            .add_anti_affinity(&format!("s{shard}-t1"), &format!("s{shard}-t2"))
            .expect("anti-affinity registration");
    }

    for _ in 0..TICKS {
        reference.tick();
        let report = balancer.tick();
        assert!(report.down.is_empty());
    }
    assert!(
        reference.stats().handoffs_completed > 0,
        "no handoffs; span chaining across the wire went unexercised"
    );

    // Balancer-side spans byte-identical; each shard's span log fetched
    // over the Spans RPC matches the reference shard's bytes exactly.
    assert!(
        !reference.span_log().is_empty(),
        "armed reference recorded no spans; equality vacuous"
    );
    assert_eq!(
        reference.span_log().span_bytes(),
        balancer.span_bytes(),
        "balancer span logs diverged between in-process and RPC"
    );
    for (shard, ctrl) in reference.shards().iter().enumerate() {
        let remote = balancer
            .shard_spans(shard)
            .expect("shard answers the Spans RPC");
        assert_eq!(
            ctrl.span_bytes(),
            remote,
            "shard {shard} span logs diverged between in-process and RPC"
        );
    }

    // And the handoff trace reconstructs as trees: every handoff span
    // hangs off a balance_round root, with its shard-side evict/admit
    // children chained through the frame's span section.
    let mut all = balancer.span_log().to_vec();
    for shard in 0..SHARDS {
        let bytes = balancer.shard_spans(shard).expect("alive");
        let records: Vec<kairos_obs::SpanRecord> = serde::from_bytes(&bytes).expect("decodes");
        all.extend(records);
    }
    let trees = kairos_obs::assemble_trees(&all);
    assert!(trees.iter().all(|t| t.span.name == "balance_round"));
    let cross_node = trees.iter().flat_map(|t| &t.children).find(|h| {
        h.span.name == "handoff"
            && h.children
                .iter()
                .any(|c| c.span.name == "evict" || c.span.name == "admit")
    });
    assert!(
        cross_node.is_some(),
        "no handoff span carried shard-side children across the transport"
    );
}

/// Wire-compat guard: a frame encoded without a span context is
/// **byte-identical** to the pre-span layout — magic, version word
/// (span flag clear), payload length, payload, CRC — so span-unaware
/// peers and recorded PR-8 traffic decode unchanged, and span frames
/// differ only by the flag bit plus the 28-byte span section.
#[test]
fn spanless_frames_keep_the_pre_span_wire_layout() {
    let request = kairos_net::Request::Owns {
        tenant: "t-wire".to_string(),
    };
    let bytes = kairos_net::frame::encode_frame(&request);
    let payload = serde::to_bytes(&request);

    // Hand-assemble the PR-8 layout.
    let mut expected = Vec::new();
    expected.extend_from_slice(&kairos_net::NET_MAGIC);
    expected.extend_from_slice(&kairos_net::RPC_WIRE_VERSION.to_le_bytes());
    expected.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    expected.extend_from_slice(&payload);
    let crc = kairos_store::crc32(&expected);
    expected.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(bytes, expected, "spanless frame layout drifted");

    // With a span context attached the version word gains only the
    // flag bit and the 28-byte section slots between header and
    // payload; everything else is unchanged.
    let ctx = kairos_obs::SpanContext {
        trace_id: 7,
        span_id: 9,
        origin: 3,
        tick: 41,
    };
    let spanned = kairos_net::frame::encode_frame_with_span(&request, Some(ctx));
    assert_eq!(
        spanned.len(),
        bytes.len() + kairos_net::frame::SPAN_SECTION_LEN
    );
    let version = u32::from_le_bytes(spanned[4..8].try_into().unwrap());
    assert_eq!(
        version & !kairos_net::frame::SPAN_FLAG,
        kairos_net::RPC_WIRE_VERSION
    );
    assert_ne!(version & kairos_net::frame::SPAN_FLAG, 0);
    // Span-tolerant decode of both; the plain frame also decodes with
    // the pre-span decoder.
    let (back, none) =
        kairos_net::frame::decode_frame_with_span::<kairos_net::Request>(&bytes).expect("decodes");
    assert_eq!(format!("{back:?}"), format!("{request:?}"));
    assert!(none.is_none());
    let (back, some) = kairos_net::frame::decode_frame_with_span::<kairos_net::Request>(&spanned)
        .expect("decodes");
    assert_eq!(format!("{back:?}"), format!("{request:?}"));
    assert_eq!(some, Some(ctx));
}
