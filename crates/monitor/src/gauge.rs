//! Buffer-pool gauging (§3.1, Fig 3).
//!
//! The DBMS fills all the memory it is given, so OS metrics cannot reveal
//! how much it actually *needs*. Gauging measures the working set from the
//! outside, with plain SQL:
//!
//! 1. create a probe table whose rows each fill exactly one page;
//! 2. grow it step by step, scanning it between inserts so the buffer
//!    manager keeps probe pages resident ("stealing" pool space);
//! 3. watch the physical-read rate: the moment stolen space pushes *useful*
//!    pages out, the user workload re-reads them from disk and the rate
//!    rises — the remaining pool size at that point is the working set.
//!
//! The growth rate adapts exactly as §3.1 describes: accelerate while
//! reads stay flat, back off on "even a small increase in the average
//! number of physical reads per second over a short time window (the
//! default in our tests is 10 seconds)".

use kairos_dbsim::{DatabaseId, Host, TableId};
use kairos_types::Bytes;
use kairos_workloads::Driver;

/// Tuning for the gauging procedure.
#[derive(Debug, Clone, Copy)]
pub struct GaugeParams {
    /// Probe growth per round, in pages, before adaptation.
    pub initial_step_pages: u64,
    /// Adaptive bounds on the growth step.
    pub min_step_pages: u64,
    pub max_step_pages: u64,
    /// `SCANS_PER_INSERT` from Fig 3.
    pub scans_per_insert: u32,
    /// `READ_WAIT_SECONDS` from Fig 3 (1–10 s per §3.1).
    pub read_wait_secs: f64,
    /// Averaging window for the baseline read rate (default 10 s).
    pub window_secs: f64,
    /// Read-rate increase (pages/s) over baseline that counts as "a small
    /// increase".
    pub increase_threshold: f64,
    /// Consecutive hot rounds required before stopping.
    pub confirm_rounds: u32,
    /// Absolute safety stop as a fraction of total gaugeable memory.
    pub max_steal_fraction: f64,
}

impl Default for GaugeParams {
    fn default() -> GaugeParams {
        GaugeParams {
            initial_step_pages: 64,
            min_step_pages: 8,
            max_step_pages: 2048,
            scans_per_insert: 2,
            read_wait_secs: 2.0,
            window_secs: 10.0,
            increase_threshold: 6.0,
            confirm_rounds: 3,
            max_steal_fraction: 0.95,
        }
    }
}

/// One growth round's observation — a point on the Fig 2 curve.
#[derive(Debug, Clone, Copy)]
pub struct GaugeStep {
    /// Probe size after this round, bytes.
    pub stolen_bytes: f64,
    /// Stolen fraction of gaugeable memory.
    pub stolen_fraction: f64,
    /// Observed physical reads/second during this round.
    pub reads_per_sec: f64,
}

/// Result of a gauging run.
#[derive(Debug, Clone)]
pub struct GaugeOutcome {
    /// Estimated working set: gaugeable memory minus safely-stolen bytes.
    pub working_set: Bytes,
    /// Bytes stolen without disturbing the workload.
    pub safely_stolen: Bytes,
    /// Per-round trace (drives Fig 2).
    pub steps: Vec<GaugeStep>,
    /// Simulated wall time the gauging took.
    pub duration_secs: f64,
}

impl GaugeOutcome {
    /// Average probe growth rate in bytes/second (§7.5 reports 136 KB/s
    /// under saturation up to 6.4 MB/s on an idle 16 GB pool).
    pub fn growth_bytes_per_sec(&self) -> f64 {
        if self.duration_secs == 0.0 {
            0.0
        } else {
            self.steps.last().map(|s| s.stolen_bytes).unwrap_or(0.0) / self.duration_secs
        }
    }
}

/// What gauging needs from the system under test. The production
/// implementation is [`SimGaugeEnv`]; unit tests use an analytic mock.
pub trait GaugeEnv {
    /// Let the system (user workload + DBMS background work) run.
    fn advance(&mut self, secs: f64);
    /// Append `pages` one-page rows to the probe table.
    fn probe_append_pages(&mut self, pages: u64);
    /// Scan the whole probe table (keeps it resident).
    fn probe_scan(&mut self);
    /// Cumulative physical page reads of the monitored instance.
    fn physical_reads_pages(&self) -> f64;
    /// Memory gaugeable by the probe: buffer pool (+ OS cache if used).
    fn memory_capacity_bytes(&self) -> f64;
    fn page_bytes(&self) -> f64;
    /// Simulated clock.
    fn now_secs(&self) -> f64;
}

/// The gauging algorithm.
#[derive(Debug, Clone, Default)]
pub struct BufferGauge {
    pub params: GaugeParams,
}

impl BufferGauge {
    pub fn new(params: GaugeParams) -> BufferGauge {
        BufferGauge { params }
    }

    /// Measure the read rate over one observation round: scan the probe
    /// `scans_per_insert` times with `read_wait_secs` of user workload in
    /// between, then average physical reads over the elapsed time.
    fn observe_round(&self, env: &mut dyn GaugeEnv) -> f64 {
        let p = &self.params;
        let reads0 = env.physical_reads_pages();
        let t0 = env.now_secs();
        for _ in 0..p.scans_per_insert.max(1) {
            env.probe_scan();
            env.advance(p.read_wait_secs);
        }
        let dt = (env.now_secs() - t0).max(1e-9);
        (env.physical_reads_pages() - reads0) / dt
    }

    /// Run adaptive gauging to completion.
    pub fn run(&self, env: &mut dyn GaugeEnv) -> GaugeOutcome {
        let p = self.params;
        let capacity = env.memory_capacity_bytes();
        let page = env.page_bytes();
        let start = env.now_secs();

        // Baseline read rate before stealing anything.
        let mut baseline = {
            let reads0 = env.physical_reads_pages();
            let t0 = env.now_secs();
            env.advance(p.window_secs);
            (env.physical_reads_pages() - reads0) / (env.now_secs() - t0).max(1e-9)
        };

        let mut stolen_pages: u64 = 0;
        let mut step = p.initial_step_pages.max(1);
        let mut hot_rounds = 0u32;
        let mut safe_stolen_pages: u64 = 0;
        let mut steps = Vec::new();

        loop {
            if (stolen_pages + step) as f64 * page > capacity * p.max_steal_fraction {
                break;
            }
            env.probe_append_pages(step);
            stolen_pages += step;
            let rate = self.observe_round(env);
            steps.push(GaugeStep {
                stolen_bytes: stolen_pages as f64 * page,
                stolen_fraction: stolen_pages as f64 * page / capacity,
                reads_per_sec: rate,
            });

            if rate - baseline > p.increase_threshold {
                // "slowing down when we see even a small increase"
                hot_rounds += 1;
                step = (step / 2).max(p.min_step_pages);
                if hot_rounds >= p.confirm_rounds {
                    break;
                }
            } else {
                if hot_rounds == 0 {
                    safe_stolen_pages = stolen_pages;
                } else {
                    // A cold round after heat: treat heat as noise.
                    safe_stolen_pages = stolen_pages;
                    hot_rounds = 0;
                }
                // Track slow baseline drift, then accelerate.
                baseline = 0.8 * baseline + 0.2 * rate;
                step = (step * 3 / 2).min(p.max_step_pages);
            }
        }

        let safely_stolen = Bytes((safe_stolen_pages as f64 * page) as u64);
        let working_set = Bytes((capacity - safely_stolen.as_f64()).max(0.0) as u64);
        GaugeOutcome {
            working_set,
            safely_stolen,
            steps,
            duration_secs: env.now_secs() - start,
        }
    }

    /// Non-adaptive sweep for the Fig 2 curve: grow the probe in fixed
    /// steps up to `max_fraction` of memory, recording the read rate at
    /// every point, with no early stop.
    pub fn trace(
        &self,
        env: &mut dyn GaugeEnv,
        step_pages: u64,
        max_fraction: f64,
    ) -> Vec<GaugeStep> {
        let capacity = env.memory_capacity_bytes();
        let page = env.page_bytes();
        // Settle baseline.
        env.advance(self.params.window_secs);
        let mut stolen_pages: u64 = 0;
        let mut steps = Vec::new();
        while (stolen_pages + step_pages) as f64 * page <= capacity * max_fraction {
            env.probe_append_pages(step_pages);
            stolen_pages += step_pages;
            let rate = self.observe_round(env);
            steps.push(GaugeStep {
                stolen_bytes: stolen_pages as f64 * page,
                stolen_fraction: stolen_pages as f64 * page / capacity,
                reads_per_sec: rate,
            });
        }
        steps
    }
}

/// [`GaugeEnv`] over the simulator: a host + driver with user workloads
/// bound, gauging instance `instance`'s database `db`.
pub struct SimGaugeEnv<'a> {
    host: &'a mut Host,
    driver: &'a mut Driver,
    instance: usize,
    db: DatabaseId,
    probe: Option<TableId>,
}

impl<'a> SimGaugeEnv<'a> {
    pub fn new(
        host: &'a mut Host,
        driver: &'a mut Driver,
        instance: usize,
        db: DatabaseId,
    ) -> SimGaugeEnv<'a> {
        SimGaugeEnv {
            host,
            driver,
            instance,
            db,
            probe: None,
        }
    }

    fn probe_table(&mut self) -> TableId {
        let inst = self.host.instance_mut(self.instance);
        let page = inst.page_size().0;
        match self.probe {
            Some(t) => t,
            None => {
                let t = inst
                    .create_table(self.db, 0, page)
                    .expect("probe database exists");
                self.probe = Some(t);
                t
            }
        }
    }
}

impl GaugeEnv for SimGaugeEnv<'_> {
    fn advance(&mut self, secs: f64) {
        self.driver.warmup(self.host, secs);
    }

    fn probe_append_pages(&mut self, pages: u64) {
        let t = self.probe_table();
        self.host
            .instance_mut(self.instance)
            .append_rows(t, pages as f64);
    }

    fn probe_scan(&mut self) {
        if let Some(t) = self.probe {
            let rows = self.host.instance(self.instance).table_rows(t);
            self.host.instance_mut(self.instance).scan_count(t, rows);
        }
    }

    fn physical_reads_pages(&self) -> f64 {
        self.host
            .instance(self.instance)
            .stats()
            .physical_read_pages
    }

    fn memory_capacity_bytes(&self) -> f64 {
        let cfg = self.host.instance(self.instance).config();
        (cfg.buffer_pool + cfg.os_cache).as_f64()
    }

    fn page_bytes(&self) -> f64 {
        self.host.instance(self.instance).page_size().as_f64()
    }

    fn now_secs(&self) -> f64 {
        self.driver.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic environment: reads stay at `noise` until the probe exceeds
    /// `capacity - working_set`, then rise linearly with the overflow.
    struct MockEnv {
        capacity_pages: u64,
        ws_pages: u64,
        page: f64,
        probe_pages: u64,
        reads: f64,
        now: f64,
        noise: f64,
    }

    impl MockEnv {
        fn new(capacity_pages: u64, ws_pages: u64) -> MockEnv {
            MockEnv {
                capacity_pages,
                ws_pages,
                page: 16384.0,
                probe_pages: 0,
                reads: 0.0,
                now: 0.0,
                noise: 1.0,
            }
        }

        fn read_rate(&self) -> f64 {
            let free = self.capacity_pages.saturating_sub(self.ws_pages);
            if self.probe_pages <= free {
                self.noise
            } else {
                let overflow = (self.probe_pages - free) as f64;
                self.noise + 2.0 * overflow
            }
        }
    }

    impl GaugeEnv for MockEnv {
        fn advance(&mut self, secs: f64) {
            self.reads += self.read_rate() * secs;
            self.now += secs;
        }
        fn probe_append_pages(&mut self, pages: u64) {
            self.probe_pages += pages;
        }
        fn probe_scan(&mut self) {}
        fn physical_reads_pages(&self) -> f64 {
            self.reads
        }
        fn memory_capacity_bytes(&self) -> f64 {
            self.capacity_pages as f64 * self.page
        }
        fn page_bytes(&self) -> f64 {
            self.page
        }
        fn now_secs(&self) -> f64 {
            self.now
        }
    }

    #[test]
    fn gauging_finds_working_set_within_tolerance() {
        // 60k-page pool (~1 GB), 40k-page working set: 33% stealable.
        let mut env = MockEnv::new(60_000, 40_000);
        let outcome = BufferGauge::default().run(&mut env);
        let est_pages = outcome.working_set.as_f64() / env.page;
        let err = (est_pages - 40_000.0).abs() / 40_000.0;
        assert!(err < 0.10, "estimate {est_pages} vs 40000 (err {err:.3})");
    }

    #[test]
    fn gauging_is_conservative_never_underestimates_badly() {
        let mut env = MockEnv::new(30_000, 10_000);
        let outcome = BufferGauge::default().run(&mut env);
        let est_pages = outcome.working_set.as_f64() / env.page;
        // Working set estimate must cover the true working set.
        assert!(est_pages >= 10_000.0 * 0.95, "estimate {est_pages}");
    }

    #[test]
    fn fully_used_pool_steals_nothing() {
        // Working set == capacity: the very first probe step must heat up.
        let mut env = MockEnv::new(10_000, 10_000);
        let outcome = BufferGauge::default().run(&mut env);
        assert!(
            outcome.safely_stolen.as_f64() / env.memory_capacity_bytes() < 0.05,
            "stole {}",
            outcome.safely_stolen
        );
    }

    #[test]
    fn mostly_idle_pool_steals_a_lot() {
        // Tiny working set: nearly everything is stealable.
        let mut env = MockEnv::new(50_000, 5_000);
        let outcome = BufferGauge::default().run(&mut env);
        let stolen_frac = outcome.safely_stolen.as_f64() / env.memory_capacity_bytes();
        assert!(stolen_frac > 0.75, "stolen fraction {stolen_frac}");
    }

    #[test]
    fn steps_record_monotone_steal() {
        let mut env = MockEnv::new(20_000, 10_000);
        let outcome = BufferGauge::default().run(&mut env);
        assert!(!outcome.steps.is_empty());
        for w in outcome.steps.windows(2) {
            assert!(w[1].stolen_bytes > w[0].stolen_bytes);
        }
        assert!(outcome.duration_secs > 0.0);
        assert!(outcome.growth_bytes_per_sec() > 0.0);
    }

    #[test]
    fn trace_covers_requested_range() {
        let mut env = MockEnv::new(20_000, 12_000);
        let steps = BufferGauge::default().trace(&mut env, 500, 0.5);
        let last = steps.last().unwrap();
        assert!(last.stolen_fraction > 0.45 && last.stolen_fraction <= 0.5);
        // Reads flat below the knee, elevated past it (knee at 40%).
        let early = &steps[2];
        assert!(early.reads_per_sec < 5.0);
        assert!(last.reads_per_sec > 100.0);
    }

    #[test]
    fn adaptive_step_accelerates_when_cold() {
        // Huge idle pool: the step should hit max quickly, keeping the
        // round count modest.
        let mut env = MockEnv::new(1_000_000, 10_000);
        let gauge = BufferGauge::default();
        let outcome = gauge.run(&mut env);
        let rounds = outcome.steps.len();
        // Without acceleration this would take ~15000 rounds at 64 pages.
        assert!(rounds < 800, "took {rounds} rounds");
    }
}
