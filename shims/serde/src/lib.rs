//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim satisfies the `serde::Serialize` / `serde::Deserialize` derive
//! annotations scattered through the data types. The traits are markers and
//! the derives expand to empty impls: nothing in the workspace serializes
//! through serde today (report JSON is hand-rendered). Swapping in the real
//! serde later is a one-line Cargo change; the annotations are already
//! correct.

pub use serde_derive_shim::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: no code in
/// this workspace names the `'de` parameter).
pub trait Deserialize {}
