//! # kairos-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). Each binary prints the same rows/series the
//! paper reports, so EXPERIMENTS.md can record paper-vs-measured shape
//! comparisons. Run e.g.:
//!
//! ```text
//! cargo run --release -p kairos-bench --bin fig07_ratios
//! KAIROS_QUICK=1 cargo run --release -p kairos-bench --bin fig04_disk_profile
//! ```
//!
//! `KAIROS_QUICK=1` shrinks grids/horizons for smoke runs.

use kairos_core::{ConsolidationEngine, EngineBuilder};
use kairos_diskmodel::{run_profiler, DiskModel, ProfilerConfig};
use kairos_traces::{generate_fleet, Dataset, FleetConfig, ServerTrace};
use kairos_types::{Bytes, WorkloadProfile};

/// Whether to run in quick (smoke) mode.
pub fn quick() -> bool {
    std::env::var("KAIROS_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format bytes/s as MB/s.
pub fn mbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1e6)
}

/// The §6 RAM scaling factor for un-gaugeable historical statistics.
pub const RAM_SCALE: f64 = 0.7;

/// Fleet profiles for a dataset over the last 24 h (Fig 7–9 input).
pub fn dataset_profiles(dataset: Dataset, seed: u64) -> Vec<WorkloadProfile> {
    let cfg = FleetConfig {
        weeks: 1,
        seed,
        ..Default::default()
    };
    let fleet = generate_fleet(dataset, &cfg);
    last_day_profiles(&fleet)
}

/// Convert traces to profiles restricted to their final day.
pub fn last_day_profiles(fleet: &[ServerTrace]) -> Vec<WorkloadProfile> {
    fleet
        .iter()
        .map(|s| {
            let p = s.to_profile(RAM_SCALE);
            let day = (86_400.0 / p.interval_secs()) as usize;
            let take_last = |series: &kairos_types::TimeSeries| {
                let v = series.values();
                let start = v.len().saturating_sub(day);
                kairos_types::TimeSeries::new(series.interval_secs(), v[start..].to_vec())
            };
            WorkloadProfile::new(
                p.name.clone(),
                take_last(&p.cpu_cores),
                take_last(&p.ram_bytes),
                take_last(&p.disk_working_set_bytes),
                take_last(&p.disk_update_rows_per_sec),
            )
        })
        .collect()
}

/// Fit a disk model suitable for the controlled experiments (working sets
/// up to ~13 GB, the Table 1 co-location range).
pub fn fit_wide_disk_model() -> DiskModel {
    let cfg = if quick() {
        ProfilerConfig {
            ws_points: vec![Bytes::gib(2), Bytes::gib(6), Bytes::gib(13)],
            rate_points: vec![2_000.0, 6_000.0, 12_000.0],
            buffer_pool: Bytes::gib(16),
            settle_secs: 30.0,
            measure_secs: 10.0,
            ..ProfilerConfig::paper_like()
        }
    } else {
        ProfilerConfig {
            ws_points: (1..=6)
                .map(|i| Bytes::gib(i * 2) + Bytes::mib(256))
                .collect(),
            rate_points: (1..=8).map(|i| i as f64 * 1_800.0).collect(),
            buffer_pool: Bytes::gib(16),
            settle_secs: 60.0,
            measure_secs: 20.0,
            ..ProfilerConfig::paper_like()
        }
    };
    let profile = run_profiler(&cfg);
    DiskModel::fit(&profile).expect("wide profile fits")
}

/// Engine wired the way the real-world experiments use it.
pub fn fleet_engine() -> ConsolidationEngine {
    EngineBuilder::default().headroom(0.95).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn dataset_profiles_cover_one_day() {
        let profiles = dataset_profiles(Dataset::Internal, 1);
        assert_eq!(profiles.len(), 25);
        assert_eq!(profiles[0].windows(), 288);
    }

    #[test]
    fn mbps_formats() {
        assert_eq!(mbps(12_500_000.0), "12.50");
    }
}
