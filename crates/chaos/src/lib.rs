//! # kairos-chaos — the deterministic chaos harness
//!
//! Fault injection for the fleet control plane, done as *data*: a
//! [`Schedule`] says what breaks when (partitions, crashes with
//! checkpoint restores, corrupted Admit/Evict/Owns frames, dropped
//! calls, skipped or delayed balance rounds), and a driver interprets
//! it against a full RPC fleet over the seeded fault-injecting
//! transport decorator — loopback-backed by default, real TCP sockets
//! with `KAIROS_CHAOS_TRANSPORT=tcp` — while asserting the invariant
//! suite after every tick:
//!
//! * **no tenant lost or duplicated** — ownership conservation across
//!   the routing map and every live shard's ground truth, continuously
//!   and exactly at end of run;
//! * **parked handoffs eventually drain** — once faults heal, the
//!   retry lot empties;
//! * **audits converge** — complete, zero capacity violations, within
//!   the machine budget after the settle phase;
//! * **determinism** — the same schedule reruns to a byte-identical
//!   decision-trace fingerprint (the [`driver::RunOutcome::fingerprint`]
//!   oracle).
//!
//! Schedules come from a seed sweep ([`schedule::generate`], SplitMix64
//! over `KAIROS_CHAOS_SEED + i`) with structural constraints that keep
//! every generated run recoverable by construction. A failing schedule
//! is [`schedule::shrink`]-ed to a 1-minimal reproduction and printed
//! with its decision-trace why-chain — the `chaos_sweep` binary is the
//! CI face of all of this.

pub mod driver;
pub mod schedule;

pub use driver::{run, run_on, ChaosBackend, ChaosConfig, RunOutcome, RunReport, Violation};
pub use schedule::{generate, shrink, ChaosFault, GeneratorBounds, Schedule, ScheduledFault};
