//! Coherence of the structure-of-arrays slot-series cache.
//!
//! The solver hot path evaluates through [`SlotSeries`] — per-slot
//! series flattened once per problem — instead of re-deriving demands
//! from the workload specs on every call. These property tests pin the
//! cache to the ground truth:
//!
//! * on randomized problems (replicas, anti-affinity, migration
//!   baselines), `evaluate` (cached) must equal `evaluate_reference`
//!   (cache-free) **bit-for-bit**, including after warm re-solves whose
//!   problems carry migration terms;
//! * fault injection: corrupting any cached series must be caught by
//!   [`SlotSeries::coherent_with`], and a corrupted cache fed through
//!   `evaluate_with_series` must actually change the objective (i.e. the
//!   check guards something real).
//!
//! Cases are generated from a seeded [`SplitMix64`] stream
//! ([`SplitMix64::from_env`]; CI sweeps `KAIROS_TEST_SEED`).

use kairos_solver::{
    evaluate, evaluate_reference, evaluate_with_series, solve_warm, Assignment,
    ConsolidationProblem, LinearDiskCombiner, SlotSeries, SolverConfig, TargetMachine,
    WorkloadSpec,
};
use kairos_types::SplitMix64;
use std::sync::Arc;

/// A random problem: 2–9 workloads, 1–6 windows of varying (per-window)
/// load, occasional replicas and one anti-affinity pair.
fn random_problem(rng: &mut SplitMix64) -> ConsolidationProblem {
    let n = 2 + rng.next_range(8) as usize;
    let windows = 1 + rng.next_range(6) as usize;
    let workloads: Vec<WorkloadSpec> = (0..n)
        .map(|i| {
            let mut w = WorkloadSpec::flat(format!("w{i}"), windows, 0.0, 0.0, 0.0, 0.0);
            w.cpu = (0..windows).map(|_| rng.next_in(0.1, 5.0)).collect();
            w.ram = (0..windows).map(|_| rng.next_in(1e9, 24e9)).collect();
            w.ws = w.ram.iter().map(|r| r * 0.3).collect();
            w.rate = (0..windows).map(|_| rng.next_in(10.0, 1_500.0)).collect();
            if rng.next_range(5) == 0 {
                w.replicas = 2;
            }
            w
        })
        .collect();
    let mut p = ConsolidationProblem::new(
        workloads,
        TargetMachine::paper_target(),
        n + 2,
        Arc::new(LinearDiskCombiner::default()),
    );
    if rng.next_range(2) == 0 {
        p = p.with_anti_affinity(vec![(0, 1)]);
    }
    p
}

fn random_assignment(rng: &mut SplitMix64, problem: &ConsolidationProblem) -> Assignment {
    let slots = problem.slots().len();
    Assignment::new(
        (0..slots)
            .map(|_| rng.next_range(problem.max_machines as u64) as usize)
            .collect(),
    )
}

fn assert_bit_identical(p: &ConsolidationProblem, a: &Assignment, case: usize) {
    let cached = evaluate(p, a);
    let reference = evaluate_reference(p, a);
    assert_eq!(
        cached.objective.to_bits(),
        reference.objective.to_bits(),
        "case {case}: objective diverged: cached {} vs reference {}",
        cached.objective,
        reference.objective
    );
    assert_eq!(cached.violation.to_bits(), reference.violation.to_bits());
    assert_eq!(cached.feasible, reference.feasible);
    assert_eq!(cached.machines_used, reference.machines_used);
    assert_eq!(cached.moves_from_baseline, reference.moves_from_baseline);
    assert_eq!(cached.loads, reference.loads, "case {case}: load series");
}

#[test]
fn cached_evaluate_matches_reference_on_random_problems() {
    let mut rng = SplitMix64::from_env(0xCAC4E);
    for case in 0..40 {
        let p = random_problem(&mut rng);
        for _ in 0..4 {
            let a = random_assignment(&mut rng, &p);
            assert_bit_identical(&p, &a, case);
        }
    }
}

#[test]
fn cache_stays_coherent_across_warm_resolves() {
    // After any warm re-solve — whose problem carries a migration
    // baseline and whose caches have been exercised by DIRECT + polish —
    // a cached evaluation of the returned plan must equal the
    // from-scratch one bit-for-bit, and the cache must still verify.
    let mut rng = SplitMix64::from_env(0x5EED_CAFE);
    let cfg = SolverConfig {
        probe_evals: 200,
        final_evals: 600,
        polish_rounds: 20,
        ..Default::default()
    };
    for case in 0..8 {
        let base = random_problem(&mut rng);
        let start = random_assignment(&mut rng, &base);
        let baseline = start.machine_of.iter().map(|&m| Some(m)).collect();
        let warm_p = base.clone().with_migration(baseline, 0.25);
        let Ok(report) = solve_warm(&warm_p, &cfg, &start) else {
            continue; // some random fleets are simply unplaceable
        };
        assert_bit_identical(&warm_p, &report.assignment, case);
        assert!(
            warm_p.slot_series().coherent_with(&warm_p),
            "case {case}: cache incoherent after warm re-solve"
        );
        // Random post-solve evaluations reuse the same cache.
        for _ in 0..3 {
            let a = random_assignment(&mut rng, &warm_p);
            assert_bit_identical(&warm_p, &a, case);
        }
    }
}

#[test]
fn corrupted_cache_is_caught() {
    let mut rng = SplitMix64::from_env(0xBADCAC4E);
    for case in 0..20 {
        let p = random_problem(&mut rng);
        let good = p.slot_series();
        assert!(good.coherent_with(&p), "fresh cache must verify");

        // Fault injection: corrupt one cached value in one random series.
        // The working-set series only feeds the (non-linear) disk
        // combiner — the linear test combiner ignores it — so the
        // objective-divergence check below corrupts cpu/ram/rate; ws
        // corruption is still exercised against the coherence check.
        let mut ws_bad: SlotSeries = good.as_ref().clone();
        let ws_idx = rng.next_range(ws_bad.ws.len() as u64) as usize;
        ws_bad.ws[ws_idx] += 1e9;
        assert!(
            !ws_bad.coherent_with(&p),
            "case {case}: ws corruption must fail the coherence check"
        );

        let mut bad: SlotSeries = good.as_ref().clone();
        let idx = rng.next_range(bad.cpu.len() as u64) as usize;
        let bump = 1.0 + rng.next_in(0.5, 2.0);
        match rng.next_range(3) {
            0 => bad.cpu[idx] += bump,
            1 => bad.ram[idx] += bump * 1e9,
            _ => bad.rate[idx] += bump * 100.0,
        }
        assert!(
            !bad.coherent_with(&p),
            "case {case}: corruption must fail the coherence check"
        );

        // The corruption is load-bearing: evaluating through the
        // corrupted cache diverges from the reference on an assignment
        // that uses the corrupted slot.
        let a = random_assignment(&mut rng, &p);
        let corrupted = evaluate_with_series(&p, &bad, &a);
        let reference = evaluate_reference(&p, &a);
        assert_ne!(
            corrupted.objective.to_bits(),
            reference.objective.to_bits(),
            "case {case}: corrupted cache evaluated identically — check is vacuous"
        );
    }
}
