//! The incremental re-solver: drift fired, produce a new plan that is
//! feasible for the forecast load *and* close to the incumbent placement.
//!
//! Two mechanisms work together (both added to `kairos-solver` for this
//! controller):
//!
//! * **warm start** — [`solve_warm`] polishes the incumbent placement
//!   into the initial search incumbent and tightens the K binary search,
//!   so near-stationary re-solves cost a fraction of a cold solve;
//! * **migration cost** — [`ConsolidationProblem::with_migration`] prices
//!   every slot moved off its current machine, so among near-equal plans
//!   the low-churn one wins (Fig 5's landscape plus a per-move step).
//!
//! Forecasting reuses the Fig 13 predictability machinery: with at least
//! two full horizons of history the next horizon is predicted as the
//! element-wise mean of past horizons (`kairos_traces::predict`'s model);
//! with less, the live window itself is tiled across the horizon.

use crate::ingest::WorkloadTelemetry;
use kairos_core::{ConsolidationEngine, ConsolidationPlan};
use kairos_solver::{
    solve_warm_with, solve_with, Assignment, ConsolidationProblem, SolveReport, SolveScratch,
    SolverConfig,
};
use kairos_types::{Result, TimeSeries, WorkloadProfile};
use std::collections::BTreeMap;

/// Where every replica of every workload currently runs.
///
/// Serializable: a checkpointed placement is the warm-solver seed a
/// restored controller re-solves from, so it must survive restarts
/// bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FleetPlacement {
    /// (workload, replica) → machine index.
    map: BTreeMap<(String, u32), usize>,
}

impl FleetPlacement {
    pub fn new() -> FleetPlacement {
        FleetPlacement::default()
    }

    /// Capture the placement a one-shot plan recommends.
    pub fn from_plan(plan: &ConsolidationPlan) -> FleetPlacement {
        let mut map = BTreeMap::new();
        for p in &plan.placements {
            map.insert((p.workload.clone(), p.replica), p.machine);
        }
        FleetPlacement { map }
    }

    pub fn machine_of(&self, workload: &str, replica: u32) -> Option<usize> {
        self.map.get(&(workload.to_string(), replica)).copied()
    }

    pub fn set(&mut self, workload: &str, replica: u32, machine: usize) {
        self.map.insert((workload.to_string(), replica), machine);
    }

    pub fn remove_workload(&mut self, workload: &str) {
        self.map.retain(|(w, _), _| w != workload);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Machines in use.
    pub fn machines_used(&self) -> usize {
        let set: std::collections::BTreeSet<usize> = self.map.values().copied().collect();
        set.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&(String, u32), &usize)> {
        self.map.iter()
    }
}

/// Outcome of one re-solve.
pub struct ReSolveOutcome {
    /// The new placement.
    pub placement: FleetPlacement,
    /// Raw solver report (assignment indexed by the profiles' slot order).
    pub report: SolveReport,
    /// Slots that changed machine relative to the incumbent.
    pub moves: usize,
    /// Slots that existed in the incumbent placement (new arrivals are
    /// placements, not migrations).
    pub preexisting_slots: usize,
    /// The migration-aware problem that was solved (the migration
    /// planner's diff input; carries the per-slot baseline).
    pub problem: kairos_solver::ConsolidationProblem,
    /// `baseline[slot]` = incumbent machine (None for new arrivals).
    pub baseline: Vec<Option<usize>>,
}

impl ReSolveOutcome {
    /// Fraction of pre-existing workload slots the new plan relocates.
    pub fn churn(&self) -> f64 {
        if self.preexisting_slots == 0 {
            0.0
        } else {
            self.moves as f64 / self.preexisting_slots as f64
        }
    }
}

/// The re-solver: an engine (problem construction: target class, headroom,
/// weights, disk combiner) plus warm-start solver tuning.
pub struct ReSolver {
    pub engine: ConsolidationEngine,
    pub solver: SolverConfig,
    /// Objective price per migrated slot (see
    /// [`kairos_solver::MigrationCost`]); 0 disables churn preference but
    /// keeps the warm start.
    pub cost_per_move: f64,
    /// `true` = ignore the incumbent entirely (cold solve, no migration
    /// term). Exists to *measure* what warm-starting buys; production
    /// loops leave it off.
    pub cold: bool,
    /// Workload pairs (by name) that must not share a machine, layered on
    /// top of the implicit replica anti-affinity. Pairs whose endpoints
    /// are not both present in a given solve are ignored (a cross-shard
    /// pair is trivially satisfied by sharding).
    pub anti_affinity: Vec<(String, String)>,
    /// Budgets for cold bootstrap solves (the first plan of a shard),
    /// which have no warm start to lean on. Defaults to the engine's own
    /// solver budgets, matching what `engine.consolidate` would run.
    pub bootstrap_solver: SolverConfig,
    /// Reusable solver allocation arena: successive re-solves against
    /// similarly-sized problems reuse the same decode/score buffers, so
    /// warm re-solves allocate ~nothing in steady state.
    scratch: SolveScratch,
}

impl ReSolver {
    pub fn new(engine: ConsolidationEngine) -> ReSolver {
        let bootstrap_solver = engine.solver_config();
        ReSolver {
            engine,
            // Online re-solves run with tighter budgets than the one-shot
            // pipeline: the warm start carries most of the quality, and a
            // warm plan already at the machine-count lower bound is
            // accepted outright (near-stationary re-solves then cost one
            // polish pass instead of a full DIRECT budget).
            solver: SolverConfig {
                probe_evals: 400,
                final_evals: 2_000,
                polish_rounds: 60,
                accept_warm_at_bound: true,
                ..Default::default()
            },
            cost_per_move: 0.25,
            cold: false,
            anti_affinity: Vec::new(),
            bootstrap_solver,
            scratch: SolveScratch::default(),
        }
    }

    /// Build the solver problem for `profiles`, applying the resolver's
    /// named anti-affinity pairs (replica counts ride in on the profiles
    /// themselves).
    pub fn problem(&self, profiles: &[WorkloadProfile]) -> Result<ConsolidationProblem> {
        let mut problem = self.engine.problem(profiles)?;
        if !self.anti_affinity.is_empty() {
            let idx_of: BTreeMap<&str, usize> = profiles
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name.as_str(), i))
                .collect();
            let mut pairs = problem.anti_affinity.clone();
            for (a, b) in &self.anti_affinity {
                if let (Some(&ia), Some(&ib)) = (idx_of.get(a.as_str()), idx_of.get(b.as_str())) {
                    pairs.push((ia, ib));
                }
            }
            problem = problem.with_anti_affinity(pairs);
        }
        Ok(problem)
    }

    /// Cold bootstrap solve: no incumbent, full budgets, all constraints
    /// (replicas, anti-affinity) applied.
    pub fn plan_cold(
        &mut self,
        profiles: &[WorkloadProfile],
    ) -> Result<(ConsolidationProblem, SolveReport)> {
        let problem = self.problem(profiles)?;
        let report = solve_with(&problem, &self.bootstrap_solver, &mut self.scratch)?;
        Ok((problem, report))
    }

    /// Re-solve placement for `profiles` (the forecast horizon), warm from
    /// `current`. Workloads present in `profiles` but absent from
    /// `current` are new arrivals (free to place); workloads in `current`
    /// but not in `profiles` have left and simply drop out.
    pub fn resolve(
        &mut self,
        profiles: &[WorkloadProfile],
        current: &FleetPlacement,
    ) -> Result<ReSolveOutcome> {
        let problem = self.problem(profiles)?;
        let slots = problem.slots();
        let k = problem.max_machines;

        // The baseline records where each tenant *physically* runs — never
        // clamp it into the new problem's machine range. A tenant stranded
        // on a machine index ≥ k (the fleet shrank) must read as a move in
        // every candidate plan so the migration planner actually relocates
        // it; clamping would silently relabel it and desynchronize the
        // placement map from the executor's routing.
        let mut baseline: Vec<Option<usize>> = Vec::with_capacity(slots.len());
        for slot in &slots {
            let name = &problem.workloads[slot.workload].name;
            baseline.push(current.machine_of(name, slot.replica));
        }
        let preexisting_slots = baseline.iter().filter(|b| b.is_some()).count();

        // Warm assignment: incumbents stay put (clamped into the search
        // space — this is just the search seed, not the truth); new
        // arrivals start on the least-populated machine (the polish pass
        // will refine).
        let mut occupancy = vec![0usize; k];
        for b in baseline.iter().flatten() {
            occupancy[(*b).min(k.saturating_sub(1))] += 1;
        }
        let mut warm = Vec::with_capacity(slots.len());
        for b in &baseline {
            let m = match b {
                Some(m) => (*m).min(k.saturating_sub(1)),
                None => {
                    let least = (0..k).min_by_key(|&i| occupancy[i]).unwrap_or(0);
                    occupancy[least] += 1;
                    least
                }
            };
            warm.push(m);
        }

        let (problem, report) = if self.cold {
            // Baseline-blind: solve from scratch, then count how many
            // incumbents the oblivious plan would uproot.
            let mut report = solve_with(&problem, &self.solver, &mut self.scratch)?;
            report.evaluation.moves_from_baseline = report
                .assignment
                .machine_of
                .iter()
                .zip(baseline.iter())
                .filter(|&(&m, &b)| b.is_some_and(|b| b != m))
                .count();
            (problem, report)
        } else {
            let problem = problem.with_migration(baseline.clone(), self.cost_per_move);
            let report = solve_warm_with(
                &problem,
                &self.solver,
                &Assignment::new(warm),
                &mut self.scratch,
            )?;
            (problem, report)
        };

        let mut placement = FleetPlacement::new();
        for (slot, &machine) in slots.iter().zip(report.assignment.machine_of.iter()) {
            let name = &problem.workloads[slot.workload].name;
            placement.set(name, slot.replica, machine);
        }
        Ok(ReSolveOutcome {
            placement,
            moves: report.evaluation.moves_from_baseline,
            preexisting_slots,
            report,
            problem,
            baseline,
        })
    }
}

/// When the most recent horizon deviates from the phase-mean prediction
/// by more than this relative RMSE, the series has changed regime and
/// history stops being predictive (aligned with [`crate::DriftDetector`]'s
/// default overload trip point).
const REGIME_CHANGE_THRESHOLD: f64 = 0.25;

/// Forecast the next planning horizon of one series from rolling history.
///
/// The forecast is built in *phase space*: `start_index` is the global
/// sample index of `history`'s first value, so element `p` of the result
/// always corresponds to global phase `p` within the horizon — the same
/// convention the drift detector uses for phase alignment.
///
/// * **Stationary** (possibly periodic) series: the per-phase mean of all
///   observed occurrences — the Fig 13 predictor
///   (`kairos_traces::predict`'s model), which averages measurement noise
///   out.
/// * **Regime change** (the most recent horizon deviates from that
///   prediction beyond [`REGIME_CHANGE_THRESHOLD`]): stale history would
///   systematically mislead, and the recent window itself still mixes
///   both regimes. The forecast falls back to a conservative flat
///   envelope at the recent window's *peak* — scale-up provisioning for
///   the regime that is arriving; the lazier slack side of the drift
///   detector repacks later if the envelope proves too generous.
pub fn forecast_series(history: &TimeSeries, horizon: usize, start_index: u64) -> TimeSeries {
    forecast_series_flagged(history, horizon, start_index).0
}

/// [`forecast_series`] plus whether the forecast fell back to the
/// conservative flat envelope (regime change detected). The flag is what
/// schedules the controller's zero-move horizon refresh: an
/// envelope-planned profile is deliberately loose, and should be
/// tightened once enough post-drift history re-accumulates instead of
/// waiting for slack drift to trip.
pub fn forecast_series_flagged(
    history: &TimeSeries,
    horizon: usize,
    start_index: u64,
) -> (TimeSeries, bool) {
    assert!(horizon > 0);
    let interval = history.interval_secs();
    let vals = history.values();
    if vals.is_empty() {
        return (TimeSeries::constant(interval, 0.0, horizon), false);
    }

    // Per-phase occurrence means.
    let mut sum = vec![0.0f64; horizon];
    let mut count = vec![0usize; horizon];
    for (i, &v) in vals.iter().enumerate() {
        let p = ((start_index + i as u64) % horizon as u64) as usize;
        sum[p] += v;
        count[p] += 1;
    }
    let overall_mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let phase_mean: Vec<f64> = sum
        .iter()
        .zip(&count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { overall_mean })
        .collect();

    // Regime test: the most recent (≤ horizon) samples against the
    // phase-mean prediction.
    let tail = &vals[vals.len().saturating_sub(horizon)..];
    let tail_start = start_index + (vals.len() - tail.len()) as u64;
    let sq: f64 = tail
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let p = ((tail_start + i as u64) % horizon as u64) as usize;
            let d = v - phase_mean[p];
            d * d
        })
        .sum();
    let rmse = (sq / tail.len() as f64).sqrt();
    let mean_abs = overall_mean.abs().max(1e-12);

    if rmse / mean_abs <= REGIME_CHANGE_THRESHOLD {
        (TimeSeries::new(interval, phase_mean), false)
    } else {
        let peak = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (TimeSeries::constant(interval, peak, horizon), true)
    }
}

/// Forecast a whole workload profile for the next horizon (phase-aligned;
/// see [`forecast_series`]).
pub fn forecast_profile(
    name: &str,
    telemetry: &WorkloadTelemetry,
    horizon: usize,
) -> WorkloadProfile {
    forecast_profile_flagged(name, telemetry, horizon).0
}

/// [`forecast_profile`] plus whether *any* resource series fell back to
/// the conservative flat envelope (see [`forecast_series_flagged`]).
pub fn forecast_profile_flagged(
    name: &str,
    telemetry: &WorkloadTelemetry,
    horizon: usize,
) -> (WorkloadProfile, bool) {
    let [cpu, ram, ws, rate] = telemetry.history();
    let start = telemetry.samples_seen().saturating_sub(cpu.len() as u64);
    let (cpu, e0) = forecast_series_flagged(&cpu, horizon, start);
    let (ram, e1) = forecast_series_flagged(&ram, horizon, start);
    let (ws, e2) = forecast_series_flagged(&ws, horizon, start);
    let (rate, e3) = forecast_series_flagged(&rate, horizon, start);
    (
        WorkloadProfile::new(name, cpu, ram, ws, rate),
        e0 || e1 || e2 || e3,
    )
}

/// Forecast the next horizon from the most recent `tail_len` samples
/// *only* — the scheduled horizon refresh's forecaster. After a regime
/// change the full-window phase means stay polluted by the old regime
/// until it washes out of the rolling window, which is exactly why the
/// regime forecast fell back to a flat envelope; once `tail_len` ticks of
/// pure post-drift telemetry exist, their phase means are the tight,
/// periodic profile the envelope was standing in for. Phase convention
/// matches [`forecast_series`]: element `p` corresponds to global phase
/// `p` within the horizon.
pub fn forecast_profile_tail(
    name: &str,
    telemetry: &WorkloadTelemetry,
    horizon: usize,
    tail_len: usize,
) -> WorkloadProfile {
    let [cpu, ram, ws, rate] = telemetry.history();
    let tail_of = |s: &TimeSeries| {
        let keep = tail_len.min(s.len());
        TimeSeries::new(s.interval_secs(), s.values()[s.len() - keep..].to_vec())
    };
    let (cpu, ram, ws, rate) = (tail_of(&cpu), tail_of(&ram), tail_of(&ws), tail_of(&rate));
    let start = telemetry.samples_seen().saturating_sub(cpu.len() as u64);
    WorkloadProfile::new(
        name,
        forecast_series(&cpu, horizon, start),
        forecast_series(&ram, horizon, start),
        forecast_series(&ws, horizon, start),
        forecast_series(&rate, horizon, start),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::{Bytes, DiskDemand, Rate};

    fn profile(name: &str, cpu: f64) -> WorkloadProfile {
        WorkloadProfile::flat(
            name,
            300.0,
            6,
            cpu,
            Bytes::gib(4),
            DiskDemand::new(Bytes::gib(1), Rate(100.0)),
        )
    }

    #[test]
    fn stationary_resolve_keeps_everyone_in_place() {
        let profiles: Vec<WorkloadProfile> =
            (0..6).map(|i| profile(&format!("w{i}"), 1.0)).collect();
        let engine = ConsolidationEngine::builder().build();
        let mut rs = ReSolver::new(engine);
        let cold = rs.engine.consolidate(&profiles).unwrap();
        let current = FleetPlacement::from_plan(&cold);

        let out = rs.resolve(&profiles, &current).unwrap();
        assert!(out.report.evaluation.feasible);
        assert_eq!(out.moves, 0, "unchanged load must not migrate anyone");
        assert_eq!(out.placement, current);
    }

    #[test]
    fn new_arrival_places_without_migrating_incumbents() {
        let mut profiles: Vec<WorkloadProfile> =
            (0..5).map(|i| profile(&format!("w{i}"), 1.0)).collect();
        let engine = ConsolidationEngine::builder().build();
        let mut rs = ReSolver::new(engine);
        let cold = rs.engine.consolidate(&profiles).unwrap();
        let current = FleetPlacement::from_plan(&cold);

        profiles.push(profile("w_new", 1.0));
        let out = rs.resolve(&profiles, &current).unwrap();
        assert!(out.report.evaluation.feasible);
        assert_eq!(out.preexisting_slots, 5);
        assert_eq!(out.moves, 0, "a tiny arrival fits without reshuffling");
        assert!(out.placement.machine_of("w_new", 0).is_some());
    }

    #[test]
    fn overload_drift_migrates_minimally() {
        // 4 workloads at 2.5 cores pack onto one 12-core machine (10 <
        // 11.4). One grows to 6 cores → 13.5 > 11.4: someone must move,
        // but not everyone.
        let profiles: Vec<WorkloadProfile> =
            (0..4).map(|i| profile(&format!("w{i}"), 2.5)).collect();
        let engine = ConsolidationEngine::builder().build();
        let mut rs = ReSolver::new(engine);
        let cold = rs.engine.consolidate(&profiles).unwrap();
        assert_eq!(cold.machines_used(), 1);
        let current = FleetPlacement::from_plan(&cold);

        let mut drifted = profiles.clone();
        drifted[0] = profile("w0", 6.0);
        let out = rs.resolve(&drifted, &current).unwrap();
        assert!(out.report.evaluation.feasible);
        assert!(out.moves >= 1, "overload requires at least one move");
        assert!(
            out.moves <= 2,
            "migration cost must keep churn low, moved {}",
            out.moves
        );
        assert!(out.churn() <= 0.5);
    }

    #[test]
    fn forecast_uses_phase_means_when_stationary() {
        let mut vals = Vec::new();
        for _ in 0..3 {
            vals.extend([10.0, 11.0, 12.0, 13.0]);
        }
        vals[0] = 10.6; // mild noise in the first cycle
        let hist = TimeSeries::new(300.0, vals);
        let f = forecast_series(&hist, 4, 0);
        assert_eq!(f.len(), 4);
        assert!((f.values()[0] - (10.6 + 10.0 + 10.0) / 3.0).abs() < 1e-9);
        assert!((f.values()[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn forecast_respects_phase_offset() {
        // History starts at global index 2 of a period-4 cycle whose
        // value equals its phase. Element p of the forecast must be p.
        let vals = vec![2.0, 3.0, 0.0, 1.0, 2.0, 3.0, 0.0, 1.0];
        let hist = TimeSeries::new(300.0, vals);
        let f = forecast_series(&hist, 4, 2);
        assert_eq!(f.values(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn forecast_regime_change_uses_conservative_envelope() {
        // Two quiet horizons, then the load jumps: the forecast must
        // provision a flat envelope at the recent peak, not trust the
        // stale mean.
        let mut vals = vec![1.0; 8];
        vals.extend([2.5; 4]);
        let hist = TimeSeries::new(300.0, vals);
        let f = forecast_series(&hist, 4, 0);
        assert_eq!(f.values(), &[2.5; 4]);
    }

    #[test]
    fn forecast_covers_unseen_phases_with_overall_mean() {
        // Only 2 samples at phases 0 and 1: phases 2 and 3 fall back to
        // the overall mean (and the regime test sees no surprise).
        let hist = TimeSeries::new(300.0, vec![2.0, 3.0]);
        let f = forecast_series(&hist, 4, 0);
        assert_eq!(f.len(), 4);
        assert_eq!(f.values()[0], 2.0);
        assert_eq!(f.values()[1], 3.0);
        assert_eq!(f.values()[2], 2.5);
        assert_eq!(f.values()[3], 2.5);
    }
}
