//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion surface — `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!` — that the workspace's benches
//! compile and produce useful wall-clock numbers without network access.
//! No statistics, no HTML reports: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a small measurement budget,
//! and the mean per-iteration time is printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim times every batch individually regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-run timing controls.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
    min_samples: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(600),
            min_samples: 5,
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    budget: Budget,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            report: None,
        };
        f(&mut b);
        if let Some(r) = b.report {
            println!("{name:<44} time: {}", fmt_duration(r));
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (sample-size hints are accepted and used to
/// scale the measurement budget down for slow benches).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples requested = slow benchmark: shrink the budget so a
        // handful of iterations suffice.
        let n = n.max(1) as u32;
        self.parent.budget.measure = Duration::from_millis(600).min(Duration::from_millis(60) * n);
        self.parent.budget.min_samples = (n as u64).min(10);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    budget: Budget,
    report: Option<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly; record the mean per-iteration time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.budget.warmup;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.budget.min_samples || start.elapsed() < self.budget.measure {
            black_box(routine());
            iters += 1;
        }
        self.report = Some(start.elapsed() / iters.max(1) as u32);
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm up with a couple of runs.
        for _ in 0..2 {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        while iters < self.budget.min_samples || budget_start.elapsed() < self.budget.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.report = Some(total / iters.max(1) as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
