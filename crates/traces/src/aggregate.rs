//! Shard-level telemetry aggregation for the fleet balancer.
//!
//! A sharded control plane plans each shard independently, but the
//! top-level balancer only needs a much coarser signal than per-tenant
//! windows: *how much load does this shard carry, per resource, over the
//! rolling horizon?* This module folds the per-tenant rolling windows a
//! shard's ingester holds into one aggregate series per resource, the
//! same way rrdtool federations roll node series up into cluster series.
//!
//! Series are **tail-aligned**: the most recent sample of every input
//! lines up at the end of the aggregate, because that is how rolling
//! windows relate across tenants with different amounts of history (a
//! newly admitted tenant contributes only to the recent suffix).

use kairos_types::TimeSeries;
use serde::{Deserialize, Serialize};

/// Element-wise sum of `series`, aligned at the most recent sample.
///
/// The result has the length of the longest input; a shorter input
/// contributes zero to buckets older than its history. Empty input (or
/// all-empty series) yields an empty series at `fallback_interval`.
pub fn sum_tail_aligned(series: &[TimeSeries], fallback_interval: f64) -> TimeSeries {
    let refs: Vec<&TimeSeries> = series.iter().collect();
    sum_tail_aligned_refs(&refs, fallback_interval)
}

/// [`sum_tail_aligned`] over borrowed series — the sharded control
/// plane's summary path aggregates every tenant's rolling window each
/// balance round, so the roll-up must not deep-copy its inputs first.
pub fn sum_tail_aligned_refs(series: &[&TimeSeries], fallback_interval: f64) -> TimeSeries {
    let len = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let interval = series
        .iter()
        .find(|s| !s.is_empty())
        .map(|s| s.interval_secs())
        .unwrap_or(fallback_interval);
    let mut out = vec![0.0f64; len];
    for s in series {
        let offset = len - s.len();
        for (i, &v) in s.values().iter().enumerate() {
            out[offset + i] += v;
        }
    }
    TimeSeries::new(interval, out)
}

/// One shard's aggregate load over the rolling horizon: the four profile
/// resources summed across its tenants, tail-aligned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardAggregate {
    pub cpu_cores: TimeSeries,
    pub ram_bytes: TimeSeries,
    pub ws_bytes: TimeSeries,
    pub rate_rows: TimeSeries,
    /// Tenants folded in.
    pub tenants: usize,
}

impl ShardAggregate {
    /// Aggregate per-tenant windows, each given as
    /// `[cpu, ram, working-set, rate]` (the layout
    /// `WorkloadTelemetry::history` reports).
    pub fn from_windows<'a, I>(windows: I, fallback_interval: f64) -> ShardAggregate
    where
        I: IntoIterator<Item = &'a [TimeSeries; 4]>,
    {
        let mut cpu = Vec::new();
        let mut ram = Vec::new();
        let mut ws = Vec::new();
        let mut rate = Vec::new();
        for w in windows {
            cpu.push(&w[0]);
            ram.push(&w[1]);
            ws.push(&w[2]);
            rate.push(&w[3]);
        }
        let tenants = cpu.len();
        ShardAggregate {
            cpu_cores: sum_tail_aligned_refs(&cpu, fallback_interval),
            ram_bytes: sum_tail_aligned_refs(&ram, fallback_interval),
            ws_bytes: sum_tail_aligned_refs(&ws, fallback_interval),
            rate_rows: sum_tail_aligned_refs(&rate, fallback_interval),
            tenants,
        }
    }

    /// Peak of each aggregate series as `[cpu, ram, ws, rate]` (0.0 for
    /// an empty series) — the balancer's headroom input.
    pub fn peaks(&self) -> [f64; 4] {
        let peak = |s: &TimeSeries| {
            if s.is_empty() {
                0.0
            } else {
                s.max()
            }
        };
        [
            peak(&self.cpu_cores),
            peak(&self.ram_bytes),
            peak(&self.ws_bytes),
            peak(&self.rate_rows),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(300.0, vals.to_vec())
    }

    #[test]
    fn sum_aligns_at_tail() {
        let a = ts(&[1.0, 2.0, 3.0, 4.0]);
        let b = ts(&[10.0, 20.0]); // newer tenant: only recent history
        let sum = sum_tail_aligned(&[a, b], 300.0);
        assert_eq!(sum.values(), &[1.0, 2.0, 13.0, 24.0]);
        assert_eq!(sum.interval_secs(), 300.0);
    }

    #[test]
    fn empty_input_is_empty_series() {
        let sum = sum_tail_aligned(&[], 60.0);
        assert_eq!(sum.len(), 0);
        assert_eq!(sum.interval_secs(), 60.0);
    }

    #[test]
    fn aggregate_peaks_reflect_summed_load() {
        let w1 = [
            ts(&[1.0, 2.0]),
            ts(&[5.0, 5.0]),
            ts(&[3.0, 3.0]),
            ts(&[100.0, 50.0]),
        ];
        let w2 = [
            ts(&[2.0, 1.0]),
            ts(&[5.0, 5.0]),
            ts(&[3.0, 3.0]),
            ts(&[0.0, 200.0]),
        ];
        let agg = ShardAggregate::from_windows(vec![&w1, &w2], 300.0);
        assert_eq!(agg.tenants, 2);
        let [cpu, ram, ws, rate] = agg.peaks();
        assert_eq!(cpu, 3.0); // 1+2 or 2+1 in each bucket
        assert_eq!(ram, 10.0);
        assert_eq!(ws, 6.0);
        assert_eq!(rate, 250.0);
    }
}
