//! The profiled response map must reproduce the Fig 4 shape:
//! * disk writes grow **sub-linearly** with the row-update rate
//!   (coalescing),
//! * disk writes grow with the **working-set size** at a fixed rate
//!   (updates spread over more pages → less coalescing),
//! * the **saturation rate falls** as the working set grows (dashed
//!   frontier),
//!
//! and the fitted model must predict held-out points decently.

use kairos_diskmodel::{run_profiler, DiskModel, ProfilerConfig};
use kairos_types::{Bytes, DiskDemand, Rate};

fn smoke_profile() -> kairos_diskmodel::DiskProfile {
    let cfg = ProfilerConfig {
        ws_points: vec![
            Bytes::mib(256),
            Bytes::mib(512),
            Bytes::mib(1024),
            Bytes::mib(1536),
        ],
        rate_points: vec![1_000.0, 4_000.0, 10_000.0, 20_000.0, 35_000.0, 60_000.0],
        settle_secs: 18.0,
        measure_secs: 10.0,
        buffer_pool: Bytes::mib(2048),
        ..ProfilerConfig::smoke()
    };
    run_profiler(&cfg)
}

#[test]
fn profile_has_fig4_shape_and_model_fits() {
    let profile = smoke_profile();
    assert_eq!(profile.points.len(), 24);

    // (a) Writes grow sub-linearly with rate at fixed working set.
    let at = |ws_mib: u64, rate: f64| {
        profile
            .points
            .iter()
            .find(|p| {
                (p.ws_bytes - Bytes::mib(ws_mib).as_f64()).abs() < 1.0
                    && (p.rows_per_sec - rate).abs() / rate < 0.25
            })
            .unwrap_or_else(|| panic!("missing point ws={ws_mib}MiB rate={rate}"))
    };
    let slow = at(512, 4_000.0);
    let fast = at(512, 20_000.0);
    assert!(
        fast.write_bytes_per_sec > slow.write_bytes_per_sec,
        "more updates must write more: {} vs {}",
        slow.write_bytes_per_sec,
        fast.write_bytes_per_sec
    );
    assert!(
        fast.write_bytes_per_sec < slow.write_bytes_per_sec * 5.0 * 0.97,
        "5x rate must give <5x writes (coalescing): {} -> {}",
        slow.write_bytes_per_sec,
        fast.write_bytes_per_sec
    );

    // (b) Writes grow with working set at fixed rate.
    let small_ws = at(256, 10_000.0);
    let large_ws = at(1536, 10_000.0);
    assert!(
        large_ws.write_bytes_per_sec > small_ws.write_bytes_per_sec * 1.1,
        "larger working set must cost more I/O: {} vs {}",
        small_ws.write_bytes_per_sec,
        large_ws.write_bytes_per_sec
    );

    // (c) Saturation frontier falls with working set.
    let sat = profile.saturation_points();
    assert_eq!(sat.len(), 4);
    assert!(
        sat.first().unwrap().1 > sat.last().unwrap().1,
        "saturation rate should fall with ws: {sat:?}"
    );

    // (d) The LAR model fits and predicts a held-out mid-grid point.
    let model = DiskModel::fit(&profile).expect("fit");
    let held_out = at(1024, 10_000.0);
    let predicted = model.predict_write_bytes(DiskDemand::new(
        Bytes(held_out.ws_bytes as u64),
        Rate(held_out.rows_per_sec),
    ));
    let rel_err = (predicted - held_out.write_bytes_per_sec).abs() / held_out.write_bytes_per_sec;
    assert!(
        rel_err < 0.35,
        "model off by {:.0}% at mid-grid ({} vs {})",
        rel_err * 100.0,
        predicted,
        held_out.write_bytes_per_sec
    );
}

#[test]
fn combined_equals_single_equivalent_workload() {
    // The §4.1 property on the real simulator: N profile loads with
    // aggregate (X, Y) inside ONE instance behave like a single (X, Y)
    // load. Compare measured write rates.
    use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
    use kairos_types::MachineSpec;
    use kairos_workloads::{Driver, ProfileLoad};

    let measure = |loads: Vec<(Bytes, f64)>| -> f64 {
        let mut host = Host::new(MachineSpec::server1());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(2))));
        let mut driver = Driver::new();
        for (ws, rate) in loads {
            driver.bind(&mut host, 0, Box::new(ProfileLoad::new(ws, rate)));
        }
        driver.warmup(&mut host, 5.0);
        let before = host.instance(0).stats();
        driver.run(&mut host, 10.0);
        let delta = host.instance(0).stats().delta(&before);
        delta.write_bytes_per_sec(host.instance(0).page_size().as_f64())
    };

    let combined = measure(vec![
        (Bytes::mib(256), 3_000.0),
        (Bytes::mib(256), 3_000.0),
        (Bytes::mib(512), 6_000.0),
    ]);
    let single = measure(vec![(Bytes::mib(1024), 12_000.0)]);
    let ratio = combined / single;
    assert!(
        (0.7..1.4).contains(&ratio),
        "combined {combined} vs single-equivalent {single} (ratio {ratio:.2})"
    );
}
