//! Explainable audits: turn a decision trace into a "why" chain.
//!
//! When `audit()` flags a shard — a capacity violation, an over-budget
//! machine count, an incomplete evaluation — the question is always the
//! same: *which decisions produced this placement?* The answer is already
//! in the trace: the plan event that last established the placement, the
//! drift trip that forced that plan, and every membership change
//! (handoffs in/out, refreshes, failed re-solves) since. This module
//! walks a shard's own trace plus the fleet/balancer trace and renders
//! that chain as human-readable lines, newest context last.

use crate::events::{DecisionEvent, TracedEvent};

fn bits(b: u64) -> f64 {
    f64::from_bits(b)
}

/// One event as a human-readable line (no leading tick stamp).
pub fn render_event(event: &DecisionEvent) -> String {
    use DecisionEvent::*;
    match event {
        Bootstrapped {
            machines,
            objective_bits,
        } => format!(
            "bootstrapped: initial plan on {machines} machines, objective {:.4}",
            bits(*objective_bits)
        ),
        DriftTripped {
            workloads,
            max_overload_bits,
            max_slack_bits,
            overload_threshold_bits,
            slack_threshold_bits,
        } => format!(
            "drift tripped on [{}]: max overload {:.3} (threshold {:.3}), max slack {:.3} (threshold {:.3})",
            workloads.join(", "),
            bits(*max_overload_bits),
            bits(*overload_threshold_bits),
            bits(*max_slack_bits),
            bits(*slack_threshold_bits),
        ),
        Replanned {
            reason,
            feasible,
            moves,
            machines,
            objective_before_bits,
            objective_after_bits,
            churn_bits,
        } => format!(
            "replanned ({reason}): objective {:.4} -> {:.4}, {moves} moves (churn {:.2}), {machines} machines, feasible={feasible}",
            bits(*objective_before_bits),
            bits(*objective_after_bits),
            bits(*churn_bits),
        ),
        ResolveFailed {
            reason,
            backoff_until,
        } => format!("re-solve FAILED ({reason}); backing off until tick {backoff_until}"),
        ProfileRefreshed { workloads } => format!(
            "profile refresh tightened envelopes for [{}] (zero moves)",
            workloads.join(", ")
        ),
        TenantEvicted { tenant } => format!("evicted {tenant} (handed off outward)"),
        TenantAdmitted { tenant } => {
            format!("admitted {tenant} (handed off inward; membership replan pending)")
        }
        DonorFlagged {
            shard,
            machines_used,
            budget,
            feasible,
            resolve_failed,
        } => {
            let mut triggers = Vec::new();
            if machines_used > budget {
                triggers.push(format!("machines {machines_used} > budget {budget}"));
            }
            if !feasible {
                triggers.push("plan infeasible".to_string());
            }
            if *resolve_failed {
                triggers.push("last re-solve failed".to_string());
            }
            format!("shard {shard} flagged as donor: {}", triggers.join(", "))
        }
        HandoffProposed {
            tenant,
            donor,
            receiver,
            shed_target,
            receiver_machines,
        } => format!(
            "proposed handoff {tenant}: shard {donor} -> shard {receiver} (receiver at {receiver_machines} machines admits at shed target {shed_target})"
        ),
        HandoffNoReceiver { tenant, donor } => {
            format!("no receiver for {tenant} from shard {donor} (handoff rejected)")
        }
        HandoffCompleted {
            tenant,
            donor,
            receiver,
        } => format!("handoff {tenant}: shard {donor} -> shard {receiver} completed"),
        HandoffFailed {
            tenant,
            donor,
            receiver,
            returned_to_donor,
        } => format!(
            "handoff {tenant}: shard {donor} -> shard {receiver} FAILED ({})",
            if *returned_to_donor {
                "rolled back to donor"
            } else {
                "tenant not restored to donor"
            }
        ),
        HandoffParked {
            tenant,
            donor,
            receiver,
        } => format!(
            "handoff {tenant}: shard {donor} -> shard {receiver} PARKED (unresolvable mid-flight; retried each round)"
        ),
        ParkedRetried {
            tenant,
            donor,
            receiver,
            resolution,
        } => format!(
            "parked handoff {tenant} (shard {donor} -> shard {receiver}) probed: {resolution}"
        ),
        LeaseMiss {
            shard,
            missed,
            limit,
        } => format!("shard {shard} missed a lease renewal ({missed}/{limit})"),
        ShardDown { shard } => format!("shard {shard} declared DOWN (lease limit crossed)"),
        ShardRejoined {
            shard,
            retired,
            reseeded,
        } => format!(
            "shard {shard} rejoined: retired stale [{}], re-seeded lost [{}]",
            retired.join(", "),
            reseeded.join(", ")
        ),
        StandbyPromoted {
            rank,
            adopted_ticks,
        } => format!("standby rank {rank} promoted; adopted fleet state at tick {adopted_ticks}"),
        StandbySynced {
            sync_round,
            parked,
            cooldowns,
            log_events,
        } => format!(
            "standby synced replicated state for round {sync_round}: {parked} parked, {cooldowns} cooldowns, {log_events} log events"
        ),
        AuthRejected { endpoint } => {
            format!("frame from {endpoint} REJECTED: shared-secret auth failed (no state change)")
        }
        NodeAnnounced {
            shard,
            endpoint,
            generation,
        } => format!("shard {shard} announced itself at {endpoint} (generation {generation})"),
        ZoneSummarized {
            zone,
            tenants,
            groups,
            machines_used,
            summary_bytes,
        } => format!(
            "zone {zone} rolled up: {tenants} tenants in {groups} groups, {machines_used} machines ({summary_bytes} B on the wire)"
        ),
        GroupMoved {
            group,
            tenants,
            from_zone,
            to_zone,
        } => format!(
            "group {group} ({tenants} tenants) moved: zone {from_zone} -> zone {to_zone}"
        ),
        HealthFlagged {
            rule,
            metric,
            severity,
        } => format!("health watchdog flagged {severity}: {rule} fired on {metric}"),
    }
}

// The shard-relevance predicate lives in the query layer now
// ([`crate::query::concerns_shard`]); the why chain filters through it.
use crate::query::concerns_shard;

fn is_plan_event(event: &DecisionEvent) -> bool {
    matches!(
        event,
        DecisionEvent::Bootstrapped { .. } | DecisionEvent::Replanned { .. }
    )
}

/// Render the chain of decisions that produced shard `shard`'s current
/// placement: the last plan-establishing event (and the drift trip that
/// forced it), then every shard-local membership change and every
/// fleet-level event touching the shard since, merged in tick order.
///
/// `shard_events` is the shard's own trace (shard ticks);
/// `fleet_events` is the balancer's trace (fleet ticks). The two tick
/// domains advance in lockstep in this control plane, so a simple
/// tick-ordered merge reads correctly.
pub fn render_why_chain(
    shard: usize,
    shard_events: &[TracedEvent],
    fleet_events: &[TracedEvent],
) -> String {
    let mut out = String::new();
    let plan_idx = shard_events.iter().rposition(|e| is_plan_event(&e.event));
    let Some(plan_idx) = plan_idx else {
        out.push_str(&format!(
            "  shard {shard}: no plan-establishing event in trace (never bootstrapped, or ring evicted it)\n"
        ));
        return out;
    };
    let plan_tick = shard_events[plan_idx].tick;

    // The drift trip immediately preceding the plan is its cause.
    let mut chain: Vec<&TracedEvent> = Vec::new();
    if plan_idx > 0 {
        let prev = &shard_events[plan_idx - 1];
        if matches!(prev.event, DecisionEvent::DriftTripped { .. }) {
            chain.push(prev);
        }
    }
    chain.extend(&shard_events[plan_idx..]);
    let mut fleet_since: Vec<&TracedEvent> = fleet_events
        .iter()
        .filter(|e| e.tick >= plan_tick && concerns_shard(&e.event, shard))
        .collect();
    chain.append(&mut fleet_since);
    chain.sort_by_key(|e| (e.tick, e.seq));

    for e in chain {
        out.push_str(&format!(
            "  tick {:>4} · {}\n",
            e.tick,
            render_event(&e.event)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(seq: u64, tick: u64, event: DecisionEvent) -> TracedEvent {
        TracedEvent { seq, tick, event }
    }

    #[test]
    fn chain_starts_at_last_plan_and_includes_its_drift_cause() {
        let shard_events = vec![
            traced(
                0,
                1,
                DecisionEvent::Bootstrapped {
                    machines: 4,
                    objective_bits: 1.0f64.to_bits(),
                },
            ),
            traced(
                1,
                10,
                DecisionEvent::DriftTripped {
                    workloads: vec!["t1".into()],
                    max_overload_bits: 0.4f64.to_bits(),
                    max_slack_bits: 0.0f64.to_bits(),
                    overload_threshold_bits: 0.25f64.to_bits(),
                    slack_threshold_bits: 0.5f64.to_bits(),
                },
            ),
            traced(
                2,
                10,
                DecisionEvent::Replanned {
                    reason: "drift[t1]".into(),
                    feasible: true,
                    moves: 2,
                    machines: 5,
                    objective_before_bits: 1.0f64.to_bits(),
                    objective_after_bits: 1.2f64.to_bits(),
                    churn_bits: 0.1f64.to_bits(),
                },
            ),
            traced(
                3,
                14,
                DecisionEvent::TenantAdmitted {
                    tenant: "t9".into(),
                },
            ),
        ];
        let fleet_events = vec![
            traced(
                0,
                5,
                DecisionEvent::HandoffCompleted {
                    tenant: "ancient".into(),
                    donor: 0,
                    receiver: 2,
                },
            ),
            traced(
                1,
                14,
                DecisionEvent::HandoffCompleted {
                    tenant: "t9".into(),
                    donor: 0,
                    receiver: 2,
                },
            ),
            traced(
                2,
                14,
                DecisionEvent::HandoffCompleted {
                    tenant: "zz".into(),
                    donor: 1,
                    receiver: 3,
                },
            ),
        ];
        let chain = render_why_chain(2, &shard_events, &fleet_events);
        assert!(chain.contains("drift tripped on [t1]"), "{chain}");
        assert!(chain.contains("replanned (drift[t1])"), "{chain}");
        assert!(chain.contains("handoff t9"), "{chain}");
        assert!(chain.contains("admitted t9"), "{chain}");
        assert!(
            !chain.contains("bootstrapped"),
            "pre-plan history excluded: {chain}"
        );
        assert!(
            !chain.contains("ancient"),
            "pre-plan fleet events excluded: {chain}"
        );
        assert!(
            !chain.contains("zz"),
            "other shards' handoffs excluded: {chain}"
        );
    }

    #[test]
    fn empty_trace_says_so() {
        let chain = render_why_chain(0, &[], &[]);
        assert!(chain.contains("no plan-establishing event"));
    }
}
