//! Seeded property tests for the snapshot frame: random values round-trip
//! exactly, and random corruption (truncation, bit flips, byte zeroing)
//! is always rejected with a clean error — never a panic.
//!
//! Runs on the workspace's SplitMix64 harness; CI sweeps
//! `KAIROS_TEST_SEED` over these assertions.

use kairos_store::{decode_frame, encode_frame, StoreError};
use kairos_types::SplitMix64;

/// A random nested value the frame must carry faithfully.
fn random_value(rng: &mut SplitMix64) -> Vec<(String, Vec<f64>, Option<u64>)> {
    let n = rng.next_range(8) as usize;
    (0..n)
        .map(|i| {
            let name = format!("tenant-{i}-{}", rng.next_range(1000));
            let series: Vec<f64> = (0..rng.next_range(64))
                .map(|_| rng.next_in(-1e9, 1e9))
                .collect();
            let opt = if rng.next_f64() < 0.5 {
                Some(rng.next_u64())
            } else {
                None
            };
            (name, series, opt)
        })
        .collect()
}

type Payload = Vec<(String, Vec<f64>, Option<u64>)>;

#[test]
fn random_values_roundtrip_bit_exact() {
    let mut rng = SplitMix64::from_env(0x57A9_0001);
    for _ in 0..200 {
        let value = random_value(&mut rng);
        let frame = encode_frame(1, &value);
        let back: Payload = decode_frame(&frame, 1).expect("clean frame decodes");
        assert_eq!(back.len(), value.len());
        for (a, b) in back.iter().zip(&value) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.2, b.2);
            // f64 comparison at the bit level: the codec must not
            // normalize or round anything.
            let ab: Vec<u64> = a.1.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.1.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }
}

#[test]
fn random_corruption_always_rejected() {
    let mut rng = SplitMix64::from_env(0x57A9_0002);
    for round in 0..200 {
        let value = random_value(&mut rng);
        let frame = encode_frame(1, &value);
        let mutated = match rng.next_range(3) {
            0 => {
                // Truncate at a random point.
                let cut = rng.next_range(frame.len() as u64) as usize;
                frame[..cut].to_vec()
            }
            1 => {
                // Flip one random bit.
                let mut bad = frame.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] ^= 1 << rng.next_range(8);
                bad
            }
            _ => {
                // Zero a random byte (if it was already zero, force a flip
                // so the mutation is never a no-op).
                let mut bad = frame.clone();
                let byte = rng.next_range(bad.len() as u64) as usize;
                bad[byte] = if bad[byte] == 0 { 0xFF } else { 0 };
                bad
            }
        };
        let r: Result<Payload, StoreError> = decode_frame(&mutated, 1);
        assert!(
            r.is_err(),
            "round {round}: corrupted frame must be rejected"
        );
    }
}

#[test]
fn frames_are_deterministic() {
    // The same value encodes to the same bytes — checkpoint files are
    // diffable and the resume round-trip test can compare byte-for-byte.
    let mut rng = SplitMix64::from_env(0x57A9_0003);
    let value = random_value(&mut rng);
    assert_eq!(encode_frame(1, &value), encode_frame(1, &value));
}
