//! Figure 9 — per-server CPU box-plot statistics and peak RAM for the
//! ALL consolidation (197→21-class result in the paper).
//!
//! Expected shape: load approximately balanced across servers, and on
//! every server either RAM or CPU close enough to the cap that no further
//! pairwise merging is possible.

use kairos_bench::{fleet_engine, last_day_profiles, print_table, section};
use kairos_traces::{generate_all, FleetConfig};
use kairos_types::series::percentile_of_sorted;

fn main() {
    let fleet = generate_all(&FleetConfig {
        weeks: 1,
        ..Default::default()
    });
    let profiles = last_day_profiles(&fleet);
    let engine = fleet_engine();
    let plan = engine.consolidate(&profiles).expect("feasible plan");
    section(&format!(
        "Figure 9: {} workloads on {} consolidated servers",
        profiles.len(),
        plan.machines_used()
    ));

    let mut rows = Vec::new();
    for (idx, (machine, series)) in plan.report.evaluation.loads.iter().enumerate() {
        let mut cpu: Vec<f64> = series.iter().map(|w| w.cpu * 100.0).collect();
        cpu.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let ram_max = series.iter().map(|w| w.ram * 100.0).fold(0.0, f64::max);
        let tenants = plan.on_machine(*machine).len();
        rows.push(vec![
            format!("{}", idx + 1),
            tenants.to_string(),
            format!("{:.1}", cpu.first().copied().unwrap_or(0.0)),
            format!("{:.1}", percentile_of_sorted(&cpu, 25.0)),
            format!("{:.1}", percentile_of_sorted(&cpu, 50.0)),
            format!("{:.1}", percentile_of_sorted(&cpu, 75.0)),
            format!("{:.1}", cpu.last().copied().unwrap_or(0.0)),
            format!("{:.1}", ram_max),
        ]);
    }
    print_table(
        &[
            "server",
            "tenants",
            "cpu min",
            "q1",
            "median",
            "q3",
            "cpu max",
            "ram max %",
        ],
        &rows,
    );

    // The "no further consolidation" check: for every server pair, adding
    // their peak RAM or CPU would breach the cap.
    let loads = &plan.report.evaluation.loads;
    let mut mergeable = 0;
    for i in 0..loads.len() {
        for j in i + 1..loads.len() {
            let windows = loads[i].1.len().min(loads[j].1.len());
            let fits = (0..windows).all(|t| {
                loads[i].1[t].cpu + loads[j].1[t].cpu <= 0.95
                    && loads[i].1[t].ram + loads[j].1[t].ram <= 0.95
                    && loads[i].1[t].disk + loads[j].1[t].disk <= 0.95
            });
            if fits {
                mergeable += 1;
            }
        }
    }
    println!(
        "\nserver pairs that could still merge under linear resource checks: {mergeable} \
         (paper: none — every pair blocked by RAM or CPU)"
    );
}
