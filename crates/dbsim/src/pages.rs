//! Page and table identity.
//!
//! Every logical database object in the simulator is a contiguous range of
//! fixed-size pages, which is all the buffer-pool, flusher and disk models
//! need. Page ids are allocated monotonically per [`crate::engine::DbmsInstance`],
//! so a page id also identifies the on-disk position — the flusher's
//! "sorted write-back" is literally a sort by `PageId`.

use kairos_types::Bytes;

/// Globally-ordered page identifier within one DBMS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// Identifier of a logical database hosted by an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatabaseId(pub u32);

/// Identifier of a table within an instance (unique across its databases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// A contiguous run of pages `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRange {
    pub start: PageId,
    pub len: u64,
}

impl PageRange {
    pub fn new(start: PageId, len: u64) -> PageRange {
        PageRange { start, len }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive end page id.
    pub fn end(&self) -> PageId {
        PageId(self.start.0 + self.len)
    }

    pub fn contains(&self, p: PageId) -> bool {
        p >= self.start && p < self.end()
    }

    /// The `i`-th page of the range.
    ///
    /// # Panics
    /// Panics (debug) if `i >= len`.
    pub fn page(&self, i: u64) -> PageId {
        debug_assert!(i < self.len, "page index {i} out of range of {}", self.len);
        PageId(self.start.0 + i)
    }

    /// Size of the range in bytes for a given page size.
    pub fn bytes(&self, page_size: Bytes) -> Bytes {
        Bytes(self.len * page_size.0)
    }

    /// First `n` pages (or the whole range if shorter).
    pub fn prefix(&self, n: u64) -> PageRange {
        PageRange {
            start: self.start,
            len: self.len.min(n),
        }
    }
}

/// Monotonic page allocator for one DBMS instance.
#[derive(Debug, Default)]
pub struct PageAllocator {
    next: u64,
}

impl PageAllocator {
    pub fn new() -> PageAllocator {
        PageAllocator { next: 0 }
    }

    /// Allocate a contiguous range of `len` pages.
    pub fn allocate(&mut self, len: u64) -> PageRange {
        let start = PageId(self.next);
        self.next += len;
        PageRange { start, len }
    }

    /// Total pages ever allocated.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = PageRange::new(PageId(10), 5);
        assert_eq!(r.end(), PageId(15));
        assert!(r.contains(PageId(10)));
        assert!(r.contains(PageId(14)));
        assert!(!r.contains(PageId(15)));
        assert_eq!(r.page(2), PageId(12));
    }

    #[test]
    fn range_bytes() {
        let r = PageRange::new(PageId(0), 4);
        assert_eq!(r.bytes(Bytes::kib(16)), Bytes::kib(64));
    }

    #[test]
    fn allocator_is_contiguous_and_disjoint() {
        let mut a = PageAllocator::new();
        let r1 = a.allocate(10);
        let r2 = a.allocate(3);
        assert_eq!(r1.start, PageId(0));
        assert_eq!(r2.start, PageId(10));
        assert_eq!(a.allocated(), 13);
        assert!(!r1.contains(r2.start));
    }

    #[test]
    fn prefix_clamps() {
        let r = PageRange::new(PageId(0), 5);
        assert_eq!(r.prefix(3).len, 3);
        assert_eq!(r.prefix(99).len, 5);
    }
}
