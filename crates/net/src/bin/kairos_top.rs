//! `kairos-top`: the operator console. Polls the `Metrics`, `Health`,
//! `Spans` and flight-recorder `Query` RPCs of every endpoint named on
//! the command line and renders one refreshing fleet table — per-node
//! ticks, load gauges, parked-handoff pressure, watchdog findings and
//! the most recent trace roots — over the same control transport the
//! balancer uses. No sidecar, no scrape config: if a node serves RPCs,
//! `kairos-top` can watch it.
//!
//! ```text
//! kairos-top 127.0.0.1:9301 127.0.0.1:9302 --interval-ms 1000
//! kairos-top 127.0.0.1:9301 --once --strict     # CI: validate + exit
//! kairos-top 127.0.0.1:9301 --trace 0xffff00010000002a
//! ```
//!
//! `--once` prints a single snapshot and exits (exit code 1 under
//! `--strict` if any node reports a critical finding or renders a
//! malformed Prometheus exposition line — the CI surface job runs
//! exactly this). `--trace ID` additionally queries every endpoint for
//! one trace id and prints the assembled cross-node span tree.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use kairos_net::transport::Transport;
use kairos_net::{rpc, Request, Response, TcpTransport};
use kairos_obs::{assemble_trees, render_span_tree, SpanRecord, TraceQuery};

/// Everything one poll learned about one endpoint.
struct NodeSample {
    endpoint: String,
    /// `Err` carries the connect/call failure; the row still renders.
    status: Result<NodeStats, String>,
}

struct NodeStats {
    ticks: u64,
    /// `series name (with labels) -> value` parsed from the Prometheus
    /// exposition text.
    metrics: BTreeMap<String, f64>,
    /// Exposition lines that failed validation (empty on a healthy node).
    malformed: Vec<String>,
    health: kairos_obs::HealthReport,
    /// Newest-first root spans (name, tick, node).
    recent_roots: Vec<SpanRecord>,
    span_count: usize,
}

fn main() {
    let options = match Options::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("kairos-top: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let transport = TcpTransport::new();
    loop {
        let samples: Vec<NodeSample> = options
            .endpoints
            .iter()
            .map(|endpoint| sample(&transport, endpoint))
            .collect();
        if !options.once {
            // Clear + home: the table redraws in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(&samples));
        if let Some(trace_id) = options.trace {
            print!("{}", render_trace(&transport, &options.endpoints, trace_id));
        }
        if options.once {
            if options.strict && !strict_ok(&samples) {
                std::process::exit(1);
            }
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

const USAGE: &str = "usage: kairos-top <endpoint>... [--once] [--strict] \
[--interval-ms N] [--trace ID]";

struct Options {
    endpoints: Vec<String>,
    once: bool,
    strict: bool,
    interval_ms: u64,
    trace: Option<u64>,
}

impl Options {
    fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
        let mut options = Options {
            endpoints: Vec::new(),
            once: false,
            strict: false,
            interval_ms: 1000,
            trace: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--once" => options.once = true,
                "--strict" => options.strict = true,
                "--interval-ms" => {
                    let value = args.next().ok_or("--interval-ms needs a value")?;
                    options.interval_ms = value
                        .parse()
                        .map_err(|_| format!("bad --interval-ms {value:?}"))?;
                }
                "--trace" => {
                    let value = args.next().ok_or("--trace needs a value")?;
                    let parsed = match value.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => value.parse(),
                    };
                    options.trace = Some(parsed.map_err(|_| format!("bad --trace id {value:?}"))?);
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
                endpoint => options.endpoints.push(endpoint.to_string()),
            }
        }
        if options.endpoints.is_empty() {
            return Err("no endpoints given".to_string());
        }
        Ok(options)
    }
}

/// Poll one endpoint's full observability surface. Any failure marks
/// the row down rather than aborting the sweep — half a fleet table
/// still tells the operator which half is gone.
fn sample(transport: &TcpTransport, endpoint: &str) -> NodeSample {
    let status = (|| -> Result<NodeStats, String> {
        let mut conn = transport
            .connect(endpoint)
            .map_err(|e| format!("connect: {e}"))?;
        let conn = conn.as_mut();
        let ticks = match rpc::call(conn, &Request::Ping).map_err(|e| format!("ping: {e}"))? {
            Response::Pong { ticks } => ticks,
            other => return Err(format!("ping answered {other:?}")),
        };
        let prometheus =
            match rpc::call(conn, &Request::Metrics).map_err(|e| format!("metrics: {e}"))? {
                Response::Metrics { prometheus, .. } => prometheus,
                other => return Err(format!("metrics answered {other:?}")),
            };
        let mut metrics = BTreeMap::new();
        let mut malformed = Vec::new();
        for line in prometheus.lines() {
            if let Err(reason) = kairos_obs::metrics::validate_exposition_line(line) {
                malformed.push(reason);
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((series, value)) = line.rsplit_once(' ') {
                if let Ok(value) = value.parse::<f64>() {
                    metrics.insert(series.to_string(), value);
                }
            }
        }
        let health = match rpc::call(conn, &Request::Health).map_err(|e| format!("health: {e}"))? {
            Response::Health(report) => report,
            other => return Err(format!("health answered {other:?}")),
        };
        let spans: Vec<SpanRecord> =
            match rpc::call(conn, &Request::Spans).map_err(|e| format!("spans: {e}"))? {
                Response::Spans(bytes) => {
                    serde::from_bytes(&bytes).map_err(|e| format!("span decode: {e:?}"))?
                }
                other => return Err(format!("spans answered {other:?}")),
            };
        let span_count = spans.len();
        let mut recent_roots: Vec<SpanRecord> = spans
            .into_iter()
            .filter(|s| s.parent == kairos_obs::span::NO_PARENT)
            .collect();
        recent_roots.reverse();
        recent_roots.truncate(3);
        Ok(NodeStats {
            ticks,
            metrics,
            malformed,
            health,
            recent_roots,
            span_count,
        })
    })();
    NodeSample {
        endpoint: endpoint.to_string(),
        status,
    }
}

/// Whether a node looks like a balancer (fleet-level registry) or a
/// shard, inferred from which metric families it exposes.
fn role(stats: &NodeStats) -> &'static str {
    if stats
        .metrics
        .keys()
        .any(|name| name.starts_with("kairos_fleet_"))
    {
        "balancer"
    } else if stats
        .metrics
        .keys()
        .any(|name| name.starts_with("kairos_shard_"))
    {
        "shard"
    } else {
        "node"
    }
}

fn metric(stats: &NodeStats, name: &str) -> Option<f64> {
    stats.metrics.get(name).copied()
}

fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

fn render(samples: &[NodeSample]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:<9} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8}  RECENT",
        "ENDPOINT", "ROLE", "TICKS", "ROUNDS", "MOVES", "PARKED", "SPANS", "HEALTH"
    );
    for sample in samples {
        match &sample.status {
            Ok(stats) => {
                let role = role(stats);
                let (rounds, moves, parked) = match role {
                    "balancer" => (
                        metric(stats, "kairos_fleet_balance_rounds_total"),
                        metric(stats, "kairos_fleet_handoffs_completed_total"),
                        metric(stats, "kairos_fleet_parked_depth"),
                    ),
                    _ => (None, metric(stats, "kairos_shard_moves_total"), None),
                };
                let health = match stats.health.max_severity() {
                    None => "ok".to_string(),
                    Some(severity) => {
                        format!("{}x{}", severity.name(), stats.health.findings.len())
                    }
                };
                let recent = stats
                    .recent_roots
                    .iter()
                    .map(|s| format!("{}@{}", s.name, s.tick))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(
                    out,
                    "{:<22} {:<9} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8}  {}",
                    sample.endpoint,
                    role,
                    stats.ticks,
                    cell(rounds),
                    cell(moves),
                    cell(parked),
                    stats.span_count,
                    health,
                    recent,
                );
            }
            Err(reason) => {
                let _ = writeln!(out, "{:<22} {:<9} {}", sample.endpoint, "DOWN", reason);
            }
        }
    }
    // Findings and malformed lines expand below the table — the table
    // row only carries the count.
    for sample in samples {
        let Ok(stats) = &sample.status else { continue };
        for finding in &stats.health.findings {
            let _ = writeln!(
                out,
                "  ! {} · {} · {} on {}: {} (value {:.3})",
                sample.endpoint,
                finding.severity.name().to_uppercase(),
                finding.rule,
                finding.metric,
                finding.detail,
                finding.value,
            );
        }
        for reason in &stats.malformed {
            let _ = writeln!(
                out,
                "  ! {} · malformed exposition: {}",
                sample.endpoint, reason
            );
        }
    }
    out
}

/// Query every endpoint for one trace id, merge the answers, and print
/// the assembled cross-node span tree(s).
fn render_trace(transport: &TcpTransport, endpoints: &[String], trace_id: u64) -> String {
    let query = TraceQuery::for_trace(trace_id);
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut out = String::new();
    for endpoint in endpoints {
        let answer = (|| -> Result<kairos_obs::QueryResult, String> {
            let mut conn = transport
                .connect(endpoint)
                .map_err(|e| format!("connect: {e}"))?;
            match rpc::call(
                conn.as_mut(),
                &Request::Query {
                    query: query.clone(),
                },
            )
            .map_err(|e| format!("query: {e}"))?
            {
                Response::Query(result) => Ok(result),
                other => Err(format!("query answered {other:?}")),
            }
        })();
        match answer {
            Ok(result) => spans.extend(result.spans),
            Err(reason) => {
                let _ = writeln!(out, "trace {trace_id:#x}: {endpoint} unqueried ({reason})");
            }
        }
    }
    spans.sort_by_key(|s| (s.trace_id, s.span_id));
    spans.dedup();
    let _ = writeln!(out, "\ntrace {trace_id:#x} · {} spans", spans.len());
    for tree in assemble_trees(&spans) {
        out.push_str(&render_span_tree(&tree));
    }
    out
}

/// `--strict` gate: every node answered, no critical finding, no
/// malformed exposition line anywhere.
fn strict_ok(samples: &[NodeSample]) -> bool {
    samples.iter().all(|sample| match &sample.status {
        Ok(stats) => !stats.health.has_critical() && stats.malformed.is_empty(),
        Err(_) => false,
    })
}
