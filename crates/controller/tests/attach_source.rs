//! Direct edge-case coverage for the source re-binding surface
//! (`ShardController::attach_source` / `detached_workloads`) — the API
//! every restore and every cross-process admission rides on. Previously
//! only exercised indirectly through `crash_recovery`; the network
//! layer (`kairos-net`) leans on it from multiple paths, so the corners
//! get their own tests: reattach of an unknown tenant, double attach,
//! and reattach after a handoff moved the tenant away.

use kairos_controller::{ControllerConfig, ShardController, SyntheticSource, TickOutcome};
use kairos_core::ConsolidationEngine;
use kairos_types::Bytes;
use kairos_workloads::RatePattern;

fn quick_cfg() -> ControllerConfig {
    ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        ..ControllerConfig::default()
    }
}

fn flat(name: &str, tps: f64) -> SyntheticSource {
    SyntheticSource::new(
        name.to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps },
    )
    .with_noise(0.0)
}

fn shard_with(n: usize, tps: f64) -> ShardController {
    let mut shard = ShardController::new(quick_cfg(), ConsolidationEngine::builder().build());
    for i in 0..n {
        shard.add_workload(Box::new(flat(&format!("t{i:02}"), tps)));
    }
    shard
}

fn run_until_planned(shard: &mut ShardController) {
    for _ in 0..20 {
        if let TickOutcome::InitialPlan { .. } = shard.tick() {
            return;
        }
    }
    panic!("shard never planned");
}

/// Round-trip a shard through snapshot/restore, losing its live sources
/// — the state every reattach test starts from.
fn crash_and_restore(shard: &ShardController) -> ShardController {
    ShardController::restore(
        quick_cfg(),
        ConsolidationEngine::builder().build(),
        shard.snapshot(),
    )
    .expect("clean snapshot restores")
}

#[test]
fn reattach_unknown_tenant_is_rejected() {
    let mut shard = shard_with(3, 200.0);
    run_until_planned(&mut shard);
    let mut restored = crash_and_restore(&shard);
    // A tenant the shard has no telemetry for must not attach — new
    // tenants go through add_workload (which registers telemetry).
    let err = restored.attach_source(Box::new(flat("ghost", 100.0)));
    assert!(err.is_err(), "unknown tenant must be rejected");
    // The rejection changed nothing: the real tenants are still waiting.
    let mut detached = restored.detached_workloads();
    detached.sort();
    assert_eq!(detached, vec!["t00", "t01", "t02"]);
    assert!(!restored.has_workload("ghost"));
}

#[test]
fn double_attach_replaces_the_source_without_membership_churn() {
    let mut shard = shard_with(3, 200.0);
    run_until_planned(&mut shard);
    let mut restored = crash_and_restore(&shard);
    for name in ["t00", "t01", "t02"] {
        restored
            .attach_source(Box::new(
                flat(name, 200.0).fast_forward(restored.stats().ticks),
            ))
            .expect("known tenant attaches");
    }
    assert!(restored.detached_workloads().is_empty());

    // Attaching again for an already-live tenant replaces the source —
    // idempotent from the membership side: no duplicate registration,
    // no replan scheduled, the tenant stays singular.
    restored
        .attach_source(Box::new(
            flat("t00", 200.0).fast_forward(restored.stats().ticks),
        ))
        .expect("double attach is a replace, not an error");
    assert!(restored.detached_workloads().is_empty());
    assert_eq!(restored.workloads().len(), 3);
    // The next tick behaves like any steady tick — a double attach must
    // not read as a membership change (that would cost a replan).
    match restored.tick() {
        TickOutcome::Idle | TickOutcome::Stable => {}
        other => panic!("double attach caused spurious work: {other:?}"),
    }
}

#[test]
fn reattach_after_handoff_is_rejected_on_the_donor_and_lands_on_the_receiver() {
    let mut donor = shard_with(4, 200.0);
    let mut receiver = shard_with(3, 200.0);
    run_until_planned(&mut donor);
    run_until_planned(&mut receiver);

    // Hand t00 off: telemetry (and the live source) leave the donor.
    let handoff = donor.evict("t00").expect("evictable");
    receiver.admit(handoff);

    // The donor no longer knows t00 — a reattach there must be refused
    // (attaching would resurrect a tenant the routing map moved away).
    assert!(
        donor.attach_source(Box::new(flat("t00", 200.0))).is_err(),
        "donor must reject a reattach for a handed-off tenant"
    );
    assert!(!donor.has_workload("t00"));

    // On the receiver the tenant is live (the handoff carried the
    // source), so a *reattach* there is the double-attach case: allowed,
    // replaces the source in place.
    receiver
        .attach_source(Box::new(
            flat("t00", 200.0).fast_forward(receiver.stats().ticks),
        ))
        .expect("receiver owns the telemetry: reattach replaces the source");
    assert!(receiver.has_workload("t00"));
    assert!(receiver.detached_workloads().is_empty());

    // And after the receiver itself crashes, t00 is part of *its*
    // detached set — ownership followed the handoff.
    let restored_receiver = crash_and_restore(&receiver);
    let mut detached = restored_receiver.detached_workloads();
    detached.sort();
    assert!(detached.contains(&"t00".to_string()));
    let restored_donor = crash_and_restore(&donor);
    assert!(!restored_donor
        .detached_workloads()
        .contains(&"t00".to_string()));
}

#[test]
fn detached_workloads_shrinks_as_sources_attach() {
    let mut shard = shard_with(4, 220.0);
    run_until_planned(&mut shard);
    let mut restored = crash_and_restore(&shard);
    assert_eq!(restored.detached_workloads().len(), 4);
    for (i, name) in ["t00", "t01", "t02", "t03"].iter().enumerate() {
        restored
            .attach_source(Box::new(
                flat(name, 220.0).fast_forward(restored.stats().ticks),
            ))
            .expect("attaches");
        assert_eq!(restored.detached_workloads().len(), 3 - i);
    }
}
