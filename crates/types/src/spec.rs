//! Physical machine descriptions and CPU normalization.
//!
//! §6 of the paper: "The CPU utilization reported by the Linux kernel is
//! expressed as a percentage of one CPU core. [...] We first convert the
//! percentages from heterogeneous machines to a 'standard' core by scaling
//! based on clock speed. Then we convert the utilization to a fraction of a
//! 'target' machine." [`CpuSpec::standardized_cores`] and
//! [`MachineSpec::normalize_cpu_fraction`] implement exactly that.

use crate::units::Bytes;
use serde::{Deserialize, Serialize};

/// Reference clock speed (GHz) of a "standard" core. The paper's target
/// machines run 2.66–3.2 GHz Xeons; we standardize on 2.66 GHz (Server 1).
pub const STANDARD_CORE_GHZ: f64 = 2.66;

/// CPU hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical core count.
    pub cores: u32,
    /// Per-core clock in GHz.
    pub clock_ghz: f64,
}

impl CpuSpec {
    pub fn new(cores: u32, clock_ghz: f64) -> CpuSpec {
        assert!(cores > 0, "CPU must have at least one core");
        assert!(clock_ghz > 0.0, "clock speed must be positive");
        CpuSpec { cores, clock_ghz }
    }

    /// Capacity expressed in standard-core units (core count scaled by
    /// clock relative to [`STANDARD_CORE_GHZ`]).
    pub fn standardized_cores(&self) -> f64 {
        self.cores as f64 * self.clock_ghz / STANDARD_CORE_GHZ
    }
}

/// RAM description. `reserved` is memory the OS and DBMS binaries use and
/// is unavailable for buffer pools (≈64 MB OS + ≈190 MB DBMS in §7.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RamSpec {
    pub total: Bytes,
    pub reserved: Bytes,
}

impl RamSpec {
    pub fn new(total: Bytes) -> RamSpec {
        RamSpec {
            total,
            reserved: Bytes::mib(254),
        }
    }

    pub fn with_reserved(total: Bytes, reserved: Bytes) -> RamSpec {
        RamSpec { total, reserved }
    }

    /// Memory available to database working sets.
    pub fn usable(&self) -> Bytes {
        self.total.saturating_sub(self.reserved)
    }
}

/// Disk hardware description used by the disk device model.
///
/// A 7200 RPM SATA drive (the paper's test hardware) does roughly
/// 100–130 MB/s sequential and ~120 random IOPS; sorted (elevator) writes
/// land in between.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sequential bandwidth in bytes/second (log writes).
    pub seq_bytes_per_sec: f64,
    /// Random IOPS at queue depth 1 (uncoordinated page I/O).
    pub random_iops: f64,
    /// Multiplier on random IOPS when requests are elevator-sorted with a
    /// deep queue (DBMS write-back of dirty pages in page order).
    pub elevator_gain: f64,
    /// Device settle time for a log force (fsync). Commodity drives with
    /// write caching acknowledge forces in ~1–2 ms rather than a full
    /// seek+rotation.
    pub force_settle_secs: f64,
    /// Page size used for page-granular I/O accounting.
    pub page_size: Bytes,
}

impl DiskSpec {
    /// The paper's single 7200 RPM SATA disk.
    pub fn sata_7200rpm() -> DiskSpec {
        DiskSpec {
            seq_bytes_per_sec: 110.0 * 1024.0 * 1024.0,
            random_iops: 120.0,
            elevator_gain: 18.0,
            force_settle_secs: 0.0015,
            page_size: Bytes::kib(16),
        }
    }

    /// Effective IOPS for sorted write-back at a given average batch size.
    /// Elevator scheduling amortizes seeks across a sorted batch; the gain
    /// saturates logarithmically with batch depth.
    pub fn sorted_iops(&self, batch: f64) -> f64 {
        let depth_factor =
            1.0 + (self.elevator_gain - 1.0) * (1.0 + batch.max(0.0)).ln() / (1.0 + 512.0f64).ln();
        self.random_iops * depth_factor.min(self.elevator_gain)
    }

    /// Peak write-back throughput in bytes/sec when fully sorted.
    pub fn max_sorted_writeback_bytes(&self) -> f64 {
        self.random_iops * self.elevator_gain * self.page_size.as_f64()
    }
}

/// A physical machine: CPU + RAM + one disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    pub name: String,
    pub cpu: CpuSpec,
    pub ram: RamSpec,
    pub disk: DiskSpec,
}

impl MachineSpec {
    /// "Server 1" from §7.1: two quad-core Xeon 2.66 GHz, 32 GB RAM,
    /// single 7200 RPM SATA disk.
    pub fn server1() -> MachineSpec {
        MachineSpec {
            name: "server1".to_string(),
            cpu: CpuSpec::new(8, 2.66),
            ram: RamSpec::new(Bytes::gib(32)),
            disk: DiskSpec::sata_7200rpm(),
        }
    }

    /// "Server 2" from §7.1: two Xeon 3.2 GHz, 2 GB RAM, SATA disk.
    pub fn server2() -> MachineSpec {
        MachineSpec {
            name: "server2".to_string(),
            cpu: CpuSpec::new(2, 3.2),
            ram: RamSpec::new(Bytes::gib(2)),
            disk: DiskSpec::sata_7200rpm(),
        }
    }

    /// The consolidation target of §7.1: 12 cores and 96 GB of RAM
    /// (the "higher-end class of machines used by two of our data
    /// providers", USD 6–10 k in 2011).
    pub fn consolidation_target() -> MachineSpec {
        MachineSpec {
            name: "target-12c-96g".to_string(),
            cpu: CpuSpec::new(12, 2.66),
            ram: RamSpec::new(Bytes::gib(96)),
            disk: DiskSpec::sata_7200rpm(),
        }
    }

    /// Convert a CPU load expressed in standardized cores into a fraction
    /// of this machine (§6's example: 250 % of one core on a 12-core target
    /// becomes 2.5/12 = 0.208).
    pub fn normalize_cpu_fraction(&self, standardized_cores_used: f64) -> f64 {
        standardized_cores_used / self.cpu.standardized_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_cores_scales_by_clock() {
        let cpu = CpuSpec::new(4, STANDARD_CORE_GHZ * 2.0);
        assert!((cpu.standardized_cores() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn paper_normalization_example() {
        // §6: 250% of one standard core on the 12-core target = 0.208.
        let target = MachineSpec::consolidation_target();
        let frac = target.normalize_cpu_fraction(2.5);
        assert!((frac - 2.5 / 12.0).abs() < 1e-12);
        assert!((frac - 0.2083).abs() < 1e-3);
    }

    #[test]
    fn ram_usable_subtracts_reserved() {
        let ram = RamSpec::with_reserved(Bytes::gib(1), Bytes::mib(256));
        assert_eq!(ram.usable(), Bytes::mib(1024 - 256));
    }

    #[test]
    fn ram_usable_never_negative() {
        let ram = RamSpec::with_reserved(Bytes::mib(100), Bytes::mib(256));
        assert_eq!(ram.usable(), Bytes::ZERO);
    }

    #[test]
    fn sorted_iops_monotone_in_batch_and_bounded() {
        let d = DiskSpec::sata_7200rpm();
        let a = d.sorted_iops(1.0);
        let b = d.sorted_iops(64.0);
        let c = d.sorted_iops(100_000.0);
        assert!(a < b, "deeper batches must sort better: {a} vs {b}");
        assert!(b < c || (c - b).abs() < 1e-9);
        assert!(c <= d.random_iops * d.elevator_gain + 1e-9);
    }

    #[test]
    fn sorted_iops_at_zero_batch_is_random_iops() {
        let d = DiskSpec::sata_7200rpm();
        assert!((d.sorted_iops(0.0) - d.random_iops).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn cpu_rejects_zero_cores() {
        CpuSpec::new(0, 2.0);
    }

    #[test]
    fn server_specs_are_sane() {
        let s1 = MachineSpec::server1();
        assert_eq!(s1.cpu.cores, 8);
        let target = MachineSpec::consolidation_target();
        assert_eq!(target.cpu.cores, 12);
        assert_eq!(target.ram.total, Bytes::gib(96));
    }
}
