//! Edge-case coverage for [`ConsolidationProblem::restrict`] — the
//! operation the fleet audit leans on every tick. Previously only
//! exercised indirectly through `FleetController::audit()`; these tests
//! pin the contract down directly: the degenerate shard shapes a real
//! fleet produces (single-tenant shards, one shard owning everything)
//! must restrict to sub-problems that evaluate *identically* to the
//! global problem, and the impossible shape (an empty shard) must be
//! rejected loudly.

use kairos_solver::{
    evaluate, Assignment, ConsolidationProblem, LinearDiskCombiner, TargetMachine, WorkloadSpec,
};
use std::sync::Arc;

fn fleet_problem() -> ConsolidationProblem {
    let mut w = vec![
        WorkloadSpec::flat("a", 6, 1.0, 1e9, 5e8, 100.0),
        WorkloadSpec::flat("b", 6, 2.0, 2e9, 5e8, 200.0),
        WorkloadSpec::flat("c", 6, 3.0, 3e9, 5e8, 300.0),
        WorkloadSpec::flat("d", 6, 4.0, 4e9, 5e8, 400.0),
    ];
    w[1].replicas = 2; // slots: a=0, b=1,2, c=3, d=4
    ConsolidationProblem::new(
        w,
        TargetMachine::paper_target(),
        4,
        Arc::new(LinearDiskCombiner::default()),
    )
    .with_anti_affinity(vec![(0, 2), (1, 3)])
    .with_migration(vec![Some(0), Some(1), Some(2), Some(1), None], 0.25)
}

#[test]
#[should_panic(expected = "at least one workload")]
fn empty_shard_is_rejected() {
    // A shard with no tenants has nothing to restrict to; the audit
    // skips such shards, and restrict() must refuse rather than build a
    // zero-workload problem (which the solver cannot represent).
    fleet_problem().restrict(&[]);
}

#[test]
fn single_tenant_shard_restricts_to_self_consistent_problem() {
    let global = fleet_problem();
    // Shard holding only "b" (2 replicas): both slots survive, the
    // replica anti-affinity is implicit, and the named pairs (which all
    // cross the shard boundary) drop out.
    let sub = global.restrict(&[1]);
    assert_eq!(sub.workloads.len(), 1);
    assert_eq!(sub.workloads[0].name, "b");
    assert_eq!(sub.slots().len(), 2);
    assert!(
        sub.anti_affinity.is_empty(),
        "cross-shard pairs are trivially satisfied and must be dropped"
    );
    // The migration baseline re-slices to b's two slots.
    let m = sub.migration.as_ref().expect("migration survives");
    assert_eq!(m.baseline, vec![Some(1), Some(2)]);
    // Replicas on distinct machines evaluate feasible; co-located
    // replicas violate the implicit anti-affinity.
    let apart = evaluate(&sub, &Assignment::new(vec![0, 1]));
    assert!(apart.feasible);
    let together = evaluate(&sub, &Assignment::new(vec![0, 0]));
    assert!(!together.feasible, "replica co-location must be infeasible");
}

#[test]
fn single_tenant_shard_keeps_windows_and_capacities() {
    let global = fleet_problem();
    let sub = global.restrict(&[3]);
    // The sub-problem judges placements under the same horizon and
    // machine class as the global problem — restriction changes *which*
    // workloads exist, nothing about the world they are placed into.
    assert_eq!(sub.windows, global.windows);
    assert_eq!(sub.max_machines, global.max_machines);
    assert_eq!(sub.headroom, global.headroom);
    let e = evaluate(&sub, &Assignment::new(vec![0]));
    assert!(e.feasible);
    assert_eq!(e.machines_used, 1);
}

#[test]
fn all_tenants_on_one_shard_is_the_identity() {
    let global = fleet_problem();
    let sub = global.restrict(&[0, 1, 2, 3]);
    assert_eq!(sub.workloads.len(), global.workloads.len());
    assert_eq!(sub.slots(), global.slots());
    assert_eq!(sub.anti_affinity, global.anti_affinity);
    assert_eq!(
        sub.migration.as_ref().expect("survives").baseline,
        global.migration.as_ref().expect("present").baseline
    );
    // Bit-identical evaluation on the same assignment: the audit's
    // one-shard degenerate case must agree with the global judgment.
    let assignment = Assignment::new(vec![0, 1, 2, 0, 3]);
    let e_sub = evaluate(&sub, &assignment);
    let e_global = evaluate(&global, &assignment);
    assert_eq!(e_sub.objective.to_bits(), e_global.objective.to_bits());
    assert_eq!(e_sub.feasible, e_global.feasible);
    assert_eq!(e_sub.machines_used, e_global.machines_used);
}

#[test]
fn reordered_keep_permutes_workloads() {
    let global = fleet_problem();
    // The audit builds `keep` in shard order; restrict must honor the
    // given order (the caller matches slots back by position).
    let sub = global.restrict(&[2, 0]);
    assert_eq!(sub.workloads[0].name, "c");
    assert_eq!(sub.workloads[1].name, "a");
    // The surviving (a, c) pair is remapped to the permuted indices.
    assert_eq!(sub.anti_affinity, vec![(1, 0)]);
}

#[test]
fn workload_spec_roundtrips_through_codec() {
    // Problem snapshot inputs: a spec encodes and decodes bit-exactly
    // (series values compared at the bit level).
    let mut spec = WorkloadSpec::flat("w", 5, 1.25, 2e9, 7.5e8, 321.5);
    spec.replicas = 3;
    spec.pinned = Some(2);
    let bytes = serde::to_bytes(&spec);
    let back: WorkloadSpec = serde::from_bytes(&bytes).expect("decodes");
    assert_eq!(back.name, spec.name);
    assert_eq!(back.replicas, spec.replicas);
    assert_eq!(back.pinned, spec.pinned);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&back.cpu), bits(&spec.cpu));
    assert_eq!(bits(&back.ram), bits(&spec.ram));
    assert_eq!(bits(&back.ws), bits(&spec.ws));
    assert_eq!(bits(&back.rate), bits(&spec.rate));
}
