//! Workload predictability (§7.5, Fig 13).
//!
//! "We divided the data into weekly periods, and used the average load of
//! each time interval in the first two weeks to predict the third week.
//! [...] errors in both experiments are low with root mean squared error
//! (RMSE) of about 25 [, meaning] our predictions are 7-8% off from the
//! actual load."

use kairos_types::TimeSeries;

/// Outcome of a week-ahead prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted series for the target week.
    pub predicted: TimeSeries,
    /// Actual series of the target week.
    pub actual: TimeSeries,
    /// Root mean squared error between them.
    pub rmse: f64,
    /// RMSE relative to the actual week's mean (the paper's "7–8 % off").
    pub relative_error: f64,
}

/// Predict the last chunk of `series` as the element-wise mean of the
/// preceding chunks. `chunk_len` is samples per week.
///
/// Returns `None` when fewer than two full chunks exist.
pub fn predict_last_period(series: &TimeSeries, chunk_len: usize) -> Option<Prediction> {
    let chunks = series.chunks(chunk_len);
    if chunks.len() < 2 {
        return None;
    }
    let (history, target) = chunks.split_at(chunks.len() - 1);
    let predicted = TimeSeries::mean_of(series.interval_secs(), history);
    let actual = target[0].clone();
    let rmse = predicted.rmse(&actual);
    let mean = actual.mean().abs().max(1e-12);
    Some(Prediction {
        rmse,
        relative_error: rmse / mean,
        predicted,
        actual,
    })
}

/// Aggregate CPU across a fleet (the paper examines "the total CPU
/// utilization across all servers, as this is typically the most volatile
/// measure").
pub fn fleet_total_cpu(fleet: &[crate::fleet::ServerTrace]) -> TimeSeries {
    let interval = fleet
        .first()
        .map(|s| s.cpu.interval_secs())
        .unwrap_or(300.0);
    TimeSeries::sum(interval, fleet.iter().map(|s| &s.cpu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{generate_fleet, Dataset, FleetConfig};

    #[test]
    fn perfectly_periodic_series_predicts_exactly() {
        let week: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let mut vals = Vec::new();
        for _ in 0..3 {
            vals.extend_from_slice(&week);
        }
        let series = TimeSeries::new(300.0, vals);
        let p = predict_last_period(&series, 100).unwrap();
        assert!(p.rmse < 1e-12, "rmse {}", p.rmse);
        assert!(p.relative_error < 1e-12);
    }

    #[test]
    fn too_short_history_returns_none() {
        let series = TimeSeries::new(300.0, vec![1.0; 150]);
        assert!(predict_last_period(&series, 100).is_none());
    }

    #[test]
    fn noisy_periodic_series_has_bounded_error() {
        use kairos_types::SplitMix64;
        let mut rng = SplitMix64::new(3);
        let mut vals = Vec::new();
        for _ in 0..3 {
            for i in 0..200 {
                vals.push(10.0 + 3.0 * (i as f64 * 0.1).sin() + rng.next_gaussian() * 0.5);
            }
        }
        let series = TimeSeries::new(300.0, vals);
        let p = predict_last_period(&series, 200).unwrap();
        // Error should be on the order of the noise, tiny vs the mean.
        assert!(p.relative_error < 0.12, "rel err {}", p.relative_error);
    }

    #[test]
    fn fleet_prediction_matches_paper_band() {
        // The Fig 13 experiment on our synthetic Wikipedia fleet: the
        // paper reports 7–8 % relative error; our fleets should land in
        // a comparable band (strict periodicity + noise).
        let cfg = FleetConfig::default(); // 3 weeks
        let fleet = generate_fleet(Dataset::Wikipedia, &cfg);
        let total = fleet_total_cpu(&fleet);
        let week_len = (7.0 * 86_400.0 / 300.0) as usize;
        let p = predict_last_period(&total, week_len).unwrap();
        assert!(
            p.relative_error < 0.20,
            "relative error {:.3} too high",
            p.relative_error
        );
        assert!(p.rmse > 0.0);
    }

    #[test]
    fn fleet_total_sums_servers() {
        let cfg = FleetConfig {
            weeks: 1,
            ..Default::default()
        };
        let fleet = generate_fleet(Dataset::Internal, &cfg);
        let total = fleet_total_cpu(&fleet);
        let manual: f64 = fleet.iter().map(|s| s.cpu.values()[0]).sum();
        assert!((total.values()[0] - manual).abs() < 1e-9);
    }
}
