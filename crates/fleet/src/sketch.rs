//! Sketched telemetry at the fleet layer.
//!
//! The sketch types themselves live in [`kairos_traces::sketch`] (they
//! compress `TimeSeries` windows, one layer below the controller); this
//! module is the fleet-facing surface: the re-exports the balancer plane
//! uses, plus the CRC-framed standalone codec — the same
//! `kairos-store` envelope (magic, version, length, payload, CRC-32)
//! every other kairos frame rides, versioned by
//! [`SKETCH_WIRE_VERSION`].
//!
//! Embedded sketches (inside `ShardSummary` roll-ups and
//! `TenantHandoff` frames) are covered by their container's version;
//! the standalone frame exists for sketch-only transfer and for the
//! codec property suite (bit-flip/truncation/version-skew rejection,
//! mirroring the store suite).

pub use kairos_traces::sketch::{
    AggregateSketch, SeriesSketch, SketchConfig, MAX_SKETCH_MARKS, MAX_SKETCH_TAIL,
    SKETCH_WIRE_VERSION,
};

use kairos_store::StoreError;

/// Frame one series sketch under the store envelope.
pub fn encode_series_sketch(sketch: &SeriesSketch) -> Vec<u8> {
    kairos_store::encode_frame(SKETCH_WIRE_VERSION, sketch)
}

/// Decode a framed series sketch, verifying magic, version and CRC.
pub fn decode_series_sketch(bytes: &[u8]) -> Result<SeriesSketch, StoreError> {
    kairos_store::decode_frame(bytes, SKETCH_WIRE_VERSION)
}

/// Frame one aggregate sketch (a shard or zone roll-up).
pub fn encode_aggregate_sketch(sketch: &AggregateSketch) -> Vec<u8> {
    kairos_store::encode_frame(SKETCH_WIRE_VERSION, sketch)
}

/// Decode a framed aggregate sketch, verifying magic, version and CRC.
pub fn decode_aggregate_sketch(bytes: &[u8]) -> Result<AggregateSketch, StoreError> {
    kairos_store::decode_frame(bytes, SKETCH_WIRE_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::TimeSeries;

    #[test]
    fn framed_sketch_roundtrips() {
        let sk = SeriesSketch::of(
            &TimeSeries::new(300.0, vec![0.1, 0.9, 0.4]),
            &SketchConfig::default(),
        );
        let frame = encode_series_sketch(&sk);
        assert_eq!(decode_series_sketch(&frame).expect("roundtrip"), sk);
    }

    #[test]
    fn framed_sketch_rejects_wrong_version() {
        let sk = AggregateSketch::empty(300.0);
        let frame = kairos_store::encode_frame(SKETCH_WIRE_VERSION + 1, &sk);
        assert!(matches!(
            decode_aggregate_sketch(&frame),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }
}
