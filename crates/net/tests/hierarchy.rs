//! The hierarchy's transport property: a root balancer driving zones
//! **over RPC** produces the same group moves, in the same order, as
//! the identical zones driven in-process — and group frames crossing
//! the wire carry sketched member telemetry the receiving zone can
//! plan from immediately.
//!
//! Two identical two-zone fleets are built from the same deterministic
//! tenant specs: the reference holds its [`Zone`]s directly; the
//! networked run serves each zone at an endpoint ([`ZoneNode`]) and
//! hands the root [`RemoteZone`] handles. Same policy code
//! (`run_balance_round` one level up), same records — the equivalence
//! the shard-level suite proves, lifted a level.
//!
//! Defaults to the deterministic loopback; `KAIROS_NET_TRANSPORT=tcp`
//! reruns the property over real localhost sockets.

use kairos_controller::{ControllerConfig, SyntheticSource, TelemetrySource};
use kairos_fleet::{
    group_name, BalancerConfig, FleetConfig, FleetController, HandoffOutcome, RootBalancer,
    RootConfig, Zone, ZoneSourceBinder,
};
use kairos_net::{RemoteZone, Transport, ZoneNode};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;
use std::sync::Arc;

const ZONES: usize = 2;
const SHARDS_PER_ZONE: usize = 2;
const GROUPS: usize = 8;
const TICKS: u64 = 40;
const ROOT_EVERY: u64 = 8;

fn transport() -> Arc<dyn Transport> {
    match std::env::var("KAIROS_NET_TRANSPORT").as_deref() {
        Ok("tcp") => Arc::new(kairos_net::TcpTransport::new()),
        _ => Arc::new(kairos_net::LoopbackTransport::new()),
    }
}

fn bind_endpoint(zone: usize) -> String {
    match std::env::var("KAIROS_NET_TRANSPORT").as_deref() {
        Ok("tcp") => "127.0.0.1:0".to_string(),
        _ => format!("zone-{zone}"),
    }
}

/// Deterministic source for a tenant name like `z0t03`: flat rate
/// parameterized by the indices, zero noise — so the binder on any
/// zone rebuilds the identical source from the name alone.
fn source_for(name: &str) -> Box<dyn TelemetrySource> {
    let digits: u64 = name
        .bytes()
        .filter(u8::is_ascii_digit)
        .fold(0, |acc, b| acc * 10 + u64::from(b - b'0'));
    let tps = 180.0 + 17.0 * (digits % 13) as f64;
    Box::new(
        SyntheticSource::new(name, 300.0, Bytes::gib(4), RatePattern::Flat { tps }).with_noise(0.0),
    )
}

fn binder() -> ZoneSourceBinder {
    Box::new(|name: &str, _tick: u64| Some(source_for(name)))
}

fn zone_config() -> FleetConfig {
    FleetConfig {
        shards: SHARDS_PER_ZONE,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 8,
            balance_every: 5,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    }
}

/// Zone 0 overloaded (all tenants), zone 1 empty — every run exercises
/// root-level group moves.
fn build_zones() -> Vec<Zone> {
    (0..ZONES)
        .map(|z| {
            let mut fleet = FleetController::new(zone_config());
            if z == 0 {
                for i in 0..10 {
                    fleet.add_workload(source_for(&format!("z0t{i:02}")));
                }
            }
            Zone::new(z, fleet, GROUPS, binder())
        })
        .collect()
}

fn root() -> RootBalancer {
    RootBalancer::new(RootConfig {
        balancer: BalancerConfig {
            machines_per_shard: 2,
            balance_every: ROOT_EVERY,
            max_moves_per_round: 2,
            low_watermark: 0,
            cooldown_rounds: 1,
        },
        groups: GROUPS,
    })
}

fn record_sig(
    records: &[kairos_fleet::HandoffRecord],
) -> Vec<(String, usize, Option<usize>, u64, String)> {
    records
        .iter()
        .map(|r| {
            (
                r.tenant.clone(),
                r.from,
                r.to,
                r.tick,
                format!("{:?}", r.outcome),
            )
        })
        .collect()
}

#[test]
fn rpc_root_rounds_match_in_process_zones() {
    // --- reference: in-process zones ---
    let mut ref_zones = build_zones();
    let mut ref_root = root();
    for tick in 1..=TICKS {
        for zone in &mut ref_zones {
            zone.tick();
        }
        if tick % ROOT_EVERY == 0 {
            ref_root.run_round(&mut ref_zones, tick);
        }
    }

    // --- networked: the same zones behind ZoneNodes ---
    let transport = transport();
    let nodes: Vec<ZoneNode> = build_zones().into_iter().map(ZoneNode::new).collect();
    let mut handles = Vec::new();
    let mut remotes = Vec::new();
    for (z, node) in nodes.iter().enumerate() {
        let handle = node
            .serve(transport.as_ref(), &bind_endpoint(z))
            .expect("zone serves");
        let remote = RemoteZone::connect(transport.as_ref(), &handle.endpoint, 300.0)
            .expect("root connects");
        handles.push(handle);
        remotes.push(remote);
    }
    let mut net_root = root();
    for tick in 1..=TICKS {
        for remote in &mut remotes {
            remote.tick().expect("zone ticks over rpc");
        }
        if tick % ROOT_EVERY == 0 {
            net_root.run_round(&mut remotes, tick);
        }
    }

    // Same policy code path, same inputs: identical move history.
    assert_eq!(
        record_sig(ref_root.handoffs()),
        record_sig(net_root.handoffs())
    );
    let completed = net_root
        .handoffs()
        .iter()
        .filter(|r| r.outcome == HandoffOutcome::Completed)
        .count();
    assert!(completed > 0, "the overloaded zone must shed groups");

    // Membership agrees zone-by-zone with the reference.
    for (z, node) in nodes.iter().enumerate() {
        let net_tenants = node.with_zone(|zone| {
            let mut t: Vec<String> = zone
                .fleet()
                .map()
                .entries()
                .map(|(n, _)| n.to_string())
                .collect();
            t.sort();
            t
        });
        let mut ref_tenants: Vec<String> = ref_zones[z]
            .fleet()
            .map()
            .entries()
            .map(|(n, _)| n.to_string())
            .collect();
        ref_tenants.sort();
        assert_eq!(net_tenants, ref_tenants, "zone {z} membership diverged");
    }
    // The receiving zone can plan what it admitted: every moved tenant
    // is routed to a shard and the zone's roll-up accounts for it.
    let moved: usize = nodes[1].with_zone(|zone| zone.fleet().map().len());
    assert!(moved > 0, "zone 1 must hold the moved groups");

    // Group-level probes answer over the transport.
    for remote in &mut remotes {
        for g in 0..GROUPS {
            let _ = kairos_fleet::balancer::ShardHandle::owns(remote, &group_name(g));
        }
    }
    for handle in handles {
        handle.stop();
    }
}

/// The observability tentpole's acceptance property: with span tracing
/// armed at every level, one cross-zone group move reconstructs as a
/// **single span tree** — root `balance_round` → `handoff` →
/// `zone_evict`/`zone_admit` → member-shard `evict`/`admit` — and the
/// tree is queryable by trace id from any node via the `Query` RPC.
/// Span *structure* is transport-invariant: the in-process reference
/// run records the identical span forest.
#[test]
fn cross_zone_group_move_reconstructs_one_span_tree() {
    // --- reference: in-process zones, spans armed ---
    let mut ref_zones = build_zones();
    for zone in &mut ref_zones {
        zone.set_span_tracing(true);
    }
    let mut ref_root = root();
    ref_root.set_span_tracing(true);
    for tick in 1..=TICKS {
        for zone in &mut ref_zones {
            zone.tick();
        }
        if tick % ROOT_EVERY == 0 {
            ref_root.run_round(&mut ref_zones, tick);
        }
    }

    // --- networked: the same zones behind ZoneNodes, spans armed ---
    let transport = transport();
    let nodes: Vec<ZoneNode> = build_zones().into_iter().map(ZoneNode::new).collect();
    for node in &nodes {
        node.with_zone(|zone| zone.set_span_tracing(true));
    }
    let mut handles = Vec::new();
    let mut remotes = Vec::new();
    for (z, node) in nodes.iter().enumerate() {
        let handle = node
            .serve(transport.as_ref(), &bind_endpoint(z))
            .expect("zone serves");
        let remote = RemoteZone::connect(transport.as_ref(), &handle.endpoint, 300.0)
            .expect("root connects");
        handles.push(handle);
        remotes.push(remote);
    }
    let mut net_root = root();
    net_root.set_span_tracing(true);
    for tick in 1..=TICKS {
        for remote in &mut remotes {
            remote.tick().expect("zone ticks over rpc");
        }
        if tick % ROOT_EVERY == 0 {
            net_root.run_round(&mut remotes, tick);
        }
    }

    // Span structure is deterministic and transport-invariant: the
    // whole forest (root + zones + member shards) is record-identical
    // across the two legs.
    let mut ref_spans = ref_root.span_log().to_vec();
    for zone in &ref_zones {
        ref_spans.extend(zone.all_spans());
    }
    let mut net_spans = net_root.span_log().to_vec();
    for node in &nodes {
        net_spans.extend(node.with_zone(|zone| zone.all_spans()));
    }
    let key = |s: &kairos_obs::SpanRecord| (s.trace_id, s.span_id);
    ref_spans.sort_by_key(key);
    net_spans.sort_by_key(key);
    assert!(!net_spans.is_empty(), "armed spans must record");
    assert_eq!(
        ref_spans, net_spans,
        "span structure diverged across transports"
    );

    // Pick a completed group move and find its round's trace id via
    // the root-level handoff span tagged with the group name.
    let completed = net_root
        .handoffs()
        .iter()
        .find(|r| r.outcome == HandoffOutcome::Completed)
        .expect("the overloaded zone must shed a group");
    let handoff_span = net_root
        .span_log()
        .to_vec()
        .into_iter()
        .find(|s| {
            s.name == "handoff"
                && s.tags
                    .iter()
                    .any(|(k, v)| k == "tenant" && v == &completed.tenant)
        })
        .expect("the completed move recorded a root handoff span");
    let trace_id = handoff_span.trace_id;

    // Queryable from any node: every zone answers the trace-id query
    // over RPC; the union plus the root's own spans assembles into
    // exactly one tree.
    let query = kairos_obs::TraceQuery::for_trace(trace_id);
    let mut result = kairos_obs::QueryResult::default();
    result.spans.extend(
        net_root
            .span_log()
            .to_vec()
            .into_iter()
            .filter(|s| s.trace_id == trace_id),
    );
    for handle in &handles {
        let mut conn = transport.connect(&handle.endpoint).expect("connects");
        match kairos_net::rpc::call(
            conn.as_mut(),
            &kairos_net::Request::Query {
                query: query.clone(),
            },
        ) {
            Ok(kairos_net::Response::Query(answer)) => result.merge(answer),
            other => panic!("Query RPC answered {other:?}"),
        }
    }
    let trees = kairos_obs::assemble_trees(&result.spans);
    assert_eq!(trees.len(), 1, "one round, one tree");
    let tree = &trees[0];
    assert_eq!(tree.span.name, "balance_round");
    let handoff = tree
        .children
        .iter()
        .find(|c| c.span.span_id == handoff_span.span_id)
        .expect("the handoff hangs off the round root");
    let zone_sides: Vec<&str> = handoff
        .children
        .iter()
        .map(|c| c.span.name.as_str())
        .collect();
    assert!(
        zone_sides.contains(&"zone_evict"),
        "donor zone span missing: {zone_sides:?}"
    );
    assert!(
        zone_sides.contains(&"zone_admit"),
        "receiver zone span missing: {zone_sides:?}"
    );
    let member_ops: usize = handoff
        .children
        .iter()
        .map(|zc| {
            zc.children
                .iter()
                .filter(|m| m.span.name == "evict" || m.span.name == "admit")
                .count()
        })
        .sum();
    assert!(
        member_ops >= 1,
        "member-shard evict/admit spans missing under the zone spans:\n{}",
        kairos_obs::render_span_tree(tree)
    );

    for handle in handles {
        handle.stop();
    }
}
