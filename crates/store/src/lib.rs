//! # kairos-store — durable snapshots for the control plane
//!
//! The fleet's planning horizon lives in rolling in-memory telemetry
//! (`kairos_traces::Rrd`); a controller crash used to erase it and force
//! conservative flat-envelope replanning. This crate is the persistence
//! contract between the monitoring and management layers: a small,
//! versioned, checksummed binary *frame* around the workspace codec
//! (`shims/serde`), plus atomic file save/load.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KSNP"
//! 4       4     format version (u32 LE, per snapshot kind)
//! 8       8     payload length (u64 LE)
//! 16      n     payload (shims/serde wire format)
//! 16+n    4     CRC-32 (IEEE, u32 LE) over bytes [0, 16+n)
//! ```
//!
//! ## Guarantees
//!
//! * **Atomicity** — [`save`] writes `<path>.tmp`, fsyncs, then renames
//!   over `<path>`: a crash mid-checkpoint leaves the previous complete
//!   snapshot (or nothing), never a torn file at the final path.
//! * **Corruption rejection** — [`load`]/[`decode_frame`] verify magic,
//!   version, length and CRC before any payload decoding, and the codec
//!   itself bounds-checks every read: truncated or bit-flipped snapshots
//!   yield a clean [`StoreError`], never a panic or a silent partial
//!   restore.
//! * **Versioning** — each snapshot kind carries its own format version;
//!   a mismatch is an explicit [`StoreError::UnsupportedVersion`], the
//!   hook for future migration logic.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic for every kairos snapshot frame.
pub const MAGIC: [u8; 4] = *b"KSNP";

/// Frame header length (magic + version + payload length).
const HEADER_LEN: usize = 16;

/// CRC trailer length.
const TRAILER_LEN: usize = 4;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (open/write/rename/read).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a kairos snapshot.
    BadMagic,
    /// Snapshot was written by an incompatible format version.
    UnsupportedVersion { found: u32, expected: u32 },
    /// Shorter than a complete frame, or payload length disagrees with
    /// the file size — a torn or truncated write.
    Truncated,
    /// CRC trailer does not match the frame contents — bit rot or a
    /// partial overwrite.
    ChecksumMismatch,
    /// The payload failed to decode despite a valid checksum (wrong
    /// snapshot kind, or an encoder/decoder bug).
    Corrupt(serde::Error),
    /// The decoded snapshot is internally inconsistent (e.g. a routing
    /// entry referencing a shard that is not in the snapshot).
    Inconsistent(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a kairos snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            StoreError::Truncated => write!(f, "snapshot truncated or torn"),
            StoreError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            StoreError::Corrupt(e) => write!(f, "snapshot payload corrupt: {e}"),
            StoreError::Inconsistent(why) => write!(f, "snapshot inconsistent: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<serde::Error> for StoreError {
    fn from(e: serde::Error) -> StoreError {
        StoreError::Corrupt(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Encode `value` into a complete frame (header + payload + CRC trailer).
pub fn encode_frame<T: Serialize + ?Sized>(version: u32, value: &T) -> Vec<u8> {
    let payload = serde::to_bytes(value);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate a frame (magic, version, length, CRC) and decode its payload.
pub fn decode_frame<T: Deserialize>(bytes: &[u8], expected_version: u32) -> Result<T, StoreError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice"));
    if version != expected_version {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            expected: expected_version,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("sized slice"));
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64));
    if expected_total != Some(bytes.len() as u64) {
        return Err(StoreError::Truncated);
    }
    let body_end = bytes.len() - TRAILER_LEN;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().expect("sized slice"));
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(serde::from_bytes(&bytes[HEADER_LEN..body_end])?)
}

/// Atomically write `value` as a framed snapshot at `path`:
/// temp-file-then-rename, with an fsync in between, so the final path
/// only ever holds a complete frame.
pub fn save<T: Serialize + ?Sized>(path: &Path, version: u32, value: &T) -> Result<(), StoreError> {
    let frame = encode_frame(version, value);
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&frame)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Durability of the rename itself: fsync the parent directory so the
    // new directory entry survives a power loss. Without this, a crash
    // shortly after `save` returns can roll the path back to the
    // *previous* checkpoint even though the caller was told this one
    // persisted.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Load and validate a framed snapshot from `path`. Partial, truncated
/// or bit-flipped files are rejected with a [`StoreError`]; the decode
/// itself never panics.
pub fn load<T: Deserialize>(path: &Path, expected_version: u32) -> Result<T, StoreError> {
    let bytes = fs::read(path)?;
    decode_frame(&bytes, expected_version)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let value = (String::from("tenant"), vec![1.5f64, -2.25], 42u64);
        let frame = encode_frame(3, &value);
        let back: (String, Vec<f64>, u64) = decode_frame(&frame, 3).expect("valid frame");
        assert_eq!(back, value);
    }

    #[test]
    fn version_mismatch_rejected() {
        let frame = encode_frame(2, &7u64);
        match decode_frame::<u64>(&frame, 3) {
            Err(StoreError::UnsupportedVersion {
                found: 2,
                expected: 3,
            }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(1, &7u64);
        frame[0] = b'X';
        assert!(matches!(
            decode_frame::<u64>(&frame, 1),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn every_truncation_point_rejected() {
        let frame = encode_frame(1, &vec![3u64, 1, 4, 1, 5]);
        for cut in 0..frame.len() {
            let r = decode_frame::<Vec<u64>>(&frame[..cut], 1);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let frame = encode_frame(1, &(String::from("abc"), 9u32));
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                let r = decode_frame::<(String, u32)>(&bad, 1);
                assert!(r.is_err(), "bit flip at {byte}:{bit} must fail");
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = encode_frame(1, &1u8);
        frame.push(0);
        assert!(matches!(
            decode_frame::<u8>(&frame, 1),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn save_then_load_roundtrips_and_leaves_no_temp() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("kairos-store-test-{}.ksnp", std::process::id()));
        let value = vec![(String::from("a"), 1u64), (String::from("b"), 2u64)];
        save(&path, 5, &value).expect("save");
        assert!(!tmp_path(&path).exists(), "temp file must be renamed away");
        let back: Vec<(String, u64)> = load(&path, 5).expect("load");
        assert_eq!(back, value);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_overwrites_atomically() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "kairos-store-overwrite-{}.ksnp",
            std::process::id()
        ));
        save(&path, 1, &1u64).expect("first save");
        save(&path, 1, &2u64).expect("second save");
        let back: u64 = load(&path, 1).expect("load");
        assert_eq!(back, 2);
        let _ = std::fs::remove_file(&path);
    }
}
