//! Error type shared across the workspace.

/// Unified error for Kairos operations.
#[derive(Debug, Clone, PartialEq)]
pub enum KairosError {
    /// The consolidation problem admits no feasible assignment (e.g. one
    /// workload alone exceeds every machine's capacity).
    Infeasible(String),
    /// A model was asked to extrapolate outside its calibrated domain.
    OutOfDomain(String),
    /// Malformed input (empty profile set, inconsistent sampling, ...).
    InvalidInput(String),
    /// A numeric routine failed to converge (singular fit, ...).
    Numerical(String),
    /// Simulated SQL-level failure (unknown table, ...).
    Sql(String),
}

impl std::fmt::Display for KairosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KairosError::Infeasible(m) => write!(f, "infeasible: {m}"),
            KairosError::OutOfDomain(m) => write!(f, "out of model domain: {m}"),
            KairosError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            KairosError::Numerical(m) => write!(f, "numerical failure: {m}"),
            KairosError::Sql(m) => write!(f, "sql error: {m}"),
        }
    }
}

impl std::error::Error for KairosError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, KairosError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = KairosError::Infeasible("needs 3 machines, have 2".into());
        assert!(e.to_string().contains("needs 3 machines"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&KairosError::Numerical("singular".into()));
    }
}
