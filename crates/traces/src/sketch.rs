//! Fixed-size, peak-preserving sketches of rolling telemetry windows.
//!
//! The balancer's decision inputs — shard summaries and handoff frames —
//! used to carry full RRD-backed series, so their wire size grew with the
//! monitoring window. A [`SeriesSketch`] compresses one series to a
//! constant-size triple of (exact extrema + evenly spaced quantile
//! marks, arithmetic mean, short verbatim tail): enough to preserve every
//! peak-driven balancing decision exactly and to reconstruct a
//! decision-equivalent window on the receiving side, while making
//! summary/handoff size independent of window length.
//!
//! Compression invariants (the "bounded objective gap" contract the
//! property suite pins):
//!
//! * **Peaks are exact.** `marks` always ends at the true series maximum
//!   and starts at the true minimum, and [`SeriesSketch::reconstruct`]
//!   re-emits the maximum verbatim — so capacity checks and
//!   heaviest-first candidate ordering see the same numbers with or
//!   without sketching.
//! * **The recent past is verbatim.** The last `tail` samples travel
//!   untouched; forecasts over the live window read real data.
//! * **Only the deep past is lossy.** Older samples are replayed from the
//!   quantile staircase, which preserves the distribution (and therefore
//!   envelope/mean statistics) but not sample order.
//!
//! Sketches are plain `serde` data; on the wire they ride the same
//! CRC-framed `kairos-store` envelope as every other kairos frame
//! (`SKETCH_WIRE_VERSION` gates layout changes).

use crate::aggregate::ShardAggregate;
use kairos_types::{percentile_of_sorted, TimeSeries};
use serde::{Deserialize, Serialize};

/// Frame version for standalone sketch frames
/// (`kairos_store::encode_frame(SKETCH_WIRE_VERSION, ..)`). Embedded
/// sketches (shard summaries, handoff frames) are covered by their
/// container's version instead.
pub const SKETCH_WIRE_VERSION: u32 = 1;

/// Hard ceiling on quantile marks a decoded sketch may carry — anything
/// larger is a corrupt or adversarial frame, not a real config.
pub const MAX_SKETCH_MARKS: u32 = 1024;
/// Hard ceiling on verbatim tail samples a decoded sketch may carry.
pub const MAX_SKETCH_TAIL: u32 = 65_536;

/// Sketch shape: how many evenly spaced quantile marks summarize the
/// distribution and how many most-recent samples travel verbatim.
///
/// The config is part of the balancer's decision surface: the shard
/// summary cache must be invalidated when it changes (see
/// `ShardController::set_sketch_config`), which is what
/// [`SketchConfig::digest`] keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SketchConfig {
    /// Evenly spaced quantile marks (first = min, last = max). At least 2.
    pub marks: u32,
    /// Most-recent samples preserved exactly.
    pub tail: u32,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        SketchConfig { marks: 9, tail: 32 }
    }
}

impl SketchConfig {
    /// A config whose verbatim tail covers `window` samples entirely —
    /// sketching under it is lossless for windows up to that length (the
    /// reference side of the sketched-vs-full equivalence property).
    pub fn lossless_for(window: usize) -> SketchConfig {
        SketchConfig {
            marks: SketchConfig::default().marks,
            tail: (window as u32).min(MAX_SKETCH_TAIL),
        }
    }

    fn valid(&self) -> bool {
        (2..=MAX_SKETCH_MARKS).contains(&self.marks) && self.tail <= MAX_SKETCH_TAIL
    }

    /// Stable fingerprint of the quantile set + tail size (SplitMix64
    /// finalizer over both fields). Summary caches key on it so a config
    /// change — not just a state change — invalidates cached roll-ups.
    pub fn digest(&self) -> u64 {
        let mut z =
            ((self.marks as u64) << 32 | self.tail as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Decoding re-checks what the constructors guarantee: a frame carrying
/// a degenerate mark count (or an absurd one) must surface as a decode
/// error, not as a panic when the quantile grid is next rebuilt.
impl Deserialize for SketchConfig {
    fn decode_from(input: &mut &[u8]) -> Result<SketchConfig, serde::Error> {
        let cfg = SketchConfig {
            marks: u32::decode_from(input)?,
            tail: u32::decode_from(input)?,
        };
        if !cfg.valid() {
            return Err(serde::Error::msg("sketch config: marks/tail out of range"));
        }
        Ok(cfg)
    }
}

/// Constant-size summary of one uniformly sampled series. See the module
/// docs for what is exact and what is lossy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesSketch {
    interval_secs: f64,
    /// Original series length in samples (reconstruction re-emits it).
    len: u64,
    /// Arithmetic mean of the original series.
    mean: f64,
    /// Ascending quantile marks; `marks[0]` = exact min, last = exact
    /// max. Empty iff `len == 0`.
    marks: Vec<f64>,
    /// Most-recent samples, verbatim. Never longer than `len`.
    tail: Vec<f64>,
}

/// Decode-time validation mirrors [`TimeSeries`]'s: reject anything a
/// constructor could not have produced (corrupt frames must fail here,
/// not poison balancing arithmetic downstream).
impl Deserialize for SeriesSketch {
    fn decode_from(input: &mut &[u8]) -> Result<SeriesSketch, serde::Error> {
        let interval_secs = f64::decode_from(input)?;
        let len = u64::decode_from(input)?;
        let mean = f64::decode_from(input)?;
        let marks = Vec::<f64>::decode_from(input)?;
        let tail = Vec::<f64>::decode_from(input)?;
        if !(interval_secs.is_finite() && interval_secs > 0.0) {
            return Err(serde::Error::msg("series sketch: non-positive interval"));
        }
        if !mean.is_finite() {
            return Err(serde::Error::msg("series sketch: non-finite mean"));
        }
        if marks.len() > MAX_SKETCH_MARKS as usize || tail.len() > MAX_SKETCH_TAIL as usize {
            return Err(serde::Error::msg("series sketch: oversized mark/tail set"));
        }
        if marks.is_empty() != (len == 0) || tail.len() as u64 > len {
            return Err(serde::Error::msg(
                "series sketch: length bookkeeping broken",
            ));
        }
        if marks.windows(2).any(|w| w[0] > w[1]) || marks.iter().any(|m| !m.is_finite()) {
            return Err(serde::Error::msg(
                "series sketch: marks not finite ascending",
            ));
        }
        if tail.iter().any(|v| !v.is_finite()) {
            return Err(serde::Error::msg("series sketch: non-finite tail sample"));
        }
        Ok(SeriesSketch {
            interval_secs,
            len,
            mean,
            marks,
            tail,
        })
    }
}

impl SeriesSketch {
    /// Sketch one series under `cfg`. Size is `cfg.marks + min(cfg.tail,
    /// series.len())` floats regardless of window length.
    pub fn of(series: &TimeSeries, cfg: &SketchConfig) -> SeriesSketch {
        assert!(cfg.valid(), "sketch config out of range");
        let values = series.values();
        if values.is_empty() {
            return SeriesSketch::empty(series.interval_secs());
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in telemetry series"));
        let m = cfg.marks as usize;
        let mut marks = Vec::with_capacity(m);
        for i in 0..m {
            marks.push(percentile_of_sorted(
                &sorted,
                100.0 * i as f64 / (m - 1) as f64,
            ));
        }
        // Interpolation is monotone up to rounding, but the wire format's
        // "finite ascending" invariant is *hard* (decoders reject
        // violations), so enforce it structurally: clamp every mark into
        // the exact extrema, then sweep a running max so one rounding
        // wobble can't produce a descending pair.
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let mut prev = min;
        for mark in marks.iter_mut() {
            *mark = mark.clamp(min, max).max(prev);
            prev = *mark;
        }
        marks[0] = min;
        marks[m - 1] = max;
        let tail_len = (cfg.tail as usize).min(values.len());
        SeriesSketch {
            interval_secs: series.interval_secs(),
            len: values.len() as u64,
            mean: series.mean(),
            marks,
            tail: values[values.len() - tail_len..].to_vec(),
        }
    }

    /// The sketch of an empty window.
    pub fn empty(interval_secs: f64) -> SeriesSketch {
        assert!(
            interval_secs.is_finite() && interval_secs > 0.0,
            "sketch interval must be positive"
        );
        SeriesSketch {
            interval_secs,
            len: 0,
            mean: 0.0,
            marks: Vec::new(),
            tail: Vec::new(),
        }
    }

    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// Original window length in samples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact series maximum (0.0 when empty — matching
    /// [`TimeSeries::max`]).
    pub fn peak(&self) -> f64 {
        self.marks.last().copied().unwrap_or(0.0).max(0.0)
    }

    /// Exact series minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.marks.first().copied().unwrap_or(0.0)
    }

    /// Exact arithmetic mean of the original series.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Ascending quantile marks (empty iff the window was empty).
    pub fn marks(&self) -> &[f64] {
        &self.marks
    }

    /// The verbatim recent samples.
    pub fn tail(&self) -> &[f64] {
        &self.tail
    }

    /// Rebuild a same-length window: the tail verbatim at the end, the
    /// older prefix replayed from the quantile staircase with the exact
    /// maximum re-emitted first — so the reconstruction's peak always
    /// equals the original's (when the tail covers the whole window the
    /// reconstruction is the original, bit for bit).
    pub fn reconstruct(&self) -> TimeSeries {
        let n = self.len as usize;
        let mut out = Vec::with_capacity(n);
        let prefix = n - self.tail.len();
        for i in 0..prefix {
            if i == 0 {
                out.push(*self.marks.last().expect("non-empty sketch has marks"));
            } else {
                out.push(self.marks[i % self.marks.len()]);
            }
        }
        out.extend_from_slice(&self.tail);
        TimeSeries::new(self.interval_secs, out)
    }

    /// Elementwise-conservative sum of sketches — the zone roll-up. The
    /// summed peak is the sum of peaks (an upper bound on the true peak
    /// of the summed series: simultaneous worst cases), tails sum
    /// tail-aligned, and quantile staircases add index-mapped. Empty
    /// inputs contribute nothing; an all-empty input yields
    /// [`SeriesSketch::empty`] at `fallback_interval`.
    pub fn sum<'a, I>(sketches: I, fallback_interval: f64) -> SeriesSketch
    where
        I: IntoIterator<Item = &'a SeriesSketch>,
    {
        let live: Vec<&SeriesSketch> = sketches.into_iter().filter(|s| !s.is_empty()).collect();
        if live.is_empty() {
            return SeriesSketch::empty(fallback_interval);
        }
        let interval = live[0].interval_secs;
        let len = live.iter().map(|s| s.len).max().expect("non-empty");
        let mean = live.iter().map(|s| s.mean).sum();
        let m_out = live.iter().map(|s| s.marks.len()).max().expect("non-empty");
        let mut marks = vec![0.0f64; m_out];
        for s in &live {
            for (i, slot) in marks.iter_mut().enumerate() {
                // Index-map this sketch's (possibly smaller) grid onto the
                // output grid; monotone in `i`, so the sum stays ascending.
                let j = if m_out == 1 {
                    0
                } else {
                    (i * (s.marks.len() - 1) + (m_out - 1) / 2) / (m_out - 1)
                };
                *slot += s.marks[j];
            }
        }
        let tail_len = live.iter().map(|s| s.tail.len()).max().expect("non-empty");
        let mut tail = vec![0.0f64; tail_len];
        for s in &live {
            let offset = tail_len - s.tail.len();
            for (i, v) in s.tail.iter().enumerate() {
                tail[offset + i] += v;
            }
        }
        SeriesSketch {
            interval_secs: interval,
            len,
            mean,
            marks,
            tail,
        }
    }
}

/// The sketched counterpart of [`ShardAggregate`]: the four summed
/// per-resource windows a shard summary carries, at constant size. Same
/// series order and [`peaks`](AggregateSketch::peaks) contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSketch {
    pub cpu_cores: SeriesSketch,
    pub ram_bytes: SeriesSketch,
    pub ws_bytes: SeriesSketch,
    pub rate_rows: SeriesSketch,
    /// Number of tenants rolled up.
    pub tenants: usize,
}

impl AggregateSketch {
    /// Sketch a full shard aggregate under `cfg`.
    pub fn of(aggregate: &ShardAggregate, cfg: &SketchConfig) -> AggregateSketch {
        AggregateSketch {
            cpu_cores: SeriesSketch::of(&aggregate.cpu_cores, cfg),
            ram_bytes: SeriesSketch::of(&aggregate.ram_bytes, cfg),
            ws_bytes: SeriesSketch::of(&aggregate.ws_bytes, cfg),
            rate_rows: SeriesSketch::of(&aggregate.rate_rows, cfg),
            tenants: aggregate.tenants,
        }
    }

    /// The roll-up of an empty shard (no tenants, no samples).
    pub fn empty(interval_secs: f64) -> AggregateSketch {
        AggregateSketch {
            cpu_cores: SeriesSketch::empty(interval_secs),
            ram_bytes: SeriesSketch::empty(interval_secs),
            ws_bytes: SeriesSketch::empty(interval_secs),
            rate_rows: SeriesSketch::empty(interval_secs),
            tenants: 0,
        }
    }

    /// Exact peaks `[cpu cores, ram bytes, working-set bytes, update
    /// rows/sec]` — the same contract as [`ShardAggregate::peaks`].
    pub fn peaks(&self) -> [f64; 4] {
        [
            self.cpu_cores.peak(),
            self.ram_bytes.peak(),
            self.ws_bytes.peak(),
            self.rate_rows.peak(),
        ]
    }

    /// Conservative sum across shards — what a zone presents one level
    /// up. Peaks add (upper bound), tenant counts add.
    pub fn sum<'a, I>(aggregates: I, fallback_interval: f64) -> AggregateSketch
    where
        I: IntoIterator<Item = &'a AggregateSketch>,
    {
        let all: Vec<&AggregateSketch> = aggregates.into_iter().collect();
        AggregateSketch {
            cpu_cores: SeriesSketch::sum(all.iter().map(|a| &a.cpu_cores), fallback_interval),
            ram_bytes: SeriesSketch::sum(all.iter().map(|a| &a.ram_bytes), fallback_interval),
            ws_bytes: SeriesSketch::sum(all.iter().map(|a| &a.ws_bytes), fallback_interval),
            rate_rows: SeriesSketch::sum(all.iter().map(|a| &a.rate_rows), fallback_interval),
            tenants: all.iter().map(|a| a.tenants).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        TimeSeries::new(300.0, (0..n).map(|i| i as f64 * 0.01).collect())
    }

    #[test]
    fn size_is_independent_of_window_length() {
        let cfg = SketchConfig::default();
        let small = serde::to_bytes(&SeriesSketch::of(&ramp(64), &cfg));
        let large = serde::to_bytes(&SeriesSketch::of(&ramp(4096), &cfg));
        assert_eq!(small.len(), large.len());
    }

    #[test]
    fn peak_min_mean_are_exact() {
        let s = TimeSeries::new(300.0, vec![0.2, 3.5, 0.1, 2.0, 0.4]);
        let sk = SeriesSketch::of(&s, &SketchConfig::default());
        assert_eq!(sk.peak(), 3.5);
        assert_eq!(sk.min(), 0.1);
        assert!((sk.mean() - s.mean()).abs() < 1e-12);
    }

    #[test]
    fn reconstruct_preserves_len_interval_and_peak() {
        let cfg = SketchConfig { marks: 5, tail: 8 };
        let s = ramp(200);
        let sk = SeriesSketch::of(&s, &cfg);
        let back = sk.reconstruct();
        assert_eq!(back.len(), 200);
        assert_eq!(back.interval_secs(), 300.0);
        assert_eq!(back.max(), s.max());
        // The verbatim tail survives bit for bit.
        assert_eq!(&back.values()[192..], &s.values()[192..]);
    }

    #[test]
    fn reconstruct_is_exact_when_tail_covers_window() {
        let s = ramp(40);
        let sk = SeriesSketch::of(&s, &SketchConfig::lossless_for(40));
        assert_eq!(sk.reconstruct(), s);
    }

    #[test]
    fn empty_series_roundtrips() {
        let sk = SeriesSketch::of(&TimeSeries::empty(300.0), &SketchConfig::default());
        assert!(sk.is_empty());
        assert_eq!(sk.peak(), 0.0);
        assert_eq!(sk.reconstruct().len(), 0);
    }

    #[test]
    fn sum_is_peak_conservative() {
        let a = SeriesSketch::of(&ramp(100), &SketchConfig::default());
        let b = SeriesSketch::of(
            &TimeSeries::constant(300.0, 2.0, 50),
            &SketchConfig::default(),
        );
        let total = SeriesSketch::sum([&a, &b], 300.0);
        assert!((total.peak() - (a.peak() + b.peak())).abs() < 1e-12);
        assert_eq!(total.len(), 100);
        let empty_sum = SeriesSketch::sum([], 60.0);
        assert!(empty_sum.is_empty());
        assert_eq!(empty_sum.interval_secs(), 60.0);
    }

    #[test]
    fn config_digest_tracks_quantile_set_and_tail() {
        let base = SketchConfig::default();
        assert_eq!(base.digest(), SketchConfig::default().digest());
        assert_ne!(base.digest(), SketchConfig { marks: 17, ..base }.digest());
        assert_ne!(base.digest(), SketchConfig { tail: 64, ..base }.digest());
    }

    #[test]
    fn decode_rejects_degenerate_configs_and_broken_sketches() {
        // marks < 2 could never come from a constructor.
        let bad = serde::to_bytes(&(1u32, 8u32));
        assert!(serde::from_bytes::<SketchConfig>(&bad).is_err());
        // A sketch whose tail claims more samples than the series held.
        let mut sk = SeriesSketch::of(&ramp(10), &SketchConfig::default());
        sk.len = 3;
        assert!(serde::from_bytes::<SeriesSketch>(&serde::to_bytes(&sk)).is_err());
        // Non-ascending marks.
        let mut sk = SeriesSketch::of(&ramp(10), &SketchConfig::default());
        sk.marks.swap(0, 1);
        assert!(serde::from_bytes::<SeriesSketch>(&serde::to_bytes(&sk)).is_err());
    }

    #[test]
    fn constant_series_sketches_to_exactly_constant_marks() {
        // Regression: the two-product lerp formerly used by
        // `percentile_of_sorted` could round an interior mark *below*
        // both bracket endpoints on an all-equal window (seen in the
        // chaos suite as a snapshot-restore decode rejection: "marks not
        // finite ascending"). A constant series must sketch to marks
        // that are bit-identical to the constant, and every sketch must
        // survive a serde round-trip.
        let v = 7.420000000000001_f64;
        for n in 1..=16usize {
            let s = TimeSeries::new(300.0, vec![v; n]);
            let sk = SeriesSketch::of(&s, &SketchConfig::default());
            assert!(
                sk.marks().iter().all(|m| m.to_bits() == v.to_bits()),
                "n={n}: marks {:?} must all equal the constant",
                sk.marks()
            );
            let back = serde::from_bytes::<SeriesSketch>(&serde::to_bytes(&sk))
                .expect("constructor-produced sketch must decode");
            assert_eq!(back, sk);
        }
    }

    #[test]
    fn every_constructed_sketch_satisfies_the_wire_invariant() {
        // Brute monotonicity sweep over rounding-hostile windows: near
        // -equal values differing in the last ulp, mixed signs, tiny and
        // huge magnitudes. Every sketch `of` builds must decode.
        let ulp = f64::EPSILON;
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0 + ulp; 8],
            vec![1.0, 1.0 + ulp, 1.0, 1.0 + ulp, 1.0, 1.0 + ulp, 1.0],
            vec![-7.42, -7.420000000000001, -7.42, -7.420000000000001],
            vec![1e-300; 5],
            vec![1e300, 1e300, 1e300],
            vec![-0.0, 0.0, -0.0, 0.0, -0.0],
        ];
        for (i, values) in cases.into_iter().enumerate() {
            for marks in [2u32, 3, 5, 9, 17] {
                let cfg = SketchConfig { marks, tail: 4 };
                let sk = SeriesSketch::of(&TimeSeries::new(300.0, values.clone()), &cfg);
                assert!(
                    serde::from_bytes::<SeriesSketch>(&serde::to_bytes(&sk)).is_ok(),
                    "case {i} marks={marks}: {:?} violates the wire invariant",
                    sk.marks()
                );
            }
        }
    }

    #[test]
    fn aggregate_sketch_matches_full_aggregate_peaks() {
        let w1 = [ramp(48), ramp(48), ramp(48), ramp(48)];
        let w2 = [
            TimeSeries::constant(300.0, 1.5, 24),
            TimeSeries::constant(300.0, 2.5, 24),
            TimeSeries::constant(300.0, 2.5, 24),
            TimeSeries::constant(300.0, 9.0, 24),
        ];
        let full = ShardAggregate::from_windows(vec![&w1, &w2], 300.0);
        let sk = AggregateSketch::of(&full, &SketchConfig::default());
        assert_eq!(sk.peaks(), full.peaks());
        assert_eq!(sk.tenants, 2);
    }
}
