//! The pluggable transport boundary.
//!
//! A [`Transport`] hands out two things: a server side ([`Transport::serve`]
//! — register a handler at an endpoint) and a client side
//! ([`Transport::connect`] — a [`Conn`] that ships one request frame and
//! blocks for one response frame). Everything above this trait —
//! [`crate::ShardNode`], [`crate::BalancerNode`], the RPC catalog — is
//! backend-agnostic; everything below it is one of two backends:
//!
//! * [`crate::LoopbackTransport`] — deterministic in-memory dispatch with
//!   injectable drops, partitions and frame corruption, for tests and
//!   for running a whole fleet in one process over the *same* RPC code
//!   path a real deployment uses;
//! * [`crate::TcpTransport`] — `std::net` blocking sockets, one thread
//!   per connection (no async runtime; matches the workspace's
//!   `std::thread::scope` architecture).
//!
//! The call model is deliberately strict request/response over a private
//! connection: no pipelining, no multiplexing, no reordering. That keeps
//! delivery order equal to call order, which is what lets the loopback
//! fleet be tick-for-tick identical to the in-process `FleetController`
//! and keeps the TCP backend trivially correct.

use std::sync::{Arc, Mutex};

/// Why an RPC (or a frame validation) failed.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, bind).
    Io(std::io::Error),
    /// The bytes do not start with [`crate::frame::NET_MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion { found: u32, expected: u32 },
    /// Shorter than a complete frame, or the length prefix disagrees
    /// with the byte count — a torn or truncated message.
    Truncated,
    /// The payload length prefix exceeds the sanity cap.
    Oversized(u64),
    /// CRC trailer mismatch — the frame was damaged in flight.
    ChecksumMismatch,
    /// The payload failed to decode despite a valid checksum.
    Decode(serde::Error),
    /// The endpoint is not being served (or is partitioned away).
    Unreachable(String),
    /// The message was dropped by injected fault (loopback testing).
    Dropped,
    /// The peer answered with an error response.
    Remote(String),
    /// The peer answered with a response of the wrong kind.
    Protocol(String),
    /// The frame's shared-secret tag failed verification (or was
    /// absent on a keyed deployment) — rejected before any decoding.
    AuthRejected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::BadMagic => write!(f, "not a kairos RPC frame (bad magic)"),
            NetError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported RPC version {found} (expected {expected})")
            }
            NetError::Truncated => write!(f, "RPC frame truncated or torn"),
            NetError::Oversized(n) => write!(f, "RPC frame claims {n}-byte payload (over cap)"),
            NetError::ChecksumMismatch => write!(f, "RPC frame checksum mismatch"),
            NetError::Decode(e) => write!(f, "RPC payload corrupt: {e}"),
            NetError::Unreachable(ep) => write!(f, "endpoint {ep} unreachable"),
            NetError::Dropped => write!(f, "message dropped (injected fault)"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::AuthRejected => {
                write!(f, "RPC frame failed shared-secret authentication")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// A server-side message handler: one request frame in, one response
/// frame out. Wrapped in `Arc<Mutex<..>>` because a TCP server invokes
/// it from per-connection threads; the mutex serializes dispatch, which
/// both backends rely on for the strict in-order call model.
pub type Handler = Arc<Mutex<dyn FnMut(&[u8]) -> Vec<u8> + Send>>;

/// One client connection: ship a request frame, block for the response
/// frame. Implementations time out rather than hang forever on a dead
/// peer (the loopback fails immediately; TCP uses socket timeouts).
pub trait Conn: Send {
    fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError>;
    /// The endpoint this connection targets (diagnostics).
    fn endpoint(&self) -> &str;
}

/// A running server registration. Dropping it (or calling
/// [`ServerHandle::stop`]) unbinds the endpoint; for TCP the accept
/// thread is joined.
pub struct ServerHandle {
    /// The endpoint actually being served — for TCP with a `:0` bind
    /// request, this carries the kernel-assigned port.
    pub endpoint: String,
    stop: Option<Box<dyn FnOnce() + Send>>,
}

impl ServerHandle {
    pub fn new(endpoint: String, stop: impl FnOnce() + Send + 'static) -> ServerHandle {
        ServerHandle {
            endpoint,
            stop: Some(Box::new(stop)),
        }
    }

    /// Unbind the endpoint and release server resources.
    pub fn stop(mut self) {
        if let Some(stop) = self.stop.take() {
            stop();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            stop();
        }
    }
}

/// The pluggable boundary. Object-safe on purpose: nodes hold an
/// `Arc<dyn Transport>` so the same `ShardNode`/`BalancerNode` code runs
/// over loopback in tests and TCP in the multi-process example.
pub trait Transport: Send + Sync {
    /// Register `handler` at `endpoint`; returns the handle that keeps
    /// it served (with the actual endpoint, e.g. a resolved `:0` port).
    fn serve(&self, endpoint: &str, handler: Handler) -> Result<ServerHandle, NetError>;
    /// Open a client connection to `endpoint`.
    fn connect(&self, endpoint: &str) -> Result<Box<dyn Conn>, NetError>;
}
