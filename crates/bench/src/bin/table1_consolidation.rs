//! Table 1 — impact of consolidation on performance: six experiments,
//! each measured standalone (w/o consolidation) and co-located (w/
//! consolidation), with the engine's recommendation.
//!
//! Expected shape: experiments 1–4 are recommended, keep full throughput,
//! and add only a few ms of latency; experiments 5–6 are *not*
//! recommended, and co-locating them anyway collapses throughput and
//! blows up latency.

use kairos_bench::{fit_wide_disk_model, print_table, quick, section};
use kairos_core::{ConsolidationEngine, Kairos, PipelineConfig};
use kairos_types::Bytes;
use kairos_workloads::{TpccWorkload, WikipediaWorkload, Workload};
use std::sync::Arc;

struct Experiment {
    id: usize,
    label: String,
    factories: Vec<Box<dyn Fn() -> Box<dyn Workload>>>,
}

fn tpcc(warehouses: u32, tps: f64, tag: usize) -> Box<dyn Fn() -> Box<dyn Workload>> {
    Box::new(move || {
        Box::new(TpccWorkload::new(warehouses, tps).named(format!("tpcc-{warehouses}w-{tag}")))
    })
}

fn wiki(pages_k: u64, tps: f64) -> Box<dyn Fn() -> Box<dyn Workload>> {
    Box::new(move || Box::new(WikipediaWorkload::new(pages_k, tps)))
}

fn experiments() -> Vec<Experiment> {
    let mut out = Vec::new();
    // 1: TPC-C 10w @50 + Wikipedia @100.
    out.push(Experiment {
        id: 1,
        label: "tpcc(10w)@50 + wiki(100Kp)@100".into(),
        factories: vec![tpcc(10, 50.0, 0), wiki(100, 100.0)],
    });
    // 2: TPC-C 10w @250 + Wikipedia @500.
    out.push(Experiment {
        id: 2,
        label: "tpcc(10w)@250 + wiki(100Kp)@500".into(),
        factories: vec![tpcc(10, 250.0, 0), wiki(100, 500.0)],
    });
    // 3: 5 × TPC-C 10w @100.
    out.push(Experiment {
        id: 3,
        label: "5x tpcc(10w)@100".into(),
        factories: (0..5).map(|i| tpcc(10, 100.0, i)).collect(),
    });
    // 4: 8 × TPC-C 10w @50 + Wikipedia @50.
    let mut f: Vec<Box<dyn Fn() -> Box<dyn Workload>>> =
        (0..8).map(|i| tpcc(10, 50.0, i)).collect();
    f.push(wiki(100, 50.0));
    out.push(Experiment {
        id: 4,
        label: "8x tpcc(10w)@50 + wiki(100Kp)@50".into(),
        factories: f,
    });
    // 5: 5 × TPC-C 10w @400 — disk-bound, not recommended.
    out.push(Experiment {
        id: 5,
        label: "5x tpcc(10w)@400".into(),
        factories: (0..5).map(|i| tpcc(10, 400.0, i)).collect(),
    });
    // 6: 8 × TPC-C 10w @100 + Wikipedia @100 — not recommended.
    let mut f: Vec<Box<dyn Fn() -> Box<dyn Workload>>> =
        (0..8).map(|i| tpcc(10, 100.0, i)).collect();
    f.push(wiki(100, 100.0));
    out.push(Experiment {
        id: 6,
        label: "8x tpcc(10w)@100 + wiki(100Kp)@100".into(),
        factories: f,
    });
    out
}

fn main() {
    let observe = if quick() { 30.0 } else { 60.0 };
    // Co-located verification must outlast the checkpoint-stall transient
    // (a 512 MB redo log fills in ~100 s at the not-recommended rates).
    let verify_warmup = if quick() { 60.0 } else { 150.0 };
    let measure = if quick() { 40.0 } else { 60.0 };

    section("Table 1: fitting disk model for recommendations");
    let model = Arc::new(fit_wide_disk_model());
    let engine = ConsolidationEngine::builder()
        .disk_model(model)
        .headroom(0.9)
        .build();

    let pipeline = Kairos::new(PipelineConfig {
        source_buffer_pool: Bytes::gib(8),
        target_buffer_pool: Bytes::gib(24),
        observe_secs: observe,
        warmup_secs: 20.0,
        monitor_interval_secs: 5.0,
        gauge: false, // RAM needs come from workload specs; Table 2 covers gauging
        ..Default::default()
    });

    let mut rows = Vec::new();
    for exp in experiments() {
        section(&format!("experiment {}: {}", exp.id, exp.label));
        // Standalone observations (w/o consolidation).
        let mut profiles = Vec::new();
        let mut solo = Vec::new();
        for f in &exp.factories {
            let obs = pipeline.observe(f());
            solo.push((obs.standalone_tps, obs.standalone_latency_secs));
            // Without gauging the OS view would claim the whole pool; use
            // the true working set instead (the gauged value, which Fig 2
            // / Table 2 show gauging recovers accurately).
            let w = f();
            let ws = w.working_set();
            let mut p = obs.profile.clone();
            p.ram_bytes = kairos_types::TimeSeries::constant(
                p.interval_secs(),
                (ws + Bytes::mib(190)).as_f64(),
                p.windows(),
            );
            p.disk_working_set_bytes =
                kairos_types::TimeSeries::constant(p.interval_secs(), ws.as_f64(), p.windows());
            profiles.push(p);
        }
        let recommended = engine.fits_together(&profiles).unwrap_or(false);

        // Co-located run (w/ consolidation), regardless of recommendation —
        // the paper does the same to show what happens when ignored.
        let verify_pipeline = Kairos::new(PipelineConfig {
            warmup_secs: verify_warmup,
            ..pipeline.config.clone()
        });
        let colocated =
            verify_pipeline.verify_colocated(exp.factories.iter().map(|f| f()).collect(), measure);

        let solo_tps: f64 = solo.iter().map(|s| s.0).sum();
        let solo_lat = solo.iter().map(|s| s.1).sum::<f64>() / solo.len() as f64;
        let cons_tps: f64 = colocated.iter().map(|v| v.tps).sum();
        let cons_lat =
            colocated.iter().map(|v| v.mean_latency_secs).sum::<f64>() / colocated.len() as f64;

        println!(
            "  recommended: {}, solo {:.0} tps @ {:.0} ms, consolidated {:.0} tps @ {:.0} ms",
            recommended,
            solo_tps,
            solo_lat * 1e3,
            cons_tps,
            cons_lat * 1e3
        );
        rows.push(vec![
            exp.id.to_string(),
            exp.label.clone(),
            if recommended { "yes" } else { "NO" }.to_string(),
            format!("{:.0}", solo_tps),
            format!("{:.0}", cons_tps),
            format!("{:.0}", solo_lat * 1e3),
            format!("{:.0}", cons_lat * 1e3),
        ]);
    }

    section("Table 1 summary");
    print_table(
        &[
            "id",
            "workloads",
            "recommend",
            "tps w/o",
            "tps w/",
            "lat w/o (ms)",
            "lat w/ (ms)",
        ],
        &rows,
    );
}
