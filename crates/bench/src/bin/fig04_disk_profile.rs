//! Figure 4 — the empirical disk model: disk write throughput (MB/s) over
//! the (working-set size × rows-updated/s) plane, plus the quadratic
//! saturation frontier (the dashed line / black circles).
//!
//! Expected shape: writes grow sub-linearly with update rate (coalescing),
//! grow with working-set size at a fixed rate, and the maximum sustainable
//! rate falls as working sets grow.

use kairos_bench::{mbps, print_table, quick, section};
use kairos_diskmodel::{run_profiler, DiskModel, ProfilerConfig, Quadratic};
use kairos_types::{Bytes, DiskDemand, Rate};

fn main() {
    let cfg = if quick() {
        ProfilerConfig {
            ws_points: (0..4).map(|i| Bytes::mib(1024 + i * 768)).collect(),
            rate_points: (1..=5).map(|i| i as f64 * 7_000.0).collect(),
            settle_secs: 30.0,
            measure_secs: 12.0,
            ..ProfilerConfig::paper_like()
        }
    } else {
        ProfilerConfig {
            ws_points: (0..6).map(|i| Bytes::mib(1024 + i * 512)).collect(),
            rate_points: (1..=10).map(|i| i as f64 * 4_000.0).collect(),
            ..ProfilerConfig::paper_like()
        }
    };
    section(&format!(
        "Figure 4: profiling {} (ws, rate) points on {}",
        cfg.ws_points.len() * cfg.rate_points.len(),
        cfg.machine.name
    ));
    let profile = run_profiler(&cfg);

    // The response map: rows = working set, cols = offered rate.
    let mut rows = Vec::new();
    for &ws in &cfg.ws_points {
        let mut row = vec![format!("{:.0}", ws.as_mib())];
        for &rate in &cfg.rate_points {
            let p = profile
                .points
                .iter()
                .filter(|p| (p.ws_bytes - ws.as_f64()).abs() < 1.0)
                .min_by(|a, b| {
                    let da = (a.rows_per_sec - rate).abs();
                    let db = (b.rows_per_sec - rate).abs();
                    da.partial_cmp(&db).expect("NaN")
                })
                .expect("point exists");
            let marker = if p.saturated() { "*" } else { "" };
            row.push(format!("{}{}", mbps(p.write_bytes_per_sec), marker));
        }
        rows.push(row);
    }
    let rate_headers: Vec<String> = cfg
        .rate_points
        .iter()
        .map(|r| format!("{:.0}r/s", r))
        .collect();
    let mut headers: Vec<&str> = vec!["ws MiB"];
    headers.extend(rate_headers.iter().map(|s| s.as_str()));
    section("disk writes MB/s (rows: working set, cols: offered update rate; * = saturated)");
    print_table(&headers, &rows);

    // Saturation frontier (black circles) + quadratic fit (dashed line).
    section("saturation frontier: max achieved rows/s per working set");
    let sat = profile.saturation_points();
    let q = Quadratic::fit(&sat).expect("frontier fit");
    let mut rows = Vec::new();
    for &(ws, rate) in &sat {
        rows.push(vec![
            format!("{:.0}", ws / 1024.0 / 1024.0),
            format!("{:.0}", rate),
            format!("{:.0}", q.eval(ws)),
        ]);
    }
    print_table(&["ws MiB", "max rows/s", "quadratic fit"], &rows);

    // The fitted LAR polynomial (the contour surface).
    let model = DiskModel::fit(&profile).expect("model fits");
    section("LAR second-order polynomial spot checks (predicted vs measured MB/s)");
    let mut rows = Vec::new();
    for p in profile.points.iter().filter(|p| !p.saturated()).step_by(7) {
        let pred = model.predict_write_bytes(DiskDemand::new(
            Bytes(p.ws_bytes as u64),
            Rate(p.rows_per_sec),
        ));
        let err = (pred - p.write_bytes_per_sec).abs() / p.write_bytes_per_sec.max(1.0);
        rows.push(vec![
            format!("{:.0}", p.ws_bytes / 1024.0 / 1024.0),
            format!("{:.0}", p.rows_per_sec),
            mbps(p.write_bytes_per_sec),
            mbps(pred),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    print_table(
        &["ws MiB", "rows/s", "measured", "predicted", "rel err"],
        &rows,
    );
}
