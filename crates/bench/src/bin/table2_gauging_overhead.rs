//! Table 2 — impact of probing on user-perceived performance: the
//! Wikipedia benchmark on a 16 GB buffer pool (2.2 GB working set),
//! measured with and without concurrent buffer-pool gauging at several
//! target request rates.
//!
//! Expected shape: throughput unchanged at sub-saturation rates, a small
//! throughput dip at MAX, and a few ms of added latency across the board.

use kairos_bench::{print_table, quick, section};
use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::{BufferGauge, GaugeParams, SimGaugeEnv};
use kairos_types::{Bytes, MachineSpec};
use kairos_workloads::{Driver, WikipediaWorkload};

struct Measured {
    tps: f64,
    latency_ms: f64,
}

fn build(pool: Bytes, pages_k: u64, tps: f64) -> (Host, Driver) {
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(pool)));
    let mut driver = Driver::new();
    driver.bind(&mut host, 0, Box::new(WikipediaWorkload::new(pages_k, tps)));
    (host, driver)
}

fn measure_interval(host: &Host, f: impl FnOnce()) -> (f64, f64, f64) {
    let before = host.instance(0).stats();
    f();
    (
        before.committed_txns,
        before.latency_weighted_secs,
        before.sim_secs,
    )
}

fn run_without(pool: Bytes, pages_k: u64, tps: f64, secs: f64) -> Measured {
    let (mut host, mut driver) = build(pool, pages_k, tps);
    driver.warmup(&mut host, 20.0);
    let (c0, l0, t0) = measure_interval(&host, || {});
    driver.warmup(&mut host, secs);
    let s = host.instance(0).stats();
    let committed = s.committed_txns - c0;
    let lat = (s.latency_weighted_secs - l0) / committed.max(1e-9);
    Measured {
        tps: committed / (s.sim_secs - t0),
        latency_ms: lat * 1e3,
    }
}

/// Run with gauging concurrently; returns workload stats during gauging +
/// gauge outcome (duration, growth rate, working-set estimate).
fn run_with(pool: Bytes, pages_k: u64, tps: f64) -> (Measured, f64, f64, Bytes) {
    let (mut host, mut driver) = build(pool, pages_k, tps);
    let db = driver.bindings()[0].handle.db;
    driver.warmup(&mut host, 20.0);

    let s0 = host.instance(0).stats();
    let outcome = {
        let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
        BufferGauge::new(GaugeParams {
            initial_step_pages: 2048,
            max_step_pages: 8192,
            scans_per_insert: 1,
            read_wait_secs: 3.0,
            window_secs: 6.0,
            ..Default::default()
        })
        .run(&mut env)
    };
    let s1 = host.instance(0).stats();
    let committed = s1.committed_txns - s0.committed_txns;
    let lat = (s1.latency_weighted_secs - s0.latency_weighted_secs) / committed.max(1e-9);
    (
        Measured {
            tps: committed / (s1.sim_secs - s0.sim_secs),
            latency_ms: lat * 1e3,
        },
        outcome.duration_secs,
        outcome.growth_bytes_per_sec(),
        outcome.working_set,
    )
}

fn main() {
    let (pool, pages_k) = if quick() {
        (Bytes::gib(6), 50)
    } else {
        (Bytes::gib(16), 100)
    };
    section(&format!(
        "Table 2: Wikipedia {}K pages, {} buffer pool, gauging overhead",
        pages_k, pool
    ));

    let max_rate = 3_000.0;
    let rates: Vec<(String, f64)> = vec![
        ("200 tps".into(), 200.0),
        ("600 tps".into(), 600.0),
        ("1000 tps".into(), 1000.0),
        ("MAX".into(), max_rate),
    ];

    let mut rows = Vec::new();
    for (label, rate) in rates {
        let (with, duration, growth, ws) = run_with(pool, pages_k, rate);
        let without = run_without(pool, pages_k, rate, duration.min(120.0));
        println!(
            "  {label}: gauging took {:.0}s sim at {:.1} MB/s probe growth; ws estimate {}",
            duration,
            growth / 1e6,
            ws
        );
        rows.push(vec![
            label,
            format!("{:.0}", without.tps),
            format!("{:.0}", with.tps),
            format!("{:.1}", without.latency_ms),
            format!("{:.1}", with.latency_ms),
        ]);
    }

    section("Table 2 summary");
    print_table(
        &[
            "target rate",
            "tps w/o gauging",
            "tps w/ gauging",
            "lat w/o (ms)",
            "lat w/ (ms)",
        ],
        &rows,
    );
    println!("\npaper: throughput unchanged below MAX; +3-4 ms latency; ~12% dip at MAX");
}
