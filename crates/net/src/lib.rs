//! # kairos-net — the fleet control plane's multi-node transport
//!
//! PR 2 sharded the control plane and PR 4 made every boundary object
//! serializable (checksummed `TenantHandoff` wire frames, whole-shard
//! checkpoints). This crate is the boundary itself: the RPC layer that
//! lets shards live in other processes — or other machines — while the
//! balancer keeps driving the exact same policy code path.
//!
//! ```text
//!   BalancerNode (primary)        StandbyBalancer (rank 1, 2, …)
//!   map · cooldowns · stats  ◄──── watches the lease endpoint,
//!        │      │    │              promotes deterministically
//!   Tick │      │    │ Summary / CanAdmit / Evict / Admit /
//!        │      │    │ Checkpoint / Workloads / Ping …
//!        ▼      ▼    ▼
//!   ┌─────────┐ ┌─────────┐ ┌─────────┐
//!   │ShardNode│ │ShardNode│ │ShardNode│    each: Arc<Mutex<ShardController>>
//!   └────┬────┘ └────┬────┘ └────┬────┘    + a SourceBinder for live telemetry
//!        └───────────┴───────────┘
//!          Transport: loopback (deterministic, fault-injectable)
//!                     or TCP (blocking std::net, thread per conn)
//! ```
//!
//! * [`frame`] — the wire envelope: `b"KNET"` magic, version, length
//!   prefix, CRC-32 trailer (the `kairos-store` discipline, applied to
//!   the network);
//! * [`rpc`] — the message catalog: the `ShardController` surface the
//!   balancer already drove in-process, verbatim, plus heartbeats;
//!   handoffs cross as the *same* checksummed `into_wire` frames,
//!   nested;
//! * [`transport`] — the pluggable boundary ([`Transport`], [`Conn`]);
//! * [`fault`] — the declarative [`FaultPlan`]: one per-endpoint fault
//!   state with a normative precedence (partition ≻ drop ≻ corrupt;
//!   heal cancels pending faults) that the chaos harness schedules
//!   against;
//! * [`loopback`] — deterministic in-memory backend with injectable
//!   drops, partitions and bit-flip corruption (seeded), all routed
//!   through the shared [`FaultPlan`];
//! * [`tcp`] — `std::net` blocking sockets, one thread per connection —
//!   no async runtime, matching the workspace's `std::thread::scope`
//!   architecture;
//! * [`node`] — [`ShardNode`]: one shard served at an endpoint, with
//!   [`SourceBinder`] supplying the live telemetry sources bytes cannot
//!   carry (escrow in-process, factory across processes — the PR 4
//!   `attach_source` surface driven from the network);
//! * [`balancer_node`] — [`BalancerNode`]: balance rounds over RPC
//!   through the shared `run_balance_round` policy, tick-based leases,
//!   shard failure detection with checkpoint-restore rejoin, and
//!   deterministic standby promotion for a dead balancer.
//!
//! The headline property (see `tests/equivalence.rs`): a fleet run over
//! the loopback transport — every observation and mutation an RPC — is
//! **tick-for-tick identical** to the in-process
//! [`kairos_fleet::FleetController`]: same outcome signatures, same
//! handoff logs, bit-identical audit objectives. One policy code path,
//! two deployment shapes. `examples/fleet_over_tcp.rs` runs the same
//! roles as real child processes over TCP, surviving a shard-node kill
//! (checkpoint rejoin) and a balancer kill (standby promotion) mid-run.

pub mod auth;
pub mod balancer_node;
pub mod fault;
pub mod faulted;
pub mod frame;
pub mod loopback;
pub mod node;
pub mod rpc;
pub mod tcp;
pub mod transport;
pub mod zone_node;

pub use auth::{AuthKey, AUTH_TAG_LEN};
pub use balancer_node::{
    BalancerNode, LeaseConfig, NetTickReport, RemoteShard, StandbyAction, StandbyBalancer,
};
pub use fault::{Fault, FaultInjector, FaultPlan, FaultVerdict};
pub use faulted::FaultedTransport;
pub use frame::{MAX_PAYLOAD_LEN, NET_MAGIC, RPC_WIRE_VERSION};
pub use loopback::LoopbackTransport;
pub use node::{ShardNode, SourceBinder, SourceEscrow, SourceFactory, SourceMaker};
pub use rpc::{Request, Response};
pub use tcp::TcpTransport;
pub use transport::{Conn, Handler, NetError, ServerHandle, Transport};
pub use zone_node::{RemoteZone, ZoneNode};

/// Convenience re-exports for examples and tests.
pub mod prelude {
    pub use crate::balancer_node::{BalancerNode, LeaseConfig, StandbyAction, StandbyBalancer};
    pub use crate::loopback::LoopbackTransport;
    pub use crate::node::{ShardNode, SourceEscrow, SourceFactory};
    pub use crate::tcp::TcpTransport;
    pub use crate::transport::Transport;
    pub use kairos_fleet::prelude::*;
}
