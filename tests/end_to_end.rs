//! Cross-crate integration tests: the full Kairos loop — monitor on the
//! simulated deployment, gauge, model, plan, verify — spanning every
//! workspace crate through the facade.

use kairos::core::prelude::*;
use kairos::core::PlanStrategy;
use kairos::solver::{evaluate, fractional_lower_bound};
use kairos::traces::{generate_fleet, Dataset, FleetConfig};
use kairos::types::WorkloadProfile;
use kairos::workloads::{RatePattern, SyntheticSpec, SyntheticWorkload, Workload};

fn tiny_workload(name: &str, tps: f64) -> Box<dyn Workload> {
    Box::new(SyntheticWorkload::new(SyntheticSpec::balanced(
        name,
        Bytes::mib(48),
        RatePattern::Flat { tps },
    )))
}

#[test]
fn observe_plan_verify_round_trip() {
    // Observe two light workloads on dedicated servers, plan, then verify
    // co-location preserves throughput (the Table 1 "recommended" path).
    let pipeline = Kairos::new(PipelineConfig {
        source_buffer_pool: Bytes::mib(512),
        target_buffer_pool: Bytes::gib(2),
        observe_secs: 20.0,
        warmup_secs: 10.0,
        monitor_interval_secs: 5.0,
        gauge: true,
        ..Default::default()
    });
    let engine = ConsolidationEngine::builder().build();
    let (observations, plan) = pipeline
        .plan(
            &engine,
            vec![tiny_workload("a", 40.0), tiny_workload("b", 25.0)],
        )
        .expect("feasible plan");

    assert_eq!(plan.machines_used(), 1, "two tiny tenants share one box");
    // Gauging found working sets far below the 512 MiB pool.
    for obs in &observations {
        let gauged = obs.gauged_working_set.expect("gauging ran");
        assert!(gauged < Bytes::mib(200), "gauged {gauged}");
    }

    let verified = pipeline.verify_colocated(
        vec![tiny_workload("a", 40.0), tiny_workload("b", 25.0)],
        20.0,
    );
    let total_before: f64 = observations.iter().map(|o| o.standalone_tps).sum();
    let total_after: f64 = verified.iter().map(|v| v.tps).sum();
    assert!(
        (total_after - total_before).abs() / total_before < 0.05,
        "consolidation must preserve throughput: {total_before} -> {total_after}"
    );
}

#[test]
fn fleet_consolidation_beats_greedy_and_respects_bound() {
    let cfg = FleetConfig {
        weeks: 1,
        ..Default::default()
    };
    let fleet = generate_fleet(Dataset::Wikia, &cfg);
    let profiles: Vec<WorkloadProfile> = fleet.iter().map(|s| s.to_profile(0.7)).collect();
    let engine = ConsolidationEngine::builder().build();

    let kairos = engine
        .consolidate_with(&profiles, PlanStrategy::Kairos)
        .expect("kairos plan");
    assert!(kairos.report.evaluation.feasible);

    let bound = engine.fractional_bound(&profiles).unwrap();
    assert!(
        kairos.machines_used() >= bound,
        "integer solution cannot beat the fractional bound"
    );
    assert!(
        kairos.machines_used() <= bound + 2,
        "kairos ({}) should track the idealized bound ({bound})",
        kairos.machines_used()
    );

    if let Ok(greedy) = engine.consolidate_with(&profiles, PlanStrategy::Greedy) {
        assert!(kairos.machines_used() <= greedy.machines_used());
    }

    // Consolidation ratio in a sane band for this fleet.
    let ratio = kairos.consolidation_ratio();
    assert!((4.0..=34.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn plans_are_actually_feasible_when_replayed_against_solver() {
    // The engine's plan re-evaluated from scratch must still be feasible
    // (no hidden state between planning and evaluation).
    let profiles = demo_profiles();
    let engine = ConsolidationEngine::builder().build();
    let plan = engine.consolidate(&profiles).unwrap();
    let problem = engine.problem(&profiles).unwrap();
    let eval = evaluate(&problem, &plan.report.assignment);
    assert!(eval.feasible);
    assert_eq!(eval.machines_used, plan.machines_used());
    assert!(fractional_lower_bound(&problem) <= plan.machines_used());
}

#[test]
fn overloaded_colocation_degrades_as_predicted() {
    // The Table 1 "not recommended" path: too much update traffic for one
    // disk. The engine must flag it, and the replay must show degradation.
    let heavy = |name: &str| -> Box<dyn Workload> {
        Box::new(SyntheticWorkload::new(SyntheticSpec {
            rows_updated_per_txn: 30.0,
            ..SyntheticSpec::balanced(name, Bytes::gib(2), RatePattern::Flat { tps: 400.0 })
        }))
    };
    let pipeline = Kairos::new(PipelineConfig {
        source_buffer_pool: Bytes::gib(4),
        target_buffer_pool: Bytes::gib(12),
        observe_secs: 20.0,
        warmup_secs: 15.0,
        monitor_interval_secs: 5.0,
        gauge: false,
        ..Default::default()
    });
    let solo = pipeline.observe(heavy("h0"));
    // Verification must outlast the redo-log fill transient before the
    // combined load's checkpoint stall shows.
    let verify = Kairos::new(PipelineConfig {
        warmup_secs: 110.0,
        ..pipeline.config.clone()
    });
    let verified = verify.verify_colocated(vec![heavy("h0"), heavy("h1"), heavy("h2")], 60.0);
    let per_db_after = verified.iter().map(|v| v.tps).sum::<f64>() / 3.0;
    assert!(
        per_db_after < solo.standalone_tps * 0.8,
        "3-way disk contention must cost throughput: solo {} vs colocated {}",
        solo.standalone_tps,
        per_db_after
    );
}

#[test]
fn facade_reexports_cover_the_stack() {
    // Compile-time sanity that the facade exposes each layer.
    let _ = kairos::types::Bytes::mib(1);
    let _ = kairos::dbsim::DEFAULT_TICK_SECS;
    let _ = kairos::workloads::RatePattern::Flat { tps: 1.0 };
    let _ = kairos::monitor::GaugeParams::default();
    let _ = kairos::solver::SolverConfig::default();
    let _ = kairos::traces::FleetConfig::default();
    let _ = kairos::vmsim::Strategy::ALL;
}
