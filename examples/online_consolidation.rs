//! The online consolidation loop end-to-end: four drift scenarios driven
//! through the `kairos-controller` daemon.
//!
//! ```text
//! cargo run --release --example online_consolidation
//! ```
//!
//! Demonstrates the acceptance properties of the online loop:
//!
//! * every scenario converges to a placement that re-evaluates as
//!   feasible under `solver::objective::evaluate`;
//! * migration churn per re-solve stays ≤ 30 % of workloads — and a
//!   baseline-blind *cold* re-solve of the flash-crowd scenario shows
//!   what the migration-cost term is saving;
//! * the stationary control scenario triggers zero re-solves.

use kairos::controller::{
    run_scenario, scenario_churn, scenario_diurnal_shift, scenario_flash_crowd,
    scenario_stationary, ControllerConfig, ScenarioReport,
};

fn config() -> ControllerConfig {
    ControllerConfig {
        horizon: 24,
        check_every: 6,
        cooldown_ticks: 24,
        ..ControllerConfig::default()
    }
}

fn show(r: &ScenarioReport) {
    println!(
        "  {:<16} ticks {:>4}  plan@{:<4} machines {}→{}  re-solves {:<2} max churn {:>4.0}%  \
         moves {:<3} copied {:>6.1} MB  feasible {}",
        r.label,
        r.ticks,
        r.initial_plan_tick
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into()),
        r.initial_machines,
        r.final_machines,
        r.resolves,
        r.max_churn() * 100.0,
        r.total_moves,
        r.bytes_copied / 1e6,
        r.final_feasible,
    );
}

fn main() {
    let cfg = config();
    println!("== kairos-controller: online rolling-horizon consolidation ==\n");

    println!("drift scenarios (warm re-solve + migration cost):");
    let stationary = run_scenario(&cfg, scenario_stationary(12, 160));
    show(&stationary);
    assert_eq!(
        stationary.resolves, 0,
        "stationary fleet must never re-solve"
    );
    assert!(stationary.final_feasible);

    let diurnal = run_scenario(&cfg, scenario_diurnal_shift(12, 240));
    show(&diurnal);
    assert!(
        diurnal.resolves >= 1,
        "phase correlation shift must re-plan"
    );
    assert!(diurnal.final_feasible);
    assert!(
        diurnal.max_churn() <= 0.30,
        "churn {:.0}% exceeded 30%",
        diurnal.max_churn() * 100.0
    );

    let flash = run_scenario(&cfg, scenario_flash_crowd(12, 240));
    show(&flash);
    assert!(flash.resolves >= 1, "flash crowd must re-plan");
    assert!(flash.final_feasible);
    assert!(
        flash.max_churn() <= 0.30,
        "churn {:.0}% exceeded 30%",
        flash.max_churn() * 100.0
    );

    let churn = run_scenario(&cfg, scenario_churn(12, 240));
    show(&churn);
    assert!(churn.resolves >= 1, "membership changes must re-plan");
    assert!(churn.final_feasible);
    assert!(
        churn.max_churn() <= 0.30,
        "churn {:.0}% exceeded 30%",
        churn.max_churn() * 100.0
    );

    // The migration-cost term, demonstrated: replay the flash crowd with
    // a baseline-blind cold solver and compare how many tenants move.
    println!("\nmigration-cost ablation (flash crowd, cold vs warm):");
    let cold_cfg = ControllerConfig {
        cold_resolves: true,
        ..cfg
    };
    let cold = run_scenario(&cold_cfg, scenario_flash_crowd(12, 240));
    println!(
        "  warm+migration-cost: {} moves across {} re-solves (max churn {:.0}%)",
        flash.total_moves,
        flash.resolves,
        flash.max_churn() * 100.0
    );
    println!(
        "  cold re-solve:       {} moves across {} re-solves (max churn {:.0}%)",
        cold.total_moves,
        cold.resolves,
        cold.max_churn() * 100.0
    );
    assert!(
        flash.total_moves <= cold.total_moves,
        "migration-aware planning must not out-churn the cold solver"
    );

    println!("\nloop latency:");
    println!(
        "  steady-state tick: {:>8.3} ms   re-solve: {:>8.1} ms (mean over {} solves incl. initial)",
        run_latency(&stationary),
        flash.mean_resolve_secs() * 1e3,
        flash.resolve_secs.len(),
    );

    println!("\nall scenarios converged; online loop OK");
}

fn run_latency(r: &ScenarioReport) -> f64 {
    r.steady_tick_secs * 1e3
}
