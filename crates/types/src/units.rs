//! Small unit newtypes.
//!
//! The simulator and models pass around a lot of raw numbers (bytes,
//! rates, fractions). These wrappers keep the units straight at API
//! boundaries while converting to `f64` freely for arithmetic-heavy model
//! code.

use serde::{Deserialize, Serialize};

/// A byte quantity (sizes of buffer pools, working sets, RAM, tuples).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from kibibytes.
    pub const fn kib(k: u64) -> Bytes {
        Bytes(k * 1024)
    }

    /// Construct from mebibytes.
    pub const fn mib(m: u64) -> Bytes {
        Bytes(m * 1024 * 1024)
    }

    /// Construct from gibibytes.
    pub const fn gib(g: u64) -> Bytes {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// Value as `f64` bytes, for model arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Value in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Value in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// `self * factor`, rounding to the nearest byte and clamping at zero.
    pub fn scale(self, factor: f64) -> Bytes {
        Bytes((self.0 as f64 * factor).max(0.0).round() as u64)
    }

    /// Number of fixed-size pages needed to hold this many bytes (ceiling).
    pub fn pages(self, page_size: Bytes) -> u64 {
        debug_assert!(page_size.0 > 0, "page size must be non-zero");
        self.0.div_ceil(page_size.0)
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.1} MiB", self.as_mib())
        } else if b >= 1024.0 {
            write!(f, "{:.1} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// An event rate in events per second (transactions/s, rows updated/s, ...).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Rate(pub f64);

impl Rate {
    pub const ZERO: Rate = Rate(0.0);

    pub fn per_second(v: f64) -> Rate {
        Rate(v)
    }

    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

/// A duration in (possibly fractional) seconds of *simulated* time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(pub f64);

impl Seconds {
    pub fn as_f64(self) -> f64 {
        self.0
    }

    pub fn from_minutes(m: f64) -> Seconds {
        Seconds(m * 60.0)
    }

    pub fn from_hours(h: f64) -> Seconds {
        Seconds(h * 3600.0)
    }
}

/// A fraction in `[0, 1]` (utilizations, ratios). Values are *not* clamped
/// on construction: over-commitment (>1) is a meaningful state the
/// consolidation engine must detect.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Percent(pub f64);

impl Percent {
    /// From a 0–100 percentage value.
    pub fn from_percentage(p: f64) -> Percent {
        Percent(p / 100.0)
    }

    /// As a 0–100 percentage value.
    pub fn as_percentage(self) -> f64 {
        self.0 * 100.0
    }

    pub fn as_fraction(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(1).0, 1024);
        assert_eq!(Bytes::mib(1).0, 1024 * 1024);
        assert_eq!(Bytes::gib(2).0, 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn byte_page_count_rounds_up() {
        let page = Bytes::kib(16);
        assert_eq!(Bytes(0).pages(page), 0);
        assert_eq!(Bytes(1).pages(page), 1);
        assert_eq!(Bytes::kib(16).pages(page), 1);
        assert_eq!(Bytes(16 * 1024 + 1).pages(page), 2);
    }

    #[test]
    fn byte_scale_clamps_at_zero() {
        assert_eq!(Bytes::mib(10).scale(-1.0), Bytes::ZERO);
        assert_eq!(Bytes::mib(10).scale(0.5), Bytes::mib(5));
    }

    #[test]
    fn byte_display_picks_unit() {
        assert_eq!(format!("{}", Bytes(12)), "12 B");
        assert_eq!(format!("{}", Bytes::kib(2)), "2.0 KiB");
        assert_eq!(format!("{}", Bytes::mib(3)), "3.0 MiB");
        assert_eq!(format!("{}", Bytes::gib(1)), "1.00 GiB");
    }

    #[test]
    fn bytes_sum() {
        let total: Bytes = [Bytes::mib(1), Bytes::mib(2)].into_iter().sum();
        assert_eq!(total, Bytes::mib(3));
    }

    #[test]
    fn percent_round_trips() {
        let p = Percent::from_percentage(45.0);
        assert!((p.as_fraction() - 0.45).abs() < 1e-12);
        assert!((p.as_percentage() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_helpers() {
        assert_eq!(Seconds::from_minutes(2.0).as_f64(), 120.0);
        assert_eq!(Seconds::from_hours(1.5).as_f64(), 5400.0);
    }

    #[test]
    fn rate_sum() {
        let total: Rate = [Rate(1.5), Rate(2.5)].into_iter().sum();
        assert_eq!(total.as_f64(), 4.0);
    }
}
