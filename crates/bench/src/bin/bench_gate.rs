//! Bench regression gate: compare a fresh `fleet_scale` run against the
//! committed `BENCH_fleet.json` baseline and fail (exit 1) when the
//! control plane's hot-path numbers regress beyond 2×.
//!
//! ```text
//! KAIROS_QUICK=1 cargo run --release -p kairos-bench --bin fleet_scale > fresh.json
//! cargo run --release -p kairos-bench --bin bench_gate -- fresh.json BENCH_fleet.json
//! ```
//!
//! Gated metrics, compared at the largest shard count both files report:
//!
//! * `steady_tick_p99_usecs` — tail latency of a quiet control tick;
//! * `mean_warm_resolve_ms` — the warm re-solve the drift path pays;
//!
//! plus, from the top-level `"net"` object (the RPC boundary added with
//! `kairos-net`):
//!
//! * `handoff_rpc_roundtrip_usecs` — the two-phase handoff handshake
//!   (forecast → reserve → evict → admit) over the loopback transport,
//!   so the serialization + dispatch cost of the process boundary is
//!   perf-gated from day one (the loopback is deterministic; TCP ping is
//!   recorded but not gated — localhost latency is CI-noisy).
//!
//! The threshold is deliberately loose (2×): CI machines are noisy and
//! the quick profile runs a smaller fleet than the committed full
//! profile, so the gate catches structural regressions (an accidental
//! cold solve on the warm path, a quadratic tick), not percent-level
//! drift. Output is a Markdown table with both values per metric, meant
//! to be `tee`'d into `$GITHUB_STEP_SUMMARY`.
//!
//! The parser below handles exactly the JSON this workspace's bench
//! emitters produce (flat objects of `"key":number|bool` inside the
//! `"scales"` array) — it is not a general JSON reader, on purpose: the
//! build is offline and a vendored serde_json is not available.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Regression threshold: fresh > FACTOR × baseline fails the gate.
const FACTOR: f64 = 2.0;

/// Extract the `"scales": [...]` array body from a bench JSON document.
fn scales_body(json: &str) -> Option<&str> {
    let key = json.find("\"scales\"")?;
    let open = json[key..].find('[')? + key;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split an array body into its top-level `{...}` objects.
fn objects(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i + 1;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&body[start..i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Parse a flat `"key":value` object into numeric fields (booleans read
/// as 0/1; anything unparseable is skipped).
fn fields(obj: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for entry in obj.split(',') {
        let Some((key, value)) = entry.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        let parsed = match value {
            "true" => Some(1.0),
            "false" => Some(0.0),
            v => v.parse::<f64>().ok(),
        };
        if let Some(v) = parsed {
            out.insert(key, v);
        }
    }
    out
}

/// A flat top-level `"<name>": {...}` object's numeric fields (empty
/// map when the document predates that section).
fn parse_flat(json: &str, name: &str) -> BTreeMap<String, f64> {
    let Some(key) = json.find(&format!("\"{name}\"")) else {
        return BTreeMap::new();
    };
    let Some(open) = json[key..].find('{').map(|i| i + key) else {
        return BTreeMap::new();
    };
    let Some(close) = json[open..].find('}').map(|i| i + open) else {
        return BTreeMap::new();
    };
    fields(&json[open + 1..close])
}

/// The flat top-level `"net": {...}` object's numeric fields (empty map
/// when the document predates the network plane).
fn parse_net(json: &str) -> BTreeMap<String, f64> {
    parse_flat(json, "net")
}

/// `shards → fields` for every scale entry in a bench JSON document.
fn parse_scales(json: &str) -> BTreeMap<u64, BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    let Some(body) = scales_body(json) else {
        return out;
    };
    for obj in objects(body) {
        let f = fields(obj);
        if let Some(&shards) = f.get("shards") {
            out.insert(shards as u64, f);
        }
    }
    out
}

/// The `"hierarchy"` section: its own `scales` array (keyed by total
/// shard count) plus the section-level flatness ratios. Empty when the
/// document predates the hierarchy (pre-mega-fleet baselines).
struct Hierarchy {
    scales: BTreeMap<u64, BTreeMap<String, f64>>,
    root_cost_ratio: Option<f64>,
}

fn parse_hierarchy(json: &str) -> Hierarchy {
    let mut out = Hierarchy {
        scales: BTreeMap::new(),
        root_cost_ratio: None,
    };
    let Some(key) = json.find("\"hierarchy\"") else {
        return out;
    };
    // Everything from the key onward: the nested scales array is the
    // first `"scales"` in this slice, and the ratio scalars follow it.
    let section = &json[key..];
    out.scales = parse_scales(section);
    out.root_cost_ratio = section.find("\"root_cost_ratio\"").and_then(|i| {
        let rest = &section[i..];
        let colon = rest.find(':')?;
        rest[colon + 1..]
            .split([',', '}', '\n'])
            .next()?
            .trim()
            .parse::<f64>()
            .ok()
    });
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <fresh.json> <baseline.json>");
        return ExitCode::from(2);
    }
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let fresh_doc = read(&args[1]);
    let baseline_doc = read(&args[2]);
    let fresh = parse_scales(&fresh_doc);
    let baseline = parse_scales(&baseline_doc);

    // Compare at the largest fleet both profiles ran (the quick profile
    // stops at fewer shards than the committed full profile).
    let Some(&shards) = fresh.keys().filter(|s| baseline.contains_key(s)).max() else {
        eprintln!("bench_gate: no common shard count between fresh and baseline");
        return ExitCode::from(2);
    };
    let f = &fresh[&shards];
    let b = &baseline[&shards];

    println!("### Bench regression gate (fleet_scale, {shards} shards)\n");
    println!("| metric | baseline | fresh | ratio | limit | verdict |");
    println!("|---|---|---|---|---|---|");

    // The network-plane metrics live in a flat top-level object, not in
    // the per-scale entries (RPC latency does not vary with shard
    // count). Missing from *both* files is fine (pre-net baselines);
    // missing from one is a gate-input error like any other.
    let fresh_net = parse_net(&fresh_doc);
    let baseline_net = parse_net(&baseline_doc);

    let mut failed = false;
    let mut rows: Vec<(&str, &str, Option<f64>, Option<f64>)> = vec![
        (
            "steady_tick_p99_usecs",
            "µs",
            b.get("steady_tick_p99_usecs").copied(),
            f.get("steady_tick_p99_usecs").copied(),
        ),
        (
            "mean_warm_resolve_ms",
            "ms",
            b.get("mean_warm_resolve_ms").copied(),
            f.get("mean_warm_resolve_ms").copied(),
        ),
    ];
    let net_metric = "handoff_rpc_roundtrip_usecs";
    if baseline_net.contains_key(net_metric) || fresh_net.contains_key(net_metric) {
        rows.push((
            net_metric,
            "µs",
            baseline_net.get(net_metric).copied(),
            fresh_net.get(net_metric).copied(),
        ));
    }

    // The hierarchy section: compared at the largest total shard count
    // both documents ran (the mega-fleet scale, 1,000 shards on the
    // committed profile). Missing from *both* files means a
    // pre-hierarchy baseline; missing from one is a gate-input error.
    let fresh_hier = parse_hierarchy(&fresh_doc);
    let baseline_hier = parse_hierarchy(&baseline_doc);
    let hier_shards = fresh_hier
        .scales
        .keys()
        .filter(|s| baseline_hier.scales.contains_key(s))
        .max()
        .copied();
    if !fresh_hier.scales.is_empty() || !baseline_hier.scales.is_empty() {
        let fh = hier_shards.and_then(|s| fresh_hier.scales.get(&s));
        let bh = hier_shards.and_then(|s| baseline_hier.scales.get(&s));
        for (metric, unit) in [("root_round_mean_usecs", "µs"), ("zone_rollup_bytes", "B")] {
            rows.push((
                match metric {
                    "root_round_mean_usecs" => "hierarchy.root_round_mean_usecs",
                    _ => "hierarchy.zone_rollup_bytes",
                },
                unit,
                bh.and_then(|f| f.get(metric).copied()),
                fh.and_then(|f| f.get(metric).copied()),
            ));
        }
    }
    for (metric, unit, bv, fv) in rows {
        let (Some(bv), Some(fv)) = (bv, fv) else {
            eprintln!("bench_gate: metric {metric} missing from one input");
            return ExitCode::from(2);
        };
        if bv <= 0.0 {
            // Nothing to gate against (e.g. a profile with no warm
            // re-solves); record it rather than dividing by zero.
            println!("| `{metric}` | {bv:.3} {unit} | {fv:.3} {unit} | – | {FACTOR}× | skipped (no baseline signal) |");
            continue;
        }
        let ratio = fv / bv;
        let ok = ratio <= FACTOR;
        failed |= !ok;
        println!(
            "| `{metric}` | {bv:.3} {unit} | {fv:.3} {unit} | {ratio:.2}× | {FACTOR}× | {} |",
            if ok { "✅ pass" } else { "❌ **regressed**" }
        );
    }

    // The flat-cost claim is gated as an *absolute* bound on the fresh
    // run, not against the baseline: the root's per-round cost must stay
    // within FACTOR× as the fleet scales 250 → 1,000 shards beneath the
    // same zone population. A fresh document with a hierarchy section
    // must report the ratio.
    if !fresh_hier.scales.is_empty() {
        let Some(ratio) = fresh_hier.root_cost_ratio else {
            eprintln!("bench_gate: hierarchy section missing root_cost_ratio");
            return ExitCode::from(2);
        };
        let ok = ratio > 0.0 && ratio <= FACTOR;
        failed |= !ok;
        println!(
            "| `hierarchy.root_cost_ratio` (fresh, absolute) | – | {ratio:.3}× | {ratio:.2}× | {FACTOR}× | {} |",
            if ok { "✅ pass" } else { "❌ **regressed**" }
        );
    }
    // Span-tracing overhead is gated as an *absolute* bound on the
    // fresh run, like root_cost_ratio: the document already carries the
    // spans-on / spans-off ratio measured between adjacent runs of the
    // same process, so comparing against a baseline file would only add
    // machine noise. Two surfaces, same envelope: the steady tick (a
    // quiet tick opens no spans, so the ratio must sit in noise) and
    // the handoff RPC round trip (four frames each paying the 28-byte
    // span section plus two shard-side span records).
    const SPANS_FACTOR: f64 = 1.15;
    let fresh_obs = parse_flat(&fresh_doc, "obs_overhead");
    for (metric, ratio) in [
        (
            "obs_overhead.spans_over_plain_p50_ratio (fresh, absolute)",
            fresh_obs.get("spans_over_plain_p50_ratio").copied(),
        ),
        (
            "net.handoff_spans_over_plain_ratio (fresh, absolute)",
            fresh_net.get("handoff_spans_over_plain_ratio").copied(),
        ),
    ] {
        // Missing keys mean a pre-span fresh document — nothing to gate.
        let Some(ratio) = ratio else { continue };
        let ok = ratio > 0.0 && ratio <= SPANS_FACTOR;
        failed |= !ok;
        println!(
            "| `{metric}` | – | {ratio:.3}× | {ratio:.2}× | {SPANS_FACTOR}× | {} |",
            if ok { "✅ pass" } else { "❌ **regressed**" }
        );
    }
    println!();
    if failed {
        println!("**Gate failed:** a hot-path metric regressed more than {FACTOR}× against the committed `BENCH_fleet.json`.");
        ExitCode::FAILURE
    } else {
        println!("Gate passed: all gated metrics within {FACTOR}× of the committed baseline.");
        ExitCode::SUCCESS
    }
}
