//! # kairos-obs — deterministic observability for the control plane
//!
//! The consolidation engine is only trustworthy in production if every
//! migration and re-solve is *attributable*. With the control plane
//! distributed across processes (`kairos-net`), a failed audit or a
//! surprise handoff must be explainable from recorded decisions, not a
//! debugger. This crate is that layer, in three pillars:
//!
//! * [`events`] — the **structured decision log**: every drift trip,
//!   re-solve (reason + objective before/after), balancer donor/receiver
//!   choice (which summary fields and which threshold fired), handoff
//!   state transition, lease miss, rejoin and standby promotion emits a
//!   typed [`DecisionEvent`], stamped with **tick numbers, not wall
//!   clocks**. The stream is therefore seed-reproducible: the net
//!   equivalence suite asserts the in-process and RPC fleets produce
//!   *byte-identical* traces, not just identical outcomes. Recording is
//!   ring-buffered ([`DecisionLog`]) with O(1) overhead and a no-op
//!   disabled mode so benches can compile the cost down to one branch.
//!
//! * [`metrics`] — the **metrics registry**: lock-cheap atomic counters,
//!   f64 cells and log-scale histograms ([`MetricsRegistry`]), registered
//!   per shard / balancer / transport and exported as JSON or Prometheus
//!   text exposition (the `Metrics` RPC on `ShardNode`/`BalancerNode`).
//!   Metrics are wall-clock and intentionally *outside* the deterministic
//!   trace: latencies and byte counts vary run to run, decisions must
//!   not.
//!
//! * [`why`] — **explainable audits**: given a shard's decision trace and
//!   the fleet's balancer trace, [`why::render_why_chain`] reconstructs
//!   the chain of decisions that produced the current placement — the
//!   plan that last established it, the drift that forced that plan, and
//!   every handoff that moved tenants in or out since — rendered as a
//!   human-readable report for `audit()` failures.
//!
//! Events serialize through the workspace codec (`shims/serde`), so
//! traces checkpoint inside `kairos-store` snapshot frames and ship over
//! `kairos-net` RPC unchanged.

pub mod events;
pub mod health;
pub mod metrics;
pub mod query;
pub mod span;
pub mod why;

pub use events::{DecisionEvent, DecisionLog, TracedEvent, TRACE_WIRE_VERSION};
pub use health::{HealthFinding, HealthMonitor, HealthReport, HealthRule, ParkedAges, Severity};
pub use metrics::{
    global, render_json_all, render_prometheus_all, validate_exposition, Counter, FloatCell,
    Histogram, MetricsRegistry,
};
pub use query::{assemble_trees, render_span_tree, run_query, QueryResult, SpanTree, TraceQuery};
pub use span::{SpanContext, SpanLog, SpanRecord};
pub use why::render_why_chain;
