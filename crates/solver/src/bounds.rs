//! Lower and upper bounds on the minimum feasible server count K′ (§6).
//!
//! "The lower bound is provided by a single-resource fractional solution
//! that optimistically assumes that the workloads can be assigned
//! fractionally to machines, and that each resource can be considered
//! independently. [...] A loose upper-bound is the number of machines
//! currently in use; better upper-bounds can be found by running cheap,
//! greedy workload allocation strategies."

use crate::greedy::greedy_pack;
use crate::problem::{Assignment, ConsolidationProblem};

/// The fractional/idealized lower bound — also Fig 7's "frac./idealized"
/// comparison line.
pub fn fractional_lower_bound(problem: &ConsolidationProblem) -> usize {
    let windows = problem.windows;
    let headroom = problem.headroom.max(1e-9);

    // CPU and RAM: peak-over-time aggregate over per-machine capacity.
    let mut k_cpu = 0.0f64;
    let mut k_ram = 0.0f64;
    for t in 0..windows {
        let cpu: f64 = problem.workloads.iter().map(|w| w.cpu_at(t)).sum();
        let ram: f64 = problem.workloads.iter().map(|w| w.ram_at(t)).sum();
        k_cpu = k_cpu.max(cpu / (problem.machine.cpu_cores * headroom));
        k_ram = k_ram.max(ram / (problem.machine.ram_bytes * headroom));
    }

    // Disk: smallest K such that an even fractional split is feasible in
    // every window (utilization is monotone decreasing in K for any sane
    // combiner, so a linear scan terminates at the first feasible K).
    let mut k_disk = 1usize;
    'disk: while k_disk < problem.max_machines.max(1) * 4 {
        let kf = k_disk as f64;
        let mut ok = true;
        for t in 0..windows {
            let ws: f64 = problem.workloads.iter().map(|w| w.ws_at(t)).sum();
            let rate: f64 = problem.workloads.iter().map(|w| w.rate_at(t)).sum();
            if problem.disk.utilization(ws / kf, rate / kf) > headroom {
                ok = false;
                break;
            }
        }
        if ok {
            break 'disk;
        }
        k_disk += 1;
    }

    // Replication floor: R identical replicas need R distinct machines.
    let k_repl = problem
        .workloads
        .iter()
        .map(|w| w.replicas.max(1) as usize)
        .max()
        .unwrap_or(1);

    (k_cpu.ceil() as usize)
        .max(k_ram.ceil() as usize)
        .max(k_disk)
        .max(k_repl)
        .max(1)
}

/// The no-consolidation reference: each slot on its own machine.
pub fn identity_assignment(problem: &ConsolidationProblem) -> Assignment {
    let n = problem.slots().len();
    Assignment::new((0..n).collect())
}

/// Upper bound: greedy if it finds a feasible packing, else the identity
/// (one machine per slot).
pub fn upper_bound(problem: &ConsolidationProblem) -> (Assignment, usize) {
    if let Some(report) = greedy_pack(problem) {
        let used = report.machines_used;
        (report.assignment, used)
    } else {
        let a = identity_assignment(problem);
        let used = a.machines_used();
        (a, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::problem::{LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(n: usize, cpu: f64, ram: f64) -> ConsolidationProblem {
        let w = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 2, cpu, ram, 1e8, 10.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn cpu_bound_dominates_when_cpu_heavy() {
        // 10 workloads × 3 cores = 30 cores; 12-core machines at 0.95:
        // ceil(30 / 11.4) = 3.
        let p = problem(10, 3.0, 1e9);
        assert_eq!(fractional_lower_bound(&p), 3);
    }

    #[test]
    fn ram_bound_dominates_when_ram_heavy() {
        // 10 × 30 GB = 300 GB over 96 GB × 0.95: ceil = 4.
        let p = problem(10, 0.1, 30e9);
        assert_eq!(fractional_lower_bound(&p), 4);
    }

    #[test]
    fn replication_floors_the_bound() {
        let mut p = problem(2, 0.1, 1e9);
        p.workloads[0].replicas = 3;
        assert_eq!(fractional_lower_bound(&p), 3);
    }

    #[test]
    fn disk_bound_uses_nonlinear_model() {
        struct Tight;
        impl crate::problem::DiskCombiner for Tight {
            fn utilization(&self, _ws: f64, rate: f64) -> f64 {
                rate / 100.0
            }
        }
        let w = (0..4)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 1, 0.1, 1e9, 1e8, 60.0))
            .collect();
        let mut p = ConsolidationProblem::new(w, TargetMachine::paper_target(), 4, Arc::new(Tight));
        p.headroom = 0.95;
        // Total rate 240; per machine cap 95: ceil(240/95) = 3.
        assert_eq!(fractional_lower_bound(&p), 3);
    }

    #[test]
    fn bound_never_exceeds_actual_need() {
        // The fractional bound must be ≤ machines used by any feasible
        // integer assignment.
        let p = problem(7, 2.0, 5e9);
        let lb = fractional_lower_bound(&p);
        // Feasible integer packing: 5 per machine on CPU (11.4/2 = 5).
        let assignment = Assignment::new(vec![0, 0, 0, 0, 0, 1, 1]);
        let eval = evaluate(&p, &assignment);
        assert!(eval.feasible);
        assert!(lb <= assignment.machines_used());
    }

    #[test]
    fn identity_reference_is_feasible_for_modest_loads() {
        let p = problem(5, 2.0, 5e9);
        let a = identity_assignment(&p);
        assert_eq!(a.machines_used(), 5);
        assert!(evaluate(&p, &a).feasible);
    }

    #[test]
    fn upper_bound_prefers_greedy_when_it_works() {
        let p = problem(6, 1.0, 1e9);
        let (_, used) = upper_bound(&p);
        assert!(
            used <= 2,
            "greedy should pack 6×1-core tightly, used {used}"
        );
    }
}
