//! The control loop: poll telemetry, detect drift, re-plan, migrate.
//!
//! One [`Controller::tick`] = one monitoring interval of the whole fleet.
//! The loop bootstraps by observing every workload for a full planning
//! horizon, plans once (cold solve + provisioning), then stays quiet
//! until either the drift detector trips or fleet membership changes —
//! at which point it re-solves *warm* with a migration-cost objective and
//! executes the resulting capacity-safe move list.
//!
//! The loop itself lives in [`crate::shard::ShardController`] — the unit
//! the sharded control plane (`kairos-fleet`) replicates per shard.
//! [`Controller`] is the single-fleet view: one shard, same behaviour.

use crate::drift::{DriftDetector, DriftReport};
use crate::executor::{ExecutionReport, FleetExecutor};
use crate::ingest::{TelemetryConfig, TelemetrySource};
use crate::resolver::FleetPlacement;
use crate::shard::ShardController;
use kairos_core::ConsolidationEngine;
use kairos_solver::{Evaluation, SolverConfig};

/// Loop tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    pub telemetry: TelemetryConfig,
    /// Planning horizon, in monitoring windows. Periodic workloads are
    /// only well-represented when the horizon covers their cycle.
    pub horizon: usize,
    /// Drift-check cadence: every N ticks once planned.
    pub check_every: u64,
    /// Ticks after any (re-)plan during which drift checks are skipped,
    /// letting the rolling window refill with the new regime before being
    /// judged again. Without it, a window still mixing pre- and
    /// post-change samples re-trips the detector and the loop thrashes.
    pub cooldown_ticks: u64,
    pub detector: DriftDetector,
    /// Objective price per migrated slot on re-solves.
    pub cost_per_move: f64,
    /// Max age, in ticks, of a cached balancer summary. The summary is
    /// recomputed immediately whenever the shard's state actually changes
    /// (plan, membership, handoff, failed solve); this bound only limits
    /// how long the *forecast-derived* fields (feasibility, tenant
    /// peaks, drift count) may coast on unchanged state between balance
    /// rounds. `0` disables caching (every summary recomputes).
    pub summary_refresh_ticks: u64,
    /// Warm re-solve budgets.
    pub solver: SolverConfig,
    /// Measurement mode: re-solve cold (no warm start, no migration
    /// term) to quantify what the incumbent-aware path saves.
    pub cold_resolves: bool,
    /// Scheduled horizon refresh: after a re-plan that provisioned a
    /// conservative flat envelope (regime change — history stopped being
    /// predictive), wait this many ticks of post-drift telemetry to
    /// re-accumulate, then refresh the planned profiles from the
    /// post-drift window alone — a cheap, zero-move tightening that
    /// doesn't wait for the lazy slack side of the drift detector (and
    /// doesn't pay a solve). `0` disables the refresh.
    pub profile_refresh_ticks: u64,
    /// Sketch shape for balancer summaries and handoff frames (quantile
    /// marks + verbatim tail). Part of the summary cache key: changing
    /// it invalidates cached roll-ups even with no state change.
    pub sketch: kairos_traces::SketchConfig,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            telemetry: TelemetryConfig {
                interval_secs: 300.0,
                window_capacity: 288,
                gauged_working_set: None,
            },
            horizon: 24,
            check_every: 6,
            cooldown_ticks: 24,
            detector: DriftDetector::default(),
            cost_per_move: 0.25,
            summary_refresh_ticks: 24,
            solver: SolverConfig {
                probe_evals: 400,
                final_evals: 2_000,
                polish_rounds: 60,
                accept_warm_at_bound: true,
                ..Default::default()
            },
            cold_resolves: false,
            profile_refresh_ticks: 24,
            sketch: kairos_traces::SketchConfig::default(),
        }
    }
}

/// Why a re-plan happened. Serializable (inside [`TickOutcome`]) so the
/// RPC shard nodes can report it across the network boundary.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ReplanReason {
    /// These workloads' live windows left their planned envelopes.
    Drift(Vec<String>),
    /// Workloads arrived or departed.
    Membership,
}

/// Summary of one re-plan.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ReplanSummary {
    pub reason: ReplanReason,
    pub feasible: bool,
    /// Pre-existing slots relocated.
    pub moves: usize,
    /// `moves / pre-existing slots`.
    pub churn: f64,
    pub machines: usize,
    pub execution: ExecutionReport,
    /// Wall-clock seconds spent in the solver.
    pub solve_secs: f64,
}

/// What one tick did. Serializable: it is the Tick RPC's response
/// payload when a shard runs behind a network boundary (`kairos-net`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TickOutcome {
    /// Still accumulating the bootstrap horizon.
    Bootstrapping,
    /// First plan produced and the fleet provisioned.
    InitialPlan { machines: usize, solve_secs: f64 },
    /// Drift was checked; nothing left its envelope.
    Stable,
    /// Off-cadence tick: telemetry ingested, nothing else to do.
    Idle,
    /// Drift or membership change forced a re-plan.
    Replanned(ReplanSummary),
    /// Scheduled horizon refresh: `refreshed` conservative envelope
    /// profiles were tightened onto post-drift phase means — no solve,
    /// no migrations (see [`ControllerConfig::profile_refresh_ticks`]).
    ProfileRefreshed { refreshed: usize },
}

/// Running counters. Serializable: the tick counter drives every
/// cadence gate (drift checks, cooldowns, balance rounds), so a restored
/// shard must resume from the checkpointed counts.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct ControllerStats {
    pub ticks: u64,
    pub samples_ingested: u64,
    pub drift_checks: u64,
    pub resolves: u64,
    pub total_moves: u64,
    pub forced_steps: u64,
    pub bytes_copied: f64,
    pub max_churn: f64,
    pub solve_secs_total: f64,
    /// Scheduled zero-move profile refreshes performed (no solver run).
    pub profile_refreshes: u64,
}

/// The registry-backed live counters behind [`ControllerStats`].
///
/// One code path owns counting: the loop bumps these lock-free
/// [`kairos_obs`] handles, and [`ShardMetrics::stats`] assembles the
/// serializable [`ControllerStats`] *view* on demand — so the snapshot
/// format, the Stats RPC and every existing caller keep the same struct
/// while the `Metrics` RPC exports the registry directly.
pub struct ShardMetrics {
    registry: kairos_obs::MetricsRegistry,
    pub ticks: kairos_obs::Counter,
    pub samples_ingested: kairos_obs::Counter,
    pub drift_checks: kairos_obs::Counter,
    pub resolves: kairos_obs::Counter,
    pub total_moves: kairos_obs::Counter,
    pub forced_steps: kairos_obs::Counter,
    pub profile_refreshes: kairos_obs::Counter,
    pub bytes_copied: kairos_obs::FloatCell,
    pub max_churn: kairos_obs::FloatCell,
    pub solve_secs_total: kairos_obs::FloatCell,
    /// Wall-clock solver latency (bootstrap + re-solves), microseconds.
    pub solve_usecs: kairos_obs::Histogram,
}

impl ShardMetrics {
    pub fn new(registry: kairos_obs::MetricsRegistry) -> ShardMetrics {
        ShardMetrics {
            ticks: registry.counter("kairos_shard_ticks_total"),
            samples_ingested: registry.counter("kairos_shard_samples_ingested_total"),
            drift_checks: registry.counter("kairos_shard_drift_checks_total"),
            resolves: registry.counter("kairos_shard_resolves_total"),
            total_moves: registry.counter("kairos_shard_moves_total"),
            forced_steps: registry.counter("kairos_shard_forced_steps_total"),
            profile_refreshes: registry.counter("kairos_shard_profile_refreshes_total"),
            bytes_copied: registry.gauge("kairos_shard_bytes_copied"),
            max_churn: registry.gauge("kairos_shard_max_churn"),
            solve_secs_total: registry.gauge("kairos_shard_solve_secs_total"),
            solve_usecs: registry.histogram("kairos_shard_solve_usecs"),
            registry,
        }
    }

    /// The registry these counters live in (what the `Metrics` RPC and
    /// the fleet-level exporters render).
    pub fn registry(&self) -> &kairos_obs::MetricsRegistry {
        &self.registry
    }

    /// Assemble the compatibility view.
    pub fn stats(&self) -> ControllerStats {
        ControllerStats {
            ticks: self.ticks.get(),
            samples_ingested: self.samples_ingested.get(),
            drift_checks: self.drift_checks.get(),
            resolves: self.resolves.get(),
            total_moves: self.total_moves.get(),
            forced_steps: self.forced_steps.get(),
            bytes_copied: self.bytes_copied.get(),
            max_churn: self.max_churn.get(),
            solve_secs_total: self.solve_secs_total.get(),
            profile_refreshes: self.profile_refreshes.get(),
        }
    }

    /// Seed the registry from a checkpointed view (restore path).
    pub fn restore(&self, stats: &ControllerStats) {
        self.ticks.set(stats.ticks);
        self.samples_ingested.set(stats.samples_ingested);
        self.drift_checks.set(stats.drift_checks);
        self.resolves.set(stats.resolves);
        self.total_moves.set(stats.total_moves);
        self.forced_steps.set(stats.forced_steps);
        self.bytes_copied.set(stats.bytes_copied);
        self.max_churn.set(stats.max_churn);
        self.solve_secs_total.set(stats.solve_secs_total);
        self.profile_refreshes.set(stats.profile_refreshes);
    }
}

/// The online consolidation daemon — a single-shard fleet.
pub struct Controller {
    shard: ShardController,
}

impl Controller {
    pub fn new(cfg: ControllerConfig, engine: ConsolidationEngine) -> Controller {
        Controller {
            shard: ShardController::new(cfg, engine),
        }
    }

    /// Attach a workload's telemetry stream. Arrival of a new workload
    /// after the initial plan triggers a membership re-plan once the
    /// newcomer has enough observed windows.
    pub fn add_workload(&mut self, source: Box<dyn TelemetrySource>) {
        self.shard.add_workload(source);
    }

    /// Attach a replicated workload (`replicas` copies, distinct hosts).
    pub fn add_workload_with_replicas(&mut self, source: Box<dyn TelemetrySource>, replicas: u32) {
        self.shard.add_workload_with_replicas(source, replicas);
    }

    /// Declare that `a` and `b` must never share a machine.
    pub fn add_anti_affinity(&mut self, a: &str, b: &str) {
        self.shard.add_anti_affinity(a, b);
    }

    /// Detach a workload: telemetry dropped, tenant retired, and an
    /// opportunistic repack scheduled (departures free capacity).
    pub fn remove_workload(&mut self, name: &str) {
        self.shard.remove_workload(name);
    }

    pub fn stats(&self) -> ControllerStats {
        self.shard.stats()
    }

    pub fn placement(&self) -> &FleetPlacement {
        self.shard.placement()
    }

    pub fn executor(&self) -> &FleetExecutor {
        self.shard.executor()
    }

    pub fn workloads(&self) -> Vec<String> {
        self.shard.workloads()
    }

    /// One monitoring interval: poll every source, then act.
    pub fn tick(&mut self) -> TickOutcome {
        self.shard.tick()
    }

    /// Re-evaluate the current placement against the current forecast —
    /// the "is the plan still sound" check exposed for tests and reports.
    /// `None` before the initial plan.
    pub fn verify_current(&self) -> Option<Evaluation> {
        self.shard.verify_current()
    }

    /// Latest drift reports without acting on them (observability hook).
    pub fn drift_snapshot(&self) -> Vec<DriftReport> {
        self.shard.drift_snapshot()
    }

    /// The underlying shard loop (summaries, handoff surface).
    pub fn shard(&self) -> &ShardController {
        &self.shard
    }

    pub fn shard_mut(&mut self) -> &mut ShardController {
        &mut self.shard
    }
}
