//! Synthetic production-fleet generator.
//!
//! The paper's Fig 7–9/13 experiments run on monitoring statistics from
//! four organizations (≈196 servers total). Those traces are proprietary;
//! this module synthesizes fleets with the *documented statistical
//! properties*:
//!
//! * fleet-wide mean CPU utilization below 4 % (§ abstract/intro);
//! * daily and weekly periodicity with per-server phase/amplitude
//!   variation (Fig 8, Fig 13);
//! * AR(1) noise and occasional load spikes;
//! * Second Life's pool of 27 machines running scheduled late-night
//!   snapshot jobs ("the late-night peaks are due to a pool of 27
//!   database machines performing snapshot operations", §7.5);
//! * heterogeneous hardware, normalized to standardized cores as in §6;
//! * RAM reported as *allocated* (gauging unavailable on historical
//!   statistics — the §6 RAM scaling factor applies downstream).

use crate::rrd::{ArchiveSpec, Consolidation, Rrd};
use kairos_types::{Bytes, SplitMix64, TimeSeries, WorkloadProfile};

/// The four real-world datasets of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// MIT CSAIL lab servers ("Internal"), 25 servers.
    Internal,
    /// Wikia.com, 34 servers.
    Wikia,
    /// Wikipedia's Tampa cluster, 40 servers.
    Wikipedia,
    /// Second Life, 97 servers.
    SecondLife,
}

impl Dataset {
    pub const ALL: [Dataset; 4] = [
        Dataset::Internal,
        Dataset::Wikia,
        Dataset::Wikipedia,
        Dataset::SecondLife,
    ];

    pub fn server_count(self) -> usize {
        match self {
            Dataset::Internal => 25,
            Dataset::Wikia => 34,
            Dataset::Wikipedia => 40,
            Dataset::SecondLife => 97,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Dataset::Internal => "Internal",
            Dataset::Wikia => "Wikia",
            Dataset::Wikipedia => "Wikipedia",
            Dataset::SecondLife => "SecondLife",
        }
    }
}

/// Per-dataset load character (calibrated against the paper's qualitative
/// descriptions and the Fig 7 consolidation-ratio band).
struct Character {
    /// Mean of the per-server base CPU utilization (fraction of its own
    /// machine), log-normally distributed.
    base_util: f64,
    base_util_sigma: f64,
    /// Diurnal amplitude as a multiple of base load.
    diurnal_amp: f64,
    /// Weekend attenuation factor.
    weekend_dip: f64,
    /// AR(1) noise sigma (fraction of base).
    noise: f64,
    /// Probability of a load spike per 5-minute sample.
    spike_prob: f64,
    /// Mean allocated-RAM fraction of machine RAM.
    ram_frac: f64,
    /// Working-set fraction of allocated RAM (drives the disk model).
    ws_frac: f64,
    /// Rows updated per second per standardized core of CPU load.
    write_intensity: f64,
    /// Number of machines with nightly scheduled jobs.
    night_job_machines: usize,
    /// Added utilization during the job window.
    night_job_magnitude: f64,
}

fn character(dataset: Dataset) -> Character {
    match dataset {
        // Idle lab machines: tiny base load, big over-provisioning.
        Dataset::Internal => Character {
            base_util: 0.006,
            base_util_sigma: 0.8,
            diurnal_amp: 2.0,
            weekend_dip: 0.55,
            noise: 0.35,
            spike_prob: 0.002,
            ram_frac: 0.45,
            ws_frac: 0.3,
            write_intensity: 220.0,
            night_job_machines: 0,
            night_job_magnitude: 0.0,
        },
        // Web platform: strong diurnal swings, modest base.
        Dataset::Wikia => Character {
            base_util: 0.012,
            base_util_sigma: 0.6,
            diurnal_amp: 3.0,
            weekend_dip: 0.8,
            noise: 0.3,
            spike_prob: 0.003,
            ram_frac: 0.3,
            ws_frac: 0.3,
            write_intensity: 420.0,
            night_job_machines: 0,
            night_job_magnitude: 0.0,
        },
        // Large, busier cluster with smooth world-wide traffic.
        Dataset::Wikipedia => Character {
            base_util: 0.02,
            base_util_sigma: 0.5,
            diurnal_amp: 1.8,
            weekend_dip: 0.9,
            noise: 0.2,
            spike_prob: 0.002,
            ram_frac: 0.40,
            ws_frac: 0.2,
            write_intensity: 250.0,
            night_job_machines: 0,
            night_job_magnitude: 0.0,
        },
        // Virtual world: busier still, nightly snapshot pool of 27.
        Dataset::SecondLife => Character {
            base_util: 0.022,
            base_util_sigma: 0.5,
            diurnal_amp: 1.6,
            weekend_dip: 1.05,
            noise: 0.25,
            spike_prob: 0.004,
            ram_frac: 0.45,
            ws_frac: 0.2,
            write_intensity: 300.0,
            night_job_machines: 27,
            night_job_magnitude: 0.3,
        },
    }
}

/// Generation settings.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Horizon in weeks (Fig 13 needs 3; Fig 7 uses the last day).
    pub weeks: usize,
    /// Sampling interval (the paper settles on 5-minute windows).
    pub interval_secs: f64,
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            weeks: 3,
            interval_secs: 300.0,
            seed: 0x5EED,
        }
    }
}

/// One monitored production server.
#[derive(Debug, Clone)]
pub struct ServerTrace {
    pub name: String,
    pub cores: u32,
    pub clock_ghz: f64,
    pub ram_total: Bytes,
    /// CPU load in standardized cores.
    pub cpu: TimeSeries,
    /// RAM the OS reports in use (allocated view), bytes.
    pub ram: TimeSeries,
    /// Disk-model working set, bytes.
    pub ws: TimeSeries,
    /// Disk-model update rate, rows/s.
    pub rate: TimeSeries,
}

impl ServerTrace {
    /// Standardized-core capacity of this machine.
    pub fn standardized_cores(&self) -> f64 {
        self.cores as f64 * self.clock_ghz / kairos_types::spec::STANDARD_CORE_GHZ
    }

    /// Mean CPU utilization as a fraction of this machine.
    pub fn mean_cpu_utilization(&self) -> f64 {
        self.cpu.mean() / self.standardized_cores()
    }

    /// Convert to the consolidation-engine input, applying the §6 RAM
    /// scaling factor (historical statistics cannot be gauged; the paper
    /// estimates ~30 % savings, i.e. a 0.7 factor).
    pub fn to_profile(&self, ram_scale: f64) -> WorkloadProfile {
        WorkloadProfile::new(
            self.name.clone(),
            self.cpu.clone(),
            self.ram.scale(ram_scale),
            self.ws.clone(),
            self.rate.clone(),
        )
    }

    /// Replay this trace into an rrd store (exercises the monitoring
    /// path the organizations actually used).
    pub fn to_rrd(&self) -> Rrd {
        let mut rrd = Rrd::new(
            self.cpu.interval_secs(),
            vec![ArchiveSpec {
                step: 1,
                capacity: self.cpu.len(),
                cf: Consolidation::Average,
            }],
        );
        for &v in self.cpu.values() {
            rrd.push(v);
        }
        rrd
    }
}

/// Hardware mixes per dataset (cores, clock GHz, RAM GiB) with weights.
fn hardware_mix(dataset: Dataset) -> &'static [(u32, f64, u64, f64)] {
    match dataset {
        Dataset::Internal => &[(4, 2.33, 8, 0.4), (8, 2.66, 16, 0.4), (8, 3.0, 32, 0.2)],
        Dataset::Wikia => &[(8, 2.66, 16, 0.5), (8, 3.0, 32, 0.5)],
        Dataset::Wikipedia => &[(8, 2.66, 32, 0.4), (16, 2.66, 64, 0.6)],
        Dataset::SecondLife => &[(8, 3.0, 32, 0.5), (16, 2.66, 64, 0.5)],
    }
}

fn pick_hardware(rng: &mut SplitMix64, dataset: Dataset) -> (u32, f64, u64) {
    let mix = hardware_mix(dataset);
    let total: f64 = mix.iter().map(|m| m.3).sum();
    let mut draw = rng.next_f64() * total;
    for &(cores, ghz, ram, w) in mix {
        if draw < w {
            return (cores, ghz, ram);
        }
        draw -= w;
    }
    let last = mix.last().expect("non-empty mix");
    (last.0, last.1, last.2)
}

/// Generate one dataset's fleet.
pub fn generate_fleet(dataset: Dataset, cfg: &FleetConfig) -> Vec<ServerTrace> {
    let ch = character(dataset);
    let mut rng = SplitMix64::new(
        cfg.seed ^ (dataset.label().len() as u64) << 32 ^ dataset.server_count() as u64,
    );
    let samples = (cfg.weeks as f64 * 7.0 * 86_400.0 / cfg.interval_secs) as usize;
    let mut fleet = Vec::with_capacity(dataset.server_count());

    for i in 0..dataset.server_count() {
        let mut srng = rng.fork();
        let (cores, ghz, ram_gib) = pick_hardware(&mut srng, dataset);
        let std_cores = cores as f64 * ghz / kairos_types::spec::STANDARD_CORE_GHZ;
        let ram_total = Bytes::gib(ram_gib);

        // Per-server character draws.
        let base = ch.base_util * (ch.base_util_sigma * srng.next_gaussian()).exp();
        let amp = ch.diurnal_amp * srng.next_in(0.6, 1.4);
        let phase = srng.next_in(-2.0, 2.0) * 3600.0; // peak-hour jitter
        let ram_frac = (ch.ram_frac * srng.next_in(0.7, 1.3)).clamp(0.05, 0.9);
        let write_intensity = ch.write_intensity * srng.next_in(0.5, 1.6);
        let has_night_job = i < ch.night_job_machines;
        let night_start = srng.next_in(1.0, 3.0) * 3600.0; // 1–3 AM
        let night_len = srng.next_in(0.5, 1.5) * 3600.0;

        let mut cpu = Vec::with_capacity(samples);
        let mut ram = Vec::with_capacity(samples);
        let mut ws = Vec::with_capacity(samples);
        let mut rate = Vec::with_capacity(samples);
        let mut ar1 = 0.0f64;
        let mut spike = 0.0f64;

        for s in 0..samples {
            let t = s as f64 * cfg.interval_secs;
            let day_t = (t + phase).rem_euclid(86_400.0);
            let weekday = ((t / 86_400.0).floor() as u64) % 7;
            let weekend = weekday >= 5;

            // Daytime hump peaking mid-afternoon.
            let diurnal = {
                let x = (day_t / 86_400.0) * 2.0 * std::f64::consts::PI;
                let v = (x - 1.1 * std::f64::consts::PI).sin().max(0.0);
                v.powf(1.5)
            };
            let week_factor = if weekend { ch.weekend_dip } else { 1.0 };

            ar1 = 0.92 * ar1 + ch.noise * srng.next_gaussian() * base;
            if srng.next_f64() < ch.spike_prob {
                spike = base * srng.next_in(2.0, 8.0);
            }
            spike *= 0.85;

            let mut util = base * (1.0 + amp * diurnal) * week_factor + ar1 + spike;
            if has_night_job && day_t >= night_start && day_t < night_start + night_len {
                util += ch.night_job_magnitude;
            }
            // Production database servers in these fleets never run pegged
            // (fleet mean is < 4%); cap transient peaks below saturation so
            // a 16-core source burst stays placeable on the 12-core target.
            let util = util.clamp(0.0005, 0.65);

            let cpu_cores = util * std_cores;
            let ram_bytes = ram_total.as_f64() * ram_frac * (1.0 + 0.02 * (t / 86_400.0).sin());
            cpu.push(cpu_cores);
            ram.push(ram_bytes);
            let ws_bytes = ram_bytes * ch.ws_frac;
            ws.push(ws_bytes);
            let mut r = cpu_cores * write_intensity;
            if has_night_job && day_t >= night_start && day_t < night_start + night_len {
                r += 800.0; // snapshot I/O burst
            }
            // A source machine by definition sustains its own load on its
            // own single disk: cap the generated rate below the disk's
            // saturation frontier for this working set.
            let disk_cap = (7.5e13 / ws_bytes.max(1.0)).min(28_000.0);
            rate.push(r.min(0.8 * disk_cap));
        }

        fleet.push(ServerTrace {
            name: format!("{}-{:03}", dataset.label().to_lowercase(), i),
            cores,
            clock_ghz: ghz,
            ram_total,
            cpu: TimeSeries::new(cfg.interval_secs, cpu),
            ram: TimeSeries::new(cfg.interval_secs, ram),
            ws: TimeSeries::new(cfg.interval_secs, ws),
            rate: TimeSeries::new(cfg.interval_secs, rate),
        });
    }
    fleet
}

/// All four datasets concatenated (the paper's "ALL", ≈196 servers).
pub fn generate_all(cfg: &FleetConfig) -> Vec<ServerTrace> {
    Dataset::ALL
        .iter()
        .flat_map(|&d| generate_fleet(d, cfg))
        .collect()
}

/// Fleet-wide mean CPU utilization (fraction of each machine, averaged).
pub fn fleet_mean_utilization(fleet: &[ServerTrace]) -> f64 {
    if fleet.is_empty() {
        return 0.0;
    }
    fleet.iter().map(|s| s.mean_cpu_utilization()).sum::<f64>() / fleet.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_day() -> FleetConfig {
        FleetConfig {
            weeks: 1,
            ..Default::default()
        }
    }

    #[test]
    fn server_counts_match_paper() {
        assert_eq!(Dataset::Internal.server_count(), 25);
        assert_eq!(Dataset::Wikia.server_count(), 34);
        assert_eq!(Dataset::Wikipedia.server_count(), 40);
        assert_eq!(Dataset::SecondLife.server_count(), 97);
        let all = generate_all(&one_day());
        assert_eq!(all.len(), 196);
    }

    #[test]
    fn fleet_mean_utilization_below_four_percent() {
        // The paper's headline observation.
        let all = generate_all(&one_day());
        let mean = fleet_mean_utilization(&all);
        assert!(mean < 0.04, "fleet mean utilization {mean:.4} >= 4%");
        assert!(mean > 0.002, "suspiciously idle fleet: {mean:.4}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fleet(Dataset::Wikia, &one_day());
        let b = generate_fleet(Dataset::Wikia, &one_day());
        assert_eq!(a[0].cpu.values(), b[0].cpu.values());
        assert_eq!(a[7].rate.values(), b[7].rate.values());
    }

    #[test]
    fn traces_have_diurnal_structure() {
        // Mean daytime load should exceed mean nighttime load for a
        // strongly diurnal dataset.
        let fleet = generate_fleet(Dataset::Wikia, &one_day());
        let samples_per_day = (86_400.0 / 300.0) as usize;
        let mut day = 0.0;
        let mut night = 0.0;
        for s in &fleet {
            let vals = s.cpu.values();
            for (i, &v) in vals.iter().take(samples_per_day).enumerate() {
                let hour = i as f64 * 300.0 / 3600.0;
                if (10.0..18.0).contains(&hour) {
                    day += v;
                } else if !(6.0..22.0).contains(&hour) {
                    night += v;
                }
            }
        }
        assert!(
            day / 8.0 > night / 10.0 * 1.3,
            "daytime load should dominate: day {day}, night {night}"
        );
    }

    #[test]
    fn second_life_has_night_jobs() {
        let fleet = generate_fleet(Dataset::SecondLife, &one_day());
        // Machines 0..27 get scheduled snapshot jobs in the 1–4 AM window;
        // their aggregate night-time I/O must dwarf an equal-sized pool of
        // job-free machines.
        let night_rate = |s: &ServerTrace| -> f64 {
            s.rate
                .values()
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let hour = (*i as f64 * 300.0 / 3600.0) % 24.0;
                    (1.0..4.5).contains(&hour)
                })
                .map(|(_, &v)| v)
                .sum()
        };
        let pool: f64 = fleet[..27].iter().map(night_rate).sum();
        let others: f64 = fleet[27..54].iter().map(night_rate).sum();
        assert!(
            pool > others * 3.0,
            "snapshot pool night I/O {pool:.0} should dwarf {others:.0}"
        );
    }

    #[test]
    fn profiles_apply_ram_scaling() {
        let fleet = generate_fleet(Dataset::Internal, &one_day());
        let p_raw = fleet[0].to_profile(1.0);
        let p_scaled = fleet[0].to_profile(0.7);
        let r = p_scaled.ram_bytes.mean() / p_raw.ram_bytes.mean();
        assert!((r - 0.7).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_hardware_is_standardized() {
        let fleet = generate_all(&one_day());
        let distinct: std::collections::HashSet<(u32, u64)> =
            fleet.iter().map(|s| (s.cores, s.ram_total.0)).collect();
        assert!(distinct.len() >= 3, "expected a hardware mix");
        for s in &fleet {
            assert!(s.standardized_cores() > 0.0);
            // Utilization in [0, 1] after normalization.
            assert!(s.mean_cpu_utilization() <= 1.0);
        }
    }

    #[test]
    fn rrd_round_trip_preserves_mean() {
        let fleet = generate_fleet(Dataset::Internal, &one_day());
        let rrd = fleet[0].to_rrd();
        let series = rrd.series(0);
        assert!((series.mean() - fleet[0].cpu.mean()).abs() < 1e-9);
    }

    #[test]
    fn horizon_scales_with_weeks() {
        let one = generate_fleet(Dataset::Internal, &one_day());
        let three = generate_fleet(Dataset::Internal, &FleetConfig::default());
        assert_eq!(one[0].cpu.len() * 3, three[0].cpu.len());
    }
}
