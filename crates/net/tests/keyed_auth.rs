//! End-to-end frame authentication: a fleet keyed via `KAIROS_NET_KEY`
//! runs its full RPC control plane — connect, registration, ticks,
//! balance rounds, audits — over sealed frames, and an unsealed frame
//! from an unkeyed peer is rejected with zero state change, counted in
//! `kairos_net_auth_failures_total`, and explained in the shard's
//! decision trace.
//!
//! This lives in its own test binary because the process key is read
//! exactly once ([`kairos_net::auth::process_key`] is a `OnceLock`):
//! the variable must be set before the first net call in the process,
//! and no other test in the binary may expect unkeyed frames.

use kairos_controller::{ControllerConfig, SyntheticSource};
use kairos_fleet::{BalancerConfig, FleetConfig};
use kairos_net::{
    BalancerNode, LeaseConfig, LoopbackTransport, ShardNode, SourceEscrow, Transport,
};
use kairos_types::Bytes;
use kairos_workloads::RatePattern;
use std::sync::Arc;

const SHARDS: usize = 2;
const TENANTS_PER_SHARD: usize = 4;

fn quick_cfg() -> ControllerConfig {
    ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        ..ControllerConfig::default()
    }
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: quick_cfg(),
        balancer: BalancerConfig {
            machines_per_shard: 4,
            balance_every: 4,
            max_moves_per_round: 2,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    }
}

#[test]
fn keyed_fleet_runs_sealed_and_rejects_bare_frames_with_zero_state_change() {
    // Key the process before the first net call: every peer below —
    // balancer and both shard nodes — reads this one variable, exactly
    // how a fleet-wide secret reaches every node of a deployment.
    std::env::set_var(kairos_net::auth::KEY_ENV, "keyed-e2e-secret");
    assert!(
        kairos_net::auth::process_key().is_some(),
        "the process key must resolve from the environment"
    );

    let transport = Arc::new(LoopbackTransport::new());
    let escrow = SourceEscrow::new();
    let mut nodes = Vec::new();
    let mut handles = Vec::new();
    for shard in 0..SHARDS {
        let node = ShardNode::new(
            quick_cfg(),
            kairos_core::ConsolidationEngine::builder().build(),
            Box::new(escrow.clone()),
        );
        handles.push(
            node.serve(transport.as_ref(), &format!("shard-{shard}"))
                .expect("serves"),
        );
        nodes.push(node);
    }
    let endpoints: Vec<String> = (0..SHARDS).map(|s| format!("shard-{s}")).collect();
    let lease = LeaseConfig { miss_limit: 3 };
    let mut balancer = BalancerNode::connect(fleet_cfg(), lease, transport.clone(), &endpoints)
        .expect("keyed balancer connects over sealed frames");
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let name = format!("s{shard}-t{i}");
            escrow.park(Box::new(
                SyntheticSource::new(
                    name.clone(),
                    300.0,
                    Bytes::gib(4),
                    RatePattern::Flat { tps: 200.0 },
                )
                .with_noise(0.0),
            ));
            balancer
                .add_workload_to(shard, &name, 1)
                .expect("registers");
        }
    }

    // The whole keyed control plane works: ticks flow, rounds run, the
    // audit completes — every frame on the wire carried a valid tag.
    for _ in 0..20 {
        let report = balancer.tick();
        assert!(report.down.is_empty(), "keyed traffic must not miss leases");
    }
    let audit = balancer.audit();
    assert!(audit.complete());
    assert!(audit.zero_violations());

    // An unkeyed peer — same frame layout, no tag. The shard must
    // reject it before decoding: an Error response (sealed, like every
    // reply), the failure counter bumped, an AuthRejected trace event,
    // and not one tick of shard state moved.
    let ticks_before = nodes[0].with_shard(|s| s.stats().ticks);
    let failures_before = kairos_net::auth::auth_failures().get();
    let bare = kairos_net::frame::encode_frame(&kairos_net::Request::Stats);
    let mut conn = transport.connect("shard-0").expect("connects");
    let reply = conn
        .call(&bare)
        .expect("delivered; rejected above transport");
    let key = kairos_net::auth::process_key().expect("keyed");
    let base = kairos_net::auth::verify(&reply, Some(key))
        .expect("the rejection itself comes back sealed");
    match kairos_net::frame::decode_frame::<kairos_net::Response>(base) {
        Ok(kairos_net::Response::Error(msg)) => {
            assert!(msg.contains("unauthenticated"), "rejection says why: {msg}")
        }
        other => panic!("bare frame must draw a sealed Error, got {other:?}"),
    }
    assert_eq!(
        kairos_net::auth::auth_failures().get(),
        failures_before + 1,
        "kairos_net_auth_failures_total counts the rejection"
    );
    assert_eq!(
        nodes[0].with_shard(|s| s.stats().ticks),
        ticks_before,
        "zero state change on the rejected frame"
    );
    nodes[0].with_shard(|s| {
        assert!(
            s.trace_events().iter().any(|e| matches!(
                &e.event,
                kairos_obs::DecisionEvent::AuthRejected { endpoint } if endpoint == "shard-0"
            )),
            "the shard's decision trace explains the rejection"
        )
    });

    // A forged tag (right length, wrong key) is rejected the same way.
    let forged = kairos_net::AuthKey::from_secret(b"not-the-secret")
        .seal(kairos_net::frame::encode_frame(&kairos_net::Request::Stats));
    let reply = conn.call(&forged).expect("delivered");
    let base = kairos_net::auth::verify(&reply, Some(key)).expect("sealed rejection");
    assert!(matches!(
        kairos_net::frame::decode_frame::<kairos_net::Response>(base),
        Ok(kairos_net::Response::Error(_))
    ));
    assert_eq!(kairos_net::auth::auth_failures().get(), failures_before + 2);

    // And the keyed fleet keeps running clean after the noise.
    for _ in 0..8 {
        let report = balancer.tick();
        assert!(report.down.is_empty());
    }
    drop(handles);
}
