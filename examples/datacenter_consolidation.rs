//! Consolidate a synthetic production fleet (the Fig 7 scenario): generate
//! the four organizations' server fleets, convert their monitoring traces
//! into workload profiles, and compare Kairos against the greedy baseline
//! and the idealized fractional bound.
//!
//! ```text
//! cargo run --release --example datacenter_consolidation
//! ```

use kairos::core::{ConsolidationEngine, PlanStrategy};
use kairos::traces::{generate_fleet, Dataset, FleetConfig};
use kairos::types::WorkloadProfile;

fn main() {
    let cfg = FleetConfig {
        weeks: 1,
        ..Default::default()
    };
    let engine = ConsolidationEngine::builder().headroom(0.95).build();

    println!("dataset      servers  greedy  kairos  ideal  ratio");
    println!("-----------  -------  ------  ------  -----  -----");
    for dataset in Dataset::ALL {
        let fleet = generate_fleet(dataset, &cfg);
        // Historical statistics cannot be gauged: apply the paper's 30%
        // RAM scaling factor (§6).
        let profiles: Vec<WorkloadProfile> = fleet.iter().map(|s| s.to_profile(0.7)).collect();

        let kairos = engine
            .consolidate_with(&profiles, PlanStrategy::Kairos)
            .expect("feasible");
        let greedy = engine
            .consolidate_with(&profiles, PlanStrategy::Greedy)
            .map(|p| p.machines_used().to_string())
            .unwrap_or_else(|_| "n/a".into());
        let ideal = engine.fractional_bound(&profiles).unwrap();

        println!(
            "{:<11}  {:>7}  {:>6}  {:>6}  {:>5}  {:>4.1}",
            dataset.label(),
            profiles.len(),
            greedy,
            kairos.machines_used(),
            ideal,
            kairos.consolidation_ratio()
        );
    }
}
