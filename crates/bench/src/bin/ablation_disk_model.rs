//! Ablation — what the non-linear disk model buys (the design choice
//! DESIGN.md calls out): pack the same fleet twice, once with the naive
//! linear ("sum of bytes") disk combiner and once with the Kairos
//! saturation-frontier combiner, then judge both plans under the
//! frontier model (the closest thing to ground truth the simulator's
//! checkpoint-stall behaviour validates).
//!
//! Expected: the linear combiner happily over-packs — its plans look
//! denser but violate the real disk constraint on some machine; the
//! non-linear plans stay feasible.

use kairos_bench::{print_table, section};
use kairos_core::AnalyticDiskCombiner;
use kairos_solver::{
    evaluate, solve, ConsolidationProblem, LinearDiskCombiner, SolverConfig, TargetMachine,
    WorkloadSpec,
};
use kairos_types::SplitMix64;
use std::sync::Arc;

fn fleet(seed: u64, n: usize) -> Vec<WorkloadSpec> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let ws = rng.next_in(2e9, 8e9);
            WorkloadSpec::flat(
                format!("w{i}"),
                12,
                rng.next_in(0.2, 1.5),
                ws * 1.4,
                ws,
                rng.next_in(300.0, 2_500.0),
            )
        })
        .collect()
}

fn main() {
    section("ablation: linear vs non-linear disk constraint in packing");
    let truth = Arc::new(AnalyticDiskCombiner::default());
    let mut rows = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let workloads = fleet(seed, 24);
        let cfg = SolverConfig::default();

        let linear_problem = ConsolidationProblem::new(
            workloads.clone(),
            TargetMachine::paper_target(),
            24,
            Arc::new(LinearDiskCombiner::default()),
        );
        let nonlinear_problem =
            ConsolidationProblem::new(workloads, TargetMachine::paper_target(), 24, truth.clone());

        let linear = solve(&linear_problem, &cfg).expect("linear plan");
        let nonlinear = solve(&nonlinear_problem, &cfg).expect("nonlinear plan");

        // Judge the linear plan under the frontier model.
        let linear_judged = evaluate(&nonlinear_problem, &linear.assignment);
        let max_disk_util = linear_judged
            .loads
            .iter()
            .flat_map(|(_, s)| s.iter().map(|w| w.disk))
            .fold(0.0, f64::max);

        rows.push(vec![
            seed.to_string(),
            linear.assignment.machines_used().to_string(),
            format!("{}", linear_judged.feasible),
            format!("{:.2}", max_disk_util),
            nonlinear.assignment.machines_used().to_string(),
            format!("{}", nonlinear.evaluation.feasible),
        ]);
    }
    print_table(
        &[
            "seed",
            "linear: machines",
            "…actually feasible?",
            "…worst disk util",
            "kairos: machines",
            "feasible",
        ],
        &rows,
    );
    println!(
        "\nlinear packing overcommits the disk (util > 1 means a saturated machine \
         after deployment); the non-linear model pays a few extra machines to stay safe."
    );
}
