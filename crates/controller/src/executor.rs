//! Migration execution against the simulated fleet.
//!
//! Each target machine is a [`kairos_dbsim::Host`] running one
//! consolidated [`DbmsInstance`] (the configuration Kairos recommends).
//! Executing a [`MigrationStep`] materializes the tenant on its
//! destination — database + table sized to the workload's working set,
//! bounded prewarm — and retires the source copy from the routing table.
//! Copy time is estimated from the tenant's bytes over the disk's
//! sequential bandwidth (reader and writer share the spindle, so half
//! bandwidth each way), the dominant cost of a physical-copy migration.
//!
//! After the destination copy materializes, the source copy is garbage
//! collected: [`kairos_dbsim::Host::remove_database`] drops the tenant's
//! database, discarding its pages from the source buffer pool and
//! reclaiming its disk footprint — so long-running fleets' hosts stay
//! faithful to the placement map instead of accumulating ghost tenants.

use crate::migration::{MigrationPlan, MigrationStep};
use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_solver::ConsolidationProblem;
use kairos_types::{Bytes, MachineSpec};
use std::collections::BTreeMap;

/// Rows in simulated tenant tables match the paper's ~164-byte rows.
const ROW_BYTES: u64 = 164;
/// Prewarm at most this many pages per migrated tenant (bounded warm-up).
const PREWARM_PAGES_CAP: u64 = 4096;

/// One tenant's current physical location.
#[derive(Debug, Clone, Copy)]
struct Tenant {
    machine: usize,
    db: kairos_dbsim::DatabaseId,
    bytes: Bytes,
    /// Rows the tenant table was created with — recorded so a restored
    /// executor can re-materialize the identical table (same pages, same
    /// byte accounting) instead of re-deriving rows from page-rounded
    /// bytes.
    rows: u64,
}

/// What executing a plan did. Serializable: it rides inside
/// [`crate::TickOutcome`], which the RPC shard nodes (`kairos-net`)
/// return to the balancer as wire frames.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ExecutionReport {
    pub steps: usize,
    pub moves: usize,
    pub provisions: usize,
    /// Tenant bytes physically copied between machines.
    pub bytes_copied: f64,
    /// Estimated wall-clock migration time (copy at half sequential
    /// bandwidth per direction).
    pub est_migration_secs: f64,
    /// Steps that had to run through a transient overload.
    pub forced_steps: usize,
    /// Source-copy bytes reclaimed by tenant GC after moves completed.
    pub bytes_reclaimed: f64,
}

/// The simulated fleet executor.
pub struct FleetExecutor {
    machine_class: MachineSpec,
    consolidated_pool: Bytes,
    hosts: Vec<Host>,
    routing: BTreeMap<(String, u32), Tenant>,
}

impl FleetExecutor {
    /// A fleet of the paper's consolidation-target machines.
    pub fn new() -> FleetExecutor {
        FleetExecutor::with_machine(MachineSpec::consolidation_target(), Bytes::gib(8))
    }

    /// A fleet of a custom machine class, each host running one
    /// consolidated instance with the given buffer pool.
    pub fn with_machine(machine_class: MachineSpec, consolidated_pool: Bytes) -> FleetExecutor {
        FleetExecutor {
            machine_class,
            consolidated_pool,
            hosts: Vec::new(),
            routing: BTreeMap::new(),
        }
    }

    fn ensure_host(&mut self, machine: usize) {
        while self.hosts.len() <= machine {
            let mut spec = self.machine_class.clone();
            spec.name = format!("{}-{}", self.machine_class.name, self.hosts.len());
            let mut host = Host::new(spec);
            host.add_instance(DbmsInstance::new(DbmsConfig::mysql(self.consolidated_pool)));
            self.hosts.push(host);
        }
    }

    /// Hosts provisioned so far.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Machine currently serving a tenant.
    pub fn machine_of(&self, workload: &str, replica: u32) -> Option<usize> {
        self.routing
            .get(&(workload.to_string(), replica))
            .map(|t| t.machine)
    }

    /// Tenants currently routed to `machine`.
    pub fn tenants_on(&self, machine: usize) -> usize {
        self.routing
            .values()
            .filter(|t| t.machine == machine)
            .count()
    }

    /// Retire a tenant that left the fleet: routing entries dropped and
    /// every replica's database garbage-collected from its host.
    pub fn retire(&mut self, workload: &str) {
        let gone: Vec<Tenant> = self
            .routing
            .iter()
            .filter(|((w, _), _)| w == workload)
            .map(|(_, t)| *t)
            .collect();
        self.routing.retain(|(w, _), _| w != workload);
        for t in gone {
            self.gc_tenant(&t);
        }
    }

    /// Drop a retired copy's database from its host (tenant GC). Bytes
    /// reclaimed, or 0.0 when the host never materialized it.
    fn gc_tenant(&mut self, tenant: &Tenant) -> f64 {
        match self.hosts.get_mut(tenant.machine) {
            Some(host) => host
                .remove_database(0, tenant.db)
                .map(|b| b.as_f64())
                .unwrap_or(0.0),
            None => 0.0,
        }
    }

    /// Materialize one tenant on `machine` (database + working-set-sized
    /// table + bounded prewarm). Returns the tenant bytes.
    fn materialize(
        &mut self,
        workload: &str,
        replica: u32,
        machine: usize,
        ws_bytes: f64,
    ) -> Bytes {
        let rows = (ws_bytes / ROW_BYTES as f64).ceil().max(1.0) as u64;
        self.materialize_rows(workload, replica, machine, rows)
    }

    /// [`FleetExecutor::materialize`] with an explicit row count — the
    /// restore path re-creates checkpointed tenants through this, so the
    /// rebuilt tables match the originals page-for-page.
    fn materialize_rows(
        &mut self,
        workload: &str,
        replica: u32,
        machine: usize,
        rows: u64,
    ) -> Bytes {
        self.ensure_host(machine);
        let inst = self.hosts[machine].instance_mut(0);
        let db = inst.create_database(format!("{workload}#{replica}"));
        let table = inst
            .create_table(db, rows, ROW_BYTES)
            .expect("tenant table on a freshly ensured database");
        let pages = inst.table_pages(table);
        inst.prewarm_pages(table, pages.min(PREWARM_PAGES_CAP));
        let bytes = inst.table_bytes(table);
        self.routing.insert(
            (workload.to_string(), replica),
            Tenant {
                machine,
                db,
                bytes,
                rows,
            },
        );
        bytes
    }

    /// The routing table as checkpointable entries:
    /// `(workload, replica, machine, rows)`, sorted by key.
    pub fn routing_snapshot(&self) -> Vec<(String, u32, usize, u64)> {
        self.routing
            .iter()
            .map(|((w, r), t)| (w.clone(), *r, t.machine, t.rows))
            .collect()
    }

    /// Rebuild the executor's fleet from checkpointed routing entries:
    /// every tenant is re-materialized on its machine with its original
    /// row count (fresh database ids, bounded prewarm — the same state a
    /// real restart would rebuild from a physical copy).
    pub fn restore_routing(&mut self, entries: &[(String, u32, usize, u64)]) {
        for (workload, replica, machine, rows) in entries {
            self.materialize_rows(workload, *replica, *machine, *rows);
        }
    }

    /// Execute one step. Returns (bytes copied, est seconds, bytes GC'd
    /// from the source host once the destination copy was live).
    fn execute_step(
        &mut self,
        step: &MigrationStep,
        problem: &ConsolidationProblem,
    ) -> (f64, f64, f64) {
        let slot = problem.slots()[step.mv.slot];
        let spec = &problem.workloads[slot.workload];
        // Size the physical copy by the tenant's peak working set.
        let ws_peak = spec.ws.iter().copied().fold(0.0f64, f64::max).max(1.0);
        let old = self
            .routing
            .get(&(step.mv.workload.clone(), step.mv.replica))
            .copied();
        let moved_bytes = old.map(|t| t.bytes.as_f64()).unwrap_or(0.0);
        let bytes = self
            .materialize(&step.mv.workload, step.mv.replica, step.mv.to, ws_peak)
            .as_f64();
        // The move is complete: drop the source copy (DROP DATABASE) so
        // the old host's pool and disk footprint shrink accordingly. The
        // destination copy is always a fresh database, so the old one is
        // garbage even on a same-machine re-materialization.
        let reclaimed = old.map(|t| self.gc_tenant(&t)).unwrap_or(0.0);
        if step.mv.is_provision() {
            (0.0, 0.0, reclaimed)
        } else {
            let copied = moved_bytes.max(bytes);
            let half_bw = self.machine_class.disk.seq_bytes_per_sec / 2.0;
            (copied, copied / half_bw.max(1.0), reclaimed)
        }
    }

    /// Execute a whole plan step-by-step, in order.
    pub fn execute(
        &mut self,
        plan: &MigrationPlan,
        problem: &ConsolidationProblem,
    ) -> ExecutionReport {
        let mut report = ExecutionReport::default();
        for step in &plan.steps {
            let (copied, secs, reclaimed) = self.execute_step(step, problem);
            report.steps += 1;
            if step.mv.is_provision() {
                report.provisions += 1;
            } else {
                report.moves += 1;
            }
            if step.forced {
                report.forced_steps += 1;
            }
            report.bytes_copied += copied;
            report.est_migration_secs += secs;
            report.bytes_reclaimed += reclaimed;
        }
        report
    }
}

impl Default for FleetExecutor {
    fn default() -> FleetExecutor {
        FleetExecutor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::plan_migration;
    use kairos_solver::{Assignment, LinearDiskCombiner, TargetMachine, WorkloadSpec};
    use std::sync::Arc;

    fn problem(n: usize) -> ConsolidationProblem {
        let w = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 2, 1.0, 2e9, 256e6, 50.0))
            .collect();
        ConsolidationProblem::new(
            w,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        )
    }

    #[test]
    fn provisioning_creates_tenants_on_hosts() {
        let p = problem(3);
        let from = vec![None, None, None];
        let to = Assignment::new(vec![0, 0, 1]);
        let plan = plan_migration(&p, &from, &to);
        let mut exec = FleetExecutor::new();
        let report = exec.execute(&plan, &p);
        assert_eq!(report.provisions, 3);
        assert_eq!(report.moves, 0);
        assert_eq!(report.bytes_copied, 0.0, "provisions copy nothing");
        assert_eq!(exec.tenants_on(0), 2);
        assert_eq!(exec.tenants_on(1), 1);
        assert_eq!(exec.machine_of("w2", 0), Some(1));
        // The dbsim hosts really carry the databases.
        assert_eq!(exec.hosts()[0].instance(0).databases().len(), 2);
        assert_eq!(exec.hosts()[1].instance(0).databases().len(), 1);
    }

    #[test]
    fn moves_copy_bytes_and_update_routing() {
        let p = problem(2);
        let mut exec = FleetExecutor::new();
        // Provision first.
        let plan0 = plan_migration(&p, &[None, None], &Assignment::new(vec![0, 0]));
        exec.execute(&plan0, &p);
        // Then migrate w1 to machine 1.
        let plan1 = plan_migration(&p, &[Some(0), Some(0)], &Assignment::new(vec![0, 1]));
        let report = exec.execute(&plan1, &p);
        assert_eq!(report.moves, 1);
        assert!(
            report.bytes_copied >= 256e6,
            "copied {}",
            report.bytes_copied
        );
        assert!(report.est_migration_secs > 0.0);
        assert_eq!(exec.machine_of("w1", 0), Some(1));
    }

    #[test]
    fn retire_drops_routing() {
        let p = problem(1);
        let mut exec = FleetExecutor::new();
        exec.execute(&plan_migration(&p, &[None], &Assignment::new(vec![0])), &p);
        assert_eq!(exec.tenants_on(0), 1);
        exec.retire("w0");
        assert_eq!(exec.tenants_on(0), 0);
    }

    #[test]
    fn migration_gcs_source_copy() {
        let p = problem(2);
        let mut exec = FleetExecutor::new();
        exec.execute(
            &plan_migration(&p, &[None, None], &Assignment::new(vec![0, 0])),
            &p,
        );
        assert_eq!(exec.hosts()[0].instance(0).live_databases().count(), 2);
        let resident_before = exec.hosts()[0].instance(0).pool_resident_pages();
        assert!(resident_before > 0, "prewarm must populate the pool");

        let plan = plan_migration(&p, &[Some(0), Some(0)], &Assignment::new(vec![0, 1]));
        let report = exec.execute(&plan, &p);
        assert!(
            report.bytes_reclaimed >= 256e6,
            "source copy must be reclaimed, got {}",
            report.bytes_reclaimed
        );
        // The ghost tenant is gone from the source host: one live
        // database and a smaller resident working set.
        assert_eq!(exec.hosts()[0].instance(0).live_databases().count(), 1);
        assert!(exec.hosts()[0].instance(0).pool_resident_pages() < resident_before);
        assert_eq!(exec.hosts()[1].instance(0).live_databases().count(), 1);
        assert_eq!(exec.machine_of("w1", 0), Some(1));
    }

    #[test]
    fn retire_gcs_all_replicas() {
        let p = problem(1);
        let mut exec = FleetExecutor::new();
        exec.execute(&plan_migration(&p, &[None], &Assignment::new(vec![0])), &p);
        assert_eq!(exec.hosts()[0].instance(0).live_databases().count(), 1);
        exec.retire("w0");
        assert_eq!(exec.hosts()[0].instance(0).live_databases().count(), 0);
        assert_eq!(exec.hosts()[0].instance(0).pool_resident_pages(), 0);
    }
}
