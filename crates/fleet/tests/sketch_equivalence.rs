//! The tentpole's proof, the paper's way: balancer decisions made from
//! **sketched** telemetry match decisions made from **full** (lossless)
//! telemetry, and the resulting placements sit within a bounded
//! objective gap.
//!
//! Two fleets are built from identical deterministic tenant specs. One
//! runs the default lossy [`SketchConfig`] (9 marks + 32-sample tail);
//! the reference runs [`SketchConfig::lossless_for`] the telemetry
//! window, under which sketching is exact. Every handoff crosses as a
//! wire frame carrying sketched telemetry even in-process, so the lossy
//! path is genuinely exercised on every move. The property: identical
//! handoff histories tick-for-tick, and a final audit objective gap of
//! at most [`OBJECTIVE_GAP`] (with identical decisions the gap is zero;
//! the bound is what the property guarantees, not what it typically
//! measures).
//!
//! Seeded via `KAIROS_TEST_SEED` — the CI seed matrix sweeps this suite
//! with five different fleets.

use kairos_controller::{ControllerConfig, SyntheticSource, TelemetryConfig};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController, SketchConfig};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;

const SHARDS: usize = 4;
const TENANTS_PER_SHARD: usize = 8;
const TICKS: u64 = 80;
const WINDOW: usize = 96;
/// Relative objective gap the property guarantees between the sketched
/// and lossless runs' final placements.
const OBJECTIVE_GAP: f64 = 0.05;

/// One tenant's deterministic life: name, baseline rate, and an
/// optional mid-run spike (drift → re-solves → handoffs).
#[derive(Clone)]
struct TenantSpec {
    shard: usize,
    name: String,
    base_tps: f64,
    spike: Option<(u64, u64, f64)>,
}

fn random_specs(rng: &mut SplitMix64) -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let base_tps = 170.0 + rng.next_in(0.0, 80.0);
            // Shard 0 tenants spike mid-run so the balancer has real
            // cross-shard work; spike windows vary per seed.
            let spike = if shard == 0 && i < TENANTS_PER_SHARD / 2 {
                let at = 20 + rng.next_range(10);
                let until = at + 25 + rng.next_range(10);
                Some((at, until, 640.0 + rng.next_in(0.0, 120.0)))
            } else {
                None
            };
            specs.push(TenantSpec {
                shard,
                name: format!("s{shard}t{i:02}"),
                base_tps,
                spike,
            });
        }
    }
    specs
}

fn build_fleet(specs: &[TenantSpec], sketch: SketchConfig) -> FleetController {
    let cfg = FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            telemetry: TelemetryConfig {
                window_capacity: WINDOW,
                ..TelemetryConfig::default()
            },
            sketch,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 3,
            balance_every: 5,
            max_moves_per_round: 2,
            ..BalancerConfig::default()
        },
        tick_threads: 1,
    };
    let mut fleet = FleetController::new(cfg);
    for spec in specs {
        let mut src = SyntheticSource::new(
            spec.name.clone(),
            300.0,
            Bytes::gib(4),
            RatePattern::Flat { tps: spec.base_tps },
        );
        if let Some((at, until, tps)) = spec.spike {
            src = src
                .then_at(at, RatePattern::Flat { tps })
                .then_at(until, RatePattern::Flat { tps: spec.base_tps });
        }
        fleet.add_workload_to(spec.shard, Box::new(src));
    }
    fleet
}

/// The decision trail: every handoff record of every tick, as
/// comparable signatures.
fn run(fleet: &mut FleetController) -> Vec<(u64, String, usize, Option<usize>, String)> {
    let mut trail = Vec::new();
    for tick in 1..=TICKS {
        let report = fleet.tick();
        for h in &report.handoffs {
            trail.push((
                tick,
                h.tenant.clone(),
                h.from,
                h.to,
                format!("{:?}", h.outcome),
            ));
        }
    }
    trail
}

fn objective_sum(fleet: &FleetController) -> f64 {
    fleet
        .audit()
        .per_shard
        .iter()
        .flatten()
        .map(|e| e.objective)
        .sum()
}

#[test]
fn sketched_decisions_match_lossless_within_bounded_gap() {
    let mut rng = SplitMix64::from_env(0x5E7C_E001);
    let specs = random_specs(&mut rng);

    let mut sketched = build_fleet(&specs, SketchConfig::default());
    let mut lossless = build_fleet(&specs, SketchConfig::lossless_for(WINDOW));

    let sketched_trail = run(&mut sketched);
    let lossless_trail = run(&mut lossless);

    // The spike must have produced actual cross-shard decisions —
    // otherwise this test silently proves nothing.
    assert!(
        !sketched_trail.is_empty(),
        "the seeded spike must drive at least one handoff decision"
    );
    assert_eq!(
        sketched_trail, lossless_trail,
        "sketched telemetry must not change any balancing decision"
    );

    // Identical decisions → identical placements; the audited objective
    // gap stays within the guaranteed bound.
    let s = objective_sum(&sketched);
    let l = objective_sum(&lossless);
    let gap = if l.abs() > f64::EPSILON {
        ((s - l) / l).abs()
    } else {
        (s - l).abs()
    };
    assert!(
        gap <= OBJECTIVE_GAP,
        "objective gap {gap:.4} exceeds the {OBJECTIVE_GAP} bound (sketched {s:.3} vs lossless {l:.3})"
    );

    // Both runs end healthy: no capacity violations anywhere.
    assert!(sketched.audit().zero_violations());
    assert!(lossless.audit().zero_violations());
}

#[test]
fn sketched_summaries_preserve_decision_inputs_exactly() {
    // The summary fields the balancer orders shards by — machine
    // counts, feasibility, per-resource peaks — must be bit-identical
    // between a lossy sketch and the lossless reference, because peaks
    // and means are exact in every sketch by construction.
    let mut rng = SplitMix64::from_env(0x5E7C_E002);
    let specs = random_specs(&mut rng);
    let mut sketched = build_fleet(&specs, SketchConfig::default());
    let mut lossless = build_fleet(&specs, SketchConfig::lossless_for(WINDOW));
    for _ in 0..30 {
        sketched.tick();
        lossless.tick();
    }
    for (a, b) in sketched.shards().iter().zip(lossless.shards().iter()) {
        let sa = a.summary();
        let sb = b.summary();
        assert_eq!(sa.machines_used, sb.machines_used);
        assert_eq!(sa.planned, sb.planned);
        assert_eq!(sa.tenants, sb.tenants);
        let pa: Vec<u64> = sa.aggregate.peaks().iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = sb.aggregate.peaks().iter().map(|v| v.to_bits()).collect();
        assert_eq!(pa, pb, "sketch peaks are exact by construction");
    }
}
