//! # kairos-traces — monitoring storage and production-fleet synthesis
//!
//! Three pieces supporting the paper's real-world experiments (§7.1,
//! §7.3, §7.5):
//!
//! * [`rrd`] — an rrdtool-style round-robin store with multi-resolution
//!   archives and AVG/MAX/MIN consolidation, the format the four
//!   organizations' monitoring systems (Cacti/Ganglia/Munin) recorded;
//! * [`fleet`] — calibrated synthetic fleets standing in for the
//!   proprietary Internal (25), Wikia (34), Wikipedia (40) and
//!   Second Life (97) server statistics, reproducing their documented
//!   statistical shape (sub-4 % mean utilization, diurnal/weekly cycles,
//!   night-job pools, heterogeneous hardware);
//! * [`predict`] — the Fig 13 predictability analysis (mean of past weeks
//!   predicts the next week);
//! * [`aggregate`] — shard-level roll-ups of per-tenant rolling windows,
//!   the coarse signal the sharded control plane's balancer consumes;
//! * [`sketch`] — fixed-size, peak-preserving quantile sketches of those
//!   windows, the O(1) representation summaries and handoffs ship.

pub mod aggregate;
pub mod fleet;
pub mod predict;
pub mod rrd;
pub mod sketch;

pub use aggregate::{sum_tail_aligned, sum_tail_aligned_refs, ShardAggregate};
pub use fleet::{
    fleet_mean_utilization, generate_all, generate_fleet, Dataset, FleetConfig, ServerTrace,
};
pub use predict::{fleet_total_cpu, predict_last_period, Prediction};
pub use rrd::{ArchiveSpec, Consolidation, Rrd};
pub use sketch::{
    AggregateSketch, SeriesSketch, SketchConfig, MAX_SKETCH_MARKS, MAX_SKETCH_TAIL,
    SKETCH_WIRE_VERSION,
};
