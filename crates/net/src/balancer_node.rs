//! The balancer-node role: `FleetController`'s cross-shard half, driven
//! purely over RPC.
//!
//! A [`BalancerNode`] owns what the fleet layer owns in-process — the
//! [`ShardMap`] routing truth, the balance policy state (cooldowns,
//! stats, the handoff audit log) — and *nothing* of what shards own
//! (telemetry, placements, solvers). Every observation and every
//! mutation of shard state crosses the [`crate::Transport`] as an RPC,
//! and the balance round itself is
//! [`kairos_fleet::balancer::run_balance_round`] — the **same** policy
//! code path the in-process `FleetController` runs, driven through
//! [`RemoteShard`] handles instead of direct `ShardController` access.
//! That single-code-path design is what the loopback equivalence
//! property test pins down: a fleet run over RPC is tick-for-tick
//! identical to the in-process fleet.
//!
//! ## Leases and failure detection
//!
//! Liveness is tick-based, not wall-clock-based (wall clocks would break
//! determinism): every successful RPC renews a shard's lease; every
//! failed one counts a miss. A shard at
//! [`LeaseConfig::miss_limit`] consecutive misses is **down**: the
//! balancer stops ticking it, its summary reads as unplanned (never a
//! donor, never a receiver), and the rest of the fleet keeps running.
//! Rejoin is **self-healing**: a restored node announces itself to the
//! balancer's lease endpoint (`Announce`, retried with bounded
//! deterministic tick-based backoff — see [`crate::ShardNode::announce_via`]),
//! and the balancer drains announces at the top of each tick and
//! *reconciles*: the routing map is the ownership truth, so a
//! restored-but-stale node drops tenants the map has since moved
//! elsewhere, and tenants the map routes to the node but its checkpoint
//! predates are re-seeded from scratch. The operator-driven path
//! ([`BalancerNode::rejoin`]) still exists underneath — an announce is
//! just a node asking for it.
//!
//! ## Balancer failover
//!
//! The balancer is itself a single point of control, so it serves a
//! lease endpoint of its own ([`BalancerNode::serve_lease`]) and any
//! number of [`StandbyBalancer`]s watch it. Promotion is deterministic
//! and double-guarded: standby rank `r` arms after `r × miss_limit`
//! consecutive misses (the lowest rank always arms first), and then
//! promotes only once the *fleet itself* has stopped making progress —
//! the split-brain guard, since a promoted lower rank never serves the
//! dead primary's old endpoint but does keep the shards' tick counters
//! moving. A promoted standby rebuilds the routing map **and** the
//! membership view (replica counts, anti-affinity pairs) from the
//! shards themselves — the ground truth the balancer state summarizes —
//! and adopts the fleet tick from the most advanced shard.
//!
//! The balancer's *soft* state — cooldown memory, the parked-handoff
//! lot, the handoff audit log, the chaos gate — no longer dies with
//! the primary: after every balance round the primary streams a
//! [`BalancerSoftState`] frame to each registered standby
//! ([`BalancerNode::add_standby_sync`] → `SyncState` RPC →
//! [`StandbyBalancer::serve_sync`]), and a promoted standby resumes
//! from the replicated state. The probe-first rebuild from shard
//! ground truth ([`BalancerNode::recover_stray_tenants`]) remains as
//! the fallback reconciliation — it catches whatever a lagging sync
//! missed (e.g. a tenant parked after the last acked frame).

use crate::frame;
use crate::rpc::{self, Request, Response};
use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use kairos_controller::{ControllerStats, FleetPlacement, ReSolver, TenantHandoff, TickOutcome};
use kairos_core::ConsolidationEngine;
use kairos_fleet::{
    run_balance_round, BalanceGate, BalancerSoftState, EvictedTenant, FleetAudit, FleetConfig,
    FleetMetrics, FleetStats, HandoffOutcome, HandoffRecord, ParkedHandoff, ShardHandle, ShardMap,
};
use kairos_obs::{
    DecisionEvent, DecisionLog, HealthMonitor, MetricsRegistry, ParkedAges, SpanLog, TracedEvent,
};
use kairos_solver::{evaluate, Assignment};
use kairos_traces::AggregateSketch;
use kairos_types::WorkloadProfile;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tick-based lease tuning.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Consecutive failed RPCs after which a shard is considered down
    /// (and a balancer's own lease endpoint, dead — scaled by standby
    /// rank; see the module docs).
    pub miss_limit: u32,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig { miss_limit: 3 }
    }
}

/// Consecutive transport-level I/O failures after which the in-call
/// redial-and-retry below stops — the link falls back to the lazy
/// once-per-tick redial, so a genuinely dead node costs one connect
/// attempt per tick, not two, while it runs down its lease.
const LINK_IO_RETRY_LIMIT: u32 = 3;

/// One shard's connection state. The connection is dialed lazily and
/// redialed after any transport failure (a broken TCP stream never
/// poisons the link permanently — the next call reconnects, which is
/// also what makes [`BalancerNode::set_endpoint`] take effect on the
/// very next RPC).
struct ShardLink {
    endpoint: String,
    transport: Arc<dyn Transport>,
    conn: Option<Box<dyn Conn>>,
    missed: u32,
    /// Consecutive transport-level I/O failures (TCP resets, closed
    /// streams) — gates the bounded in-call retry.
    io_fails: u32,
}

impl ShardLink {
    fn new(endpoint: &str, transport: Arc<dyn Transport>) -> ShardLink {
        ShardLink {
            endpoint: endpoint.to_string(),
            transport,
            conn: None,
            missed: 0,
            io_fails: 0,
        }
    }

    /// A transient stream-level failure worth one immediate redial: an
    /// I/O error that is not a timeout. A broken TCP stream (server
    /// restarted, connection reset, a corrupted frame closed the
    /// socket) fails instantly and a fresh dial usually succeeds — but
    /// a *timed-out* call may have been applied remotely, and blindly
    /// replaying it would double-apply non-idempotent requests like
    /// `Tick`. Injected faults (`Unreachable`, `Dropped`) are never
    /// I/O errors, so the chaos harness's loopback fault accounting is
    /// untouched by the retry.
    fn transient_io(e: &NetError) -> bool {
        matches!(
            e,
            NetError::Io(err) if !matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            )
        )
    }

    /// One dial-if-needed RPC attempt, no lease accounting.
    fn attempt(&mut self, request: &Request) -> Result<Response, NetError> {
        if self.conn.is_none() {
            self.conn = Some(self.transport.connect(&self.endpoint)?);
        }
        let conn = self.conn.as_deref_mut().expect("just dialed");
        let result = rpc::call(conn, request);
        match &result {
            Ok(_) | Err(NetError::Remote(_)) => {}
            Err(_) => self.conn = None,
        }
        result
    }

    /// One RPC with lease accounting: success (or a *remote* error — the
    /// peer answered, so it is alive) renews the lease; transport
    /// failures count a miss and drop the connection for a redial. A
    /// transient stream-level I/O failure gets one immediate
    /// redial-and-retry (bounded by [`LINK_IO_RETRY_LIMIT`] consecutive
    /// failures), so a single broken TCP stream costs zero lease misses
    /// instead of one per in-flight call.
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let mut result = self.attempt(request);
        if let Err(e) = &result {
            if Self::transient_io(e) && self.io_fails < LINK_IO_RETRY_LIMIT {
                result = self.attempt(request);
            }
        }
        match &result {
            Ok(_) | Err(NetError::Remote(_)) => {
                self.missed = 0;
                self.io_fails = 0;
            }
            Err(e) => {
                self.missed = self.missed.saturating_add(1);
                if Self::transient_io(e) {
                    self.io_fails = self.io_fails.saturating_add(1);
                } else {
                    self.io_fails = 0;
                }
            }
        }
        result
    }

    fn down(&self, miss_limit: u32) -> bool {
        self.missed >= miss_limit
    }
}

/// What one balancer tick did.
#[derive(Debug)]
pub struct NetTickReport {
    /// Per-shard outcome; `None` for shards that are down (or whose Tick
    /// RPC failed this interval).
    pub outcomes: Vec<Option<TickOutcome>>,
    /// Handoffs proposed by this tick's balance round (empty off-cadence).
    pub handoffs: Vec<HandoffRecord>,
    /// Shards currently past their lease (skipped until rejoin).
    pub down: Vec<usize>,
}

/// The RPC balancer. See module docs.
pub struct BalancerNode {
    cfg: FleetConfig,
    lease: LeaseConfig,
    transport: Arc<dyn Transport>,
    links: Vec<ShardLink>,
    map: ShardMap,
    /// Replica counts by tenant — needed to re-seed a tenant lost to a
    /// pre-checkpoint node death.
    replicas: BTreeMap<String, u32>,
    anti_affinity: Vec<(String, String)>,
    cooldown: BTreeMap<String, u64>,
    handoff_log: Vec<HandoffRecord>,
    /// Parking lot for handoffs stranded mid-handshake by transport
    /// faults; every balance round resolves it probe-first (see
    /// [`run_balance_round`]), so a tenant is never silently dropped
    /// and never blindly duplicated. The lot is this process's memory,
    /// but it no longer dies with the balancer: a promoted standby
    /// rebuilds it probe-first from shard ground truth (the evict
    /// outboxes — see [`BalancerNode::recover_stray_tenants`]), so a
    /// *triple* fault (double-fault parking followed by a balancer
    /// death) recovers the tenant at promotion instead of stranding it
    /// until a manual rejoin.
    parked: Vec<ParkedHandoff>,
    /// Chaos-harness hook: skip/delay injections over the balance
    /// cadence — same gate as the in-process fleet, so both interpret a
    /// chaos schedule identically. Idle by default.
    gate: BalanceGate,
    metrics: FleetMetrics,
    /// Transport-level lease misses observed by the tick loop (the
    /// `Metrics` exporters render it alongside the fleet counters).
    lease_misses: kairos_obs::Counter,
    /// Fleet-level decision trace: balancer-round events via the shared
    /// [`run_balance_round`] (recorded on this thread — byte-identical
    /// to the in-process `FleetController`'s trace by construction)
    /// plus the network-plane events only this role can see (lease
    /// misses, shard down, rejoin reconciliation, standby promotion).
    log: DecisionLog,
    /// Builds the audit's global problem with a real engine (shards are
    /// assumed homogeneous, the same contract as
    /// `FleetController::audit`) and the fleet anti-affinity list.
    audit_resolver: ReSolver,
    /// Mirror of the fleet tick counter for the served lease endpoint.
    lease_ticks: Arc<AtomicU64>,
    /// Standby sync endpoints ([`BalancerNode::add_standby_sync`]): the
    /// primary streams a [`BalancerSoftState`] frame to each after
    /// every balance round.
    standbys: Vec<StandbyLink>,
    /// `kairos_fleet_sync_lag_rounds` — rounds between the current
    /// balance round and the *least*-caught-up standby's last ack.
    /// Registered lazily with the first standby.
    sync_lag: Option<kairos_obs::FloatCell>,
    /// Announces received on the lease endpoint, drained (and
    /// reconciled via [`BalancerNode::rejoin`]) at the top of each
    /// tick: `(shard, endpoint, generation)`.
    announce_inbox: Arc<Mutex<Vec<(u64, String, u64)>>>,
    /// Authentication rejects observed by the lease endpoint's server
    /// thread, drained into the decision trace on the tick thread (the
    /// trace itself is single-writer).
    auth_reject_notes: Arc<Mutex<Vec<String>>>,
    /// Balancer-side causal span log (`balance_round` roots plus
    /// `handoff`/`parked_retry` children); shard-side spans live on the
    /// shard nodes and chain in via each RPC frame's span section.
    spans: SpanLog,
    /// The health watchdog, when armed ([`BalancerNode::set_health`]).
    /// Observed once per **balance round** over the balancer +
    /// process-global registries; newly fired rules trace as
    /// `HealthFlagged`.
    health: Option<HealthMonitor>,
    /// Last balance round the watchdog observed — round cadence matters
    /// because trend rules (sync-lag growth) watch gauges that only
    /// move once per round; observing between rounds would read
    /// plateaus and never see strict growth.
    health_round: Option<u64>,
    /// First-seen balance round per parked tenant — feeds the
    /// `kairos_fleet_parked_oldest_rounds` gauge the watchdog's
    /// aged-parked-handoff rule watches.
    parked_ages: ParkedAges,
    /// Last health report, shared with the lease endpoint's server
    /// thread so `Health` is answerable without crossing the balancer's
    /// mutable state (same discipline as the announce inbox).
    lease_health: Arc<Mutex<kairos_obs::HealthReport>>,
    /// Span-bytes snapshot for the lease endpoint's `Spans` answer,
    /// refreshed after each balance round (the only time spans record).
    lease_spans: Arc<Mutex<Vec<u8>>>,
}

/// Maximum sync-retry backoff, in balance rounds.
const MAX_SYNC_BACKOFF_ROUNDS: u64 = 8;

/// One standby's sync-replication state (primary side).
struct StandbyLink {
    endpoint: String,
    conn: Option<Box<dyn Conn>>,
    /// Highest round the standby has acked (`Synced { round }`).
    acked_round: u64,
    /// Consecutive failed syncs — drives the bounded deterministic
    /// backoff below, so a dead standby costs one connect attempt per
    /// backoff window, not per round.
    fails: u32,
    /// Skip sync attempts until this balance round.
    retry_at_round: u64,
}

impl BalancerNode {
    /// Connect to one shard-node endpoint per configured shard. The
    /// audit judges placements with a default engine; use
    /// [`BalancerNode::set_audit_engine`] for custom machine classes.
    /// (`cfg.tick_threads` is ignored: RPC dispatch is strictly serial —
    /// that is what makes delivery order deterministic.)
    pub fn connect(
        cfg: FleetConfig,
        lease: LeaseConfig,
        transport: Arc<dyn Transport>,
        endpoints: &[String],
    ) -> Result<BalancerNode, NetError> {
        assert_eq!(endpoints.len(), cfg.shards, "one endpoint per shard");
        assert!(cfg.shards >= 1, "need at least one shard");
        let mut links = Vec::with_capacity(endpoints.len());
        for endpoint in endpoints {
            let mut link = ShardLink::new(endpoint, transport.clone());
            link.conn = Some(transport.connect(endpoint)?);
            links.push(link);
        }
        let metrics = FleetMetrics::new(MetricsRegistry::new());
        let lease_misses = metrics.registry().counter("kairos_net_lease_misses_total");
        Ok(BalancerNode {
            map: ShardMap::new(cfg.shards),
            cfg,
            lease,
            transport,
            links,
            replicas: BTreeMap::new(),
            anti_affinity: Vec::new(),
            cooldown: BTreeMap::new(),
            handoff_log: Vec::new(),
            parked: Vec::new(),
            gate: BalanceGate::default(),
            metrics,
            lease_misses,
            log: DecisionLog::new(),
            audit_resolver: ReSolver::new(ConsolidationEngine::builder().build()),
            lease_ticks: Arc::new(AtomicU64::new(0)),
            standbys: Vec::new(),
            sync_lag: None,
            announce_inbox: Arc::new(Mutex::new(Vec::new())),
            auth_reject_notes: Arc::new(Mutex::new(Vec::new())),
            spans: SpanLog::new(kairos_obs::span::NODE_BALANCER),
            health: None,
            health_round: None,
            parked_ages: ParkedAges::new(),
            lease_health: Arc::new(Mutex::new(kairos_obs::HealthReport::default())),
            lease_spans: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Swap the engine the fleet audit builds its global problem with.
    pub fn set_audit_engine(&mut self, engine: ConsolidationEngine) {
        let anti = self.audit_resolver.anti_affinity.clone();
        self.audit_resolver = ReSolver::new(engine);
        self.audit_resolver.anti_affinity = anti;
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    pub fn stats(&self) -> FleetStats {
        self.metrics.stats()
    }

    /// The balancer's metrics registry (fleet counters, tick-latency
    /// histograms split poll vs. solve, lease misses, parked-lot depth).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// This balancer's registries — fleet-level plus the process-global
    /// transport instruments — as one flat JSON object. Shard-side
    /// metrics are a `Metrics` RPC away ([`BalancerNode::shard_metrics`]).
    pub fn metrics_json(&self) -> String {
        kairos_obs::render_json_all(&[self.metrics.registry(), kairos_obs::global()])
    }

    /// [`BalancerNode::metrics_json`] in Prometheus text format.
    pub fn metrics_prometheus(&self) -> String {
        kairos_obs::render_prometheus_all(&[self.metrics.registry(), kairos_obs::global()])
    }

    /// One shard node's rendered metrics `(json, prometheus)` over RPC;
    /// `None` for down shards.
    pub fn shard_metrics(&mut self, shard: usize) -> Option<(String, String)> {
        if self.links[shard].down(self.lease.miss_limit) {
            return None;
        }
        match self.links[shard].call(&Request::Metrics) {
            Ok(Response::Metrics { json, prometheus }) => Some((json, prometheus)),
            _ => None,
        }
    }

    /// One shard's decision-trace bytes over RPC; `None` for down
    /// shards. Byte-identical to the same shard's
    /// `ShardController::trace_bytes` — the trace crosses the wire as
    /// the canonical codec encoding, untranslated.
    pub fn shard_trace(&mut self, shard: usize) -> Option<Vec<u8>> {
        if self.links[shard].down(self.lease.miss_limit) {
            return None;
        }
        match self.links[shard].call(&Request::Trace) {
            Ok(Response::Trace(bytes)) => Some(bytes),
            _ => None,
        }
    }

    /// The fleet-level decision trace (balancer rounds + network-plane
    /// events).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// The fleet trace's events, oldest first.
    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.log.to_vec()
    }

    /// The canonical fleet trace bytes (workspace codec).
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.log.trace_bytes()
    }

    /// Chaos-harness injection: drop the next `n` due balance rounds.
    pub fn skip_balance_rounds(&mut self, n: u64) {
        self.gate.skip_rounds(n);
    }

    /// Chaos-harness injection: run each of the next `n` due balance
    /// rounds one tick late.
    pub fn delay_balance_rounds(&mut self, n: u64) {
        self.gate.delay_rounds(n);
    }

    /// The parked-handoff lot as `(tenant, donor, receiver)` triples —
    /// chaos-invariant introspection (an unowned-but-routed tenant must
    /// appear here, and the lot must drain once faults heal).
    pub fn parked_handoffs(&self) -> Vec<(String, usize, usize)> {
        self.parked
            .iter()
            .map(|p| (p.tenant.name.clone(), p.donor, p.receiver))
            .collect()
    }

    /// Enable or disable this balancer's decision tracing (shard-side
    /// logs are owned by the shard nodes).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.log.set_enabled(enabled);
    }

    /// Enable or disable this balancer's causal span tracing. Shard-side
    /// span logs are owned by the shard nodes (enable them there with
    /// `ShardController::configure_spans`); the context chains over RPC
    /// through each frame's span section either way.
    pub fn set_span_tracing(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
    }

    /// The balancer-side span log.
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// The balancer-side canonical span bytes (workspace codec).
    pub fn span_bytes(&self) -> Vec<u8> {
        self.spans.span_bytes()
    }

    /// One shard node's span-log bytes over RPC; `None` for down shards.
    pub fn shard_spans(&mut self, shard: usize) -> Option<Vec<u8>> {
        if self.links[shard].down(self.lease.miss_limit) {
            return None;
        }
        match self.links[shard].call(&Request::Spans) {
            Ok(Response::Spans(bytes)) => Some(bytes),
            _ => None,
        }
    }

    /// Arm (or disarm, with `None`) the health watchdog. Observed once
    /// per balance round; newly fired rules land in the decision trace
    /// as `HealthFlagged` events, so an armed watchdog's trace is only
    /// byte-identical across runs if the runs are healthy in the same
    /// rounds — chaos fingerprint runs keep it disarmed.
    pub fn set_health(&mut self, monitor: Option<HealthMonitor>) {
        self.health = monitor;
        self.health_round = None;
    }

    /// The watchdog's current report, if one is armed.
    pub fn health_report(&self) -> Option<kairos_obs::HealthReport> {
        self.health.as_ref().map(|m| m.report().clone())
    }

    /// One watchdog observation, when armed (see
    /// [`FleetController::set_health`]'s in-process counterpart): refresh
    /// the parked-age gauge, evaluate every rule over the balancer +
    /// process-global registries, trace what newly fired.
    fn observe_health(&mut self) {
        if self.health.is_none() {
            return;
        }
        // Round cadence: the gauges the trend rules watch (sync lag,
        // parked ages) only move when a balance round runs, so
        // per-tick observations between rounds would read plateaus.
        let round = self.metrics.balance_rounds.get();
        if self.health_round == Some(round) {
            return;
        }
        self.health_round = Some(round);
        let Some(mut monitor) = self.health.take() else {
            return;
        };
        let parked_tenants: Vec<String> =
            self.parked.iter().map(|p| p.tenant.name.clone()).collect();
        let oldest = self
            .parked_ages
            .update(round, parked_tenants.iter().map(|s| s.as_str()));
        self.metrics
            .registry()
            .gauge("kairos_fleet_parked_oldest_rounds")
            .set(oldest as f64);
        let tick = self.metrics.ticks.get();
        let registries = [self.metrics.registry(), kairos_obs::global()];
        for finding in monitor.observe(tick, &registries) {
            self.log.record(
                tick,
                DecisionEvent::HealthFlagged {
                    rule: finding.rule.clone(),
                    metric: finding.metric.clone(),
                    severity: finding.severity.name().to_string(),
                },
            );
        }
        *self.lease_health.lock().expect("lease health lock") = monitor.report().clone();
        self.health = Some(monitor);
    }

    /// Capture this balancer's current soft state — exactly what a
    /// `SyncState` push replicates. Diagnostics and tests (the
    /// failover regression compares a promoted standby's resumed state
    /// byte-for-byte against the dead primary's last capture).
    pub fn soft_state(&self) -> BalancerSoftState {
        BalancerSoftState::capture(
            self.metrics.balance_rounds.get(),
            self.metrics.ticks.get(),
            &self.cooldown,
            &self.parked,
            &self.handoff_log,
            self.gate,
        )
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// All handoffs ever proposed (completed, rejected and failed).
    pub fn handoffs(&self) -> &[HandoffRecord] {
        &self.handoff_log
    }

    /// Shards currently past their lease.
    pub fn down_shards(&self) -> Vec<usize> {
        (0..self.links.len())
            .filter(|&i| self.links[i].down(self.lease.miss_limit))
            .collect()
    }

    /// Register a brand-new tenant on a specific shard. The node binds
    /// the live source itself (by name, through its
    /// [`crate::SourceBinder`]); only the registration crosses the wire.
    pub fn add_workload_to(
        &mut self,
        shard: usize,
        tenant: &str,
        replicas: u32,
    ) -> Result<(), NetError> {
        match self.links[shard].call(&Request::AddWorkload {
            tenant: tenant.to_string(),
            replicas,
        })? {
            Response::Done => {
                self.map.assign(tenant, shard);
                if replicas > 1 {
                    self.replicas.insert(tenant.to_string(), replicas);
                }
                Ok(())
            }
            other => Err(NetError::Protocol(format!(
                "AddWorkload answered {other:?}"
            ))),
        }
    }

    /// Address-book update: point a shard's link at a new endpoint
    /// without connecting yet (the next RPC — or a promotion's
    /// reconnect — dials it). This is how standbys learn about a node
    /// respawned on a new port before they ever take over.
    pub fn set_endpoint(&mut self, shard: usize, endpoint: &str) {
        self.links[shard] = ShardLink::new(endpoint, self.transport.clone());
    }

    /// Operator override: re-assert that `tenant` lives on `shard` in
    /// the routing map without touching any node (used after an
    /// out-of-band transfer, e.g. an operator-driven evict/admit pair;
    /// the next rejoin reconciliation then enforces it).
    pub fn reroute(&mut self, tenant: &str, shard: usize) {
        self.map.assign(tenant, shard);
    }

    /// Retire a tenant wherever it currently lives. The node-side
    /// retirement happens first: on a transport failure the routing map
    /// is left untouched, so a retry actually retries (removing the map
    /// entry first would orphan a still-live tenant and turn retries
    /// into no-ops).
    pub fn remove_workload(&mut self, tenant: &str) -> Result<(), NetError> {
        let Some(shard) = self.map.shard_of(tenant) else {
            return Ok(());
        };
        self.links[shard].call(&Request::RemoveWorkload {
            tenant: tenant.to_string(),
        })?;
        self.map.remove(tenant);
        self.replicas.remove(tenant);
        self.cooldown.remove(tenant);
        // A retired tenant must not be resurrected by the parked-handoff
        // recovery path later.
        self.parked.retain(|p| p.tenant.name != tenant);
        Ok(())
    }

    /// Declare a fleet-wide anti-affinity pair (registered on every
    /// shard, and on the audit's problem builder). Idempotent at every
    /// layer — node-side registration skips known pairs — so a
    /// partially-failed call is safely retried whole.
    pub fn add_anti_affinity(&mut self, a: &str, b: &str) -> Result<(), NetError> {
        let known = self
            .anti_affinity
            .iter()
            .any(|(x, y)| (x == a && y == b) || (x == b && y == a));
        if !known {
            self.anti_affinity.push((a.to_string(), b.to_string()));
            self.audit_resolver
                .anti_affinity
                .push((a.to_string(), b.to_string()));
        }
        for link in &mut self.links {
            link.call(&Request::AddAntiAffinity {
                a: a.to_string(),
                b: b.to_string(),
            })?;
        }
        Ok(())
    }

    /// One monitoring interval: tick every live shard over RPC, then, on
    /// the balance cadence, one balance round — the shared
    /// [`run_balance_round`] policy over [`RemoteShard`] handles.
    pub fn tick(&mut self) -> NetTickReport {
        let started = Instant::now();
        self.metrics.ticks.inc();
        let tick = self.metrics.ticks.get();
        self.lease_ticks.store(tick, Ordering::SeqCst);
        self.drain_announces(tick);
        let miss_limit = self.lease.miss_limit;
        let mut outcomes: Vec<Option<TickOutcome>> = Vec::new();
        outcomes.resize_with(self.links.len(), || None);
        for (shard, outcome_slot) in outcomes.iter_mut().enumerate() {
            if self.links[shard].down(miss_limit) {
                continue;
            }
            match self.links[shard].call(&Request::Tick) {
                Ok(Response::Tick(outcome)) => *outcome_slot = Some(outcome),
                Ok(_) | Err(NetError::Remote(_)) => {}
                // Transport failure: the link already counted the miss;
                // the trace records it (and the down transition, the
                // moment the miss counter crosses the lease limit).
                Err(_) => {
                    self.lease_misses.inc();
                    self.log.record(
                        tick,
                        DecisionEvent::LeaseMiss {
                            shard,
                            missed: u64::from(self.links[shard].missed),
                            limit: u64::from(miss_limit),
                        },
                    );
                    if self.links[shard].missed == miss_limit {
                        self.log.record(tick, DecisionEvent::ShardDown { shard });
                    }
                }
            }
        }
        let on_cadence = tick.is_multiple_of(self.cfg.balancer.balance_every.max(1));
        let due = on_cadence && self.all_live_planned();
        let handoffs = if self.gate.admit(due) {
            self.balance_round()
        } else {
            Vec::new()
        };
        // Same latency classification as the in-process fleet: quiet
        // polling ticks vs. ticks that solved or moved tenants.
        let solved = !handoffs.is_empty()
            || outcomes.iter().flatten().any(|o| {
                matches!(
                    o,
                    TickOutcome::InitialPlan { .. } | TickOutcome::Replanned(_)
                )
            });
        let usecs = started.elapsed().as_micros() as u64;
        if solved {
            self.metrics.solve_tick_usecs.record(usecs);
        } else {
            self.metrics.poll_tick_usecs.record(usecs);
        }
        self.metrics.parked_depth.set(self.parked.len() as f64);
        self.observe_health();
        NetTickReport {
            outcomes,
            handoffs,
            down: self.down_shards(),
        }
    }

    /// Every live shard has produced its first plan (down shards are
    /// excluded — they read as unplanned in the round and can be neither
    /// donor nor receiver, so balancing the rest stays safe).
    fn all_live_planned(&mut self) -> bool {
        let miss_limit = self.lease.miss_limit;
        let mut any_live = false;
        for link in &mut self.links {
            if link.down(miss_limit) {
                continue;
            }
            any_live = true;
            match link.call(&Request::PlannedOnce) {
                Ok(Response::PlannedOnce(true)) => {}
                _ => return false,
            }
        }
        any_live
    }

    fn balance_round(&mut self) -> Vec<HandoffRecord> {
        self.metrics.balance_rounds.inc();
        let miss_limit = self.lease.miss_limit;
        let interval_secs = self.cfg.shard.telemetry.interval_secs;
        let mut handles: Vec<RemoteShard> = self
            .links
            .iter_mut()
            .map(|link| RemoteShard {
                link,
                miss_limit,
                interval_secs,
            })
            .collect();
        let records = run_balance_round(
            &mut handles,
            &self.cfg.balancer,
            self.metrics.balance_rounds.get(),
            self.metrics.ticks.get(),
            &mut self.cooldown,
            &mut self.parked,
            &mut self.log,
            &mut self.spans,
        );
        for record in &records {
            match record.outcome {
                HandoffOutcome::Completed => {
                    let to = record.to.expect("completed handoffs carry a destination");
                    self.map.assign(&record.tenant, to);
                    self.metrics.handoffs_completed.inc();
                }
                HandoffOutcome::NoReceiver => self.metrics.handoffs_rejected.inc(),
                HandoffOutcome::Failed => self.metrics.handoffs_failed.inc(),
            }
        }
        self.handoff_log.extend(records.iter().cloned());
        if self.spans.is_enabled() {
            *self.lease_spans.lock().expect("lease spans lock") = self.spans.span_bytes();
        }
        self.sync_to_standbys();
        records
    }

    /// Register a standby's sync endpoint (served by
    /// [`StandbyBalancer::serve_sync`]). After every balance round the
    /// primary captures its soft state — cooldown memory, the
    /// parked-handoff lot, the handoff audit log, the chaos gate — and
    /// streams it there as one checksummed `SyncState` frame.
    pub fn add_standby_sync(&mut self, endpoint: &str) {
        if self.sync_lag.is_none() {
            self.sync_lag = Some(
                self.metrics
                    .registry()
                    .gauge("kairos_fleet_sync_lag_rounds"),
            );
        }
        self.standbys.push(StandbyLink {
            endpoint: endpoint.to_string(),
            conn: None,
            acked_round: 0,
            fails: 0,
            retry_at_round: 0,
        });
    }

    /// Stream this round's [`BalancerSoftState`] to every registered
    /// standby. Failures back off deterministically (in rounds, capped
    /// at [`MAX_SYNC_BACKOFF_ROUNDS`]) and never block the round — a
    /// standby that misses frames resumes from the next one it acks,
    /// and whatever it missed is covered at promotion by the
    /// probe-first fallback ([`BalancerNode::recover_stray_tenants`]).
    fn sync_to_standbys(&mut self) {
        if self.standbys.is_empty() {
            return;
        }
        let round = self.metrics.balance_rounds.get();
        let state = BalancerSoftState::capture(
            round,
            self.metrics.ticks.get(),
            &self.cooldown,
            &self.parked,
            &self.handoff_log,
            self.gate,
        );
        let frame = state.to_frame();
        for standby in &mut self.standbys {
            if round < standby.retry_at_round {
                continue;
            }
            if standby.conn.is_none() {
                standby.conn = self.transport.connect(&standby.endpoint).ok();
            }
            let acked = standby.conn.as_deref_mut().and_then(|conn| {
                match rpc::call(
                    conn,
                    &Request::SyncState {
                        frame: frame.clone(),
                    },
                ) {
                    Ok(Response::Synced { round }) => Some(round),
                    _ => None,
                }
            });
            match acked {
                Some(acked_round) => {
                    standby.acked_round = standby.acked_round.max(acked_round);
                    standby.fails = 0;
                    standby.retry_at_round = 0;
                }
                None => {
                    standby.conn = None;
                    standby.fails = standby.fails.saturating_add(1);
                    let backoff = 1u64
                        .checked_shl(standby.fails)
                        .unwrap_or(MAX_SYNC_BACKOFF_ROUNDS)
                        .min(MAX_SYNC_BACKOFF_ROUNDS);
                    standby.retry_at_round = round + backoff;
                }
            }
        }
        let min_acked = self
            .standbys
            .iter()
            .map(|s| s.acked_round)
            .min()
            .unwrap_or(round);
        if let Some(gauge) = &self.sync_lag {
            gauge.set(round.saturating_sub(min_acked) as f64);
        }
    }

    /// Drain the lease endpoint's inboxes on the tick thread: record
    /// any authentication rejects, then reconcile pending announces
    /// through [`BalancerNode::rejoin`]. An announce that cannot be
    /// reconciled yet (the fault that killed the node still active) is
    /// re-queued for the next tick — and the node keeps re-announcing
    /// on its own backoff, so neither side forgets.
    fn drain_announces(&mut self, tick: u64) {
        let rejects: Vec<String> = {
            let mut notes = self.auth_reject_notes.lock().expect("auth note lock");
            std::mem::take(&mut *notes)
        };
        for endpoint in rejects {
            self.log
                .record(tick, DecisionEvent::AuthRejected { endpoint });
        }
        let pending: Vec<(u64, String, u64)> = {
            let mut inbox = self.announce_inbox.lock().expect("announce inbox lock");
            std::mem::take(&mut *inbox)
        };
        if pending.is_empty() {
            return;
        }
        // Keep the newest announce per shard: a node may have retried
        // while its first announce was still queued, or a replacement
        // node (higher generation) may have announced over a dead one.
        let mut newest: BTreeMap<u64, (String, u64)> = BTreeMap::new();
        for (shard, endpoint, generation) in pending {
            newest.insert(shard, (endpoint, generation));
        }
        for (shard, (endpoint, generation)) in newest {
            let idx = shard as usize;
            if idx >= self.links.len() {
                continue;
            }
            // A retry of an already-reconciled announce: the link
            // already points there and is healthy. Ignore.
            if self.links[idx].endpoint == endpoint && !self.links[idx].down(self.lease.miss_limit)
            {
                continue;
            }
            match self.rejoin(idx, &endpoint) {
                Ok(()) => self.log.record(
                    tick,
                    DecisionEvent::NodeAnnounced {
                        shard: idx,
                        endpoint,
                        generation,
                    },
                ),
                Err(_) => self
                    .announce_inbox
                    .lock()
                    .expect("announce inbox lock")
                    .push((shard, endpoint, generation)),
            }
        }
    }

    /// Command every live shard to checkpoint itself at
    /// `<dir>/shard-<i>.ksnp` (node-local paths — in the multi-process
    /// example all nodes share a filesystem; a real deployment would
    /// point each node at its own durable volume). Returns per-shard
    /// results; down shards are skipped with an error entry.
    pub fn checkpoint_shards(&mut self, dir: &str) -> Vec<Result<String, NetError>> {
        let miss_limit = self.lease.miss_limit;
        let mut results = Vec::with_capacity(self.links.len());
        for (shard, link) in self.links.iter_mut().enumerate() {
            let path = format!("{dir}/shard-{shard}.ksnp");
            if link.down(miss_limit) {
                results.push(Err(NetError::Unreachable(link.endpoint.clone())));
                continue;
            }
            results.push(
                match link.call(&Request::Checkpoint { path: path.clone() }) {
                    Ok(Response::Done) => Ok(path),
                    Ok(other) => Err(NetError::Protocol(format!("Checkpoint answered {other:?}"))),
                    Err(e) => Err(e),
                },
            );
        }
        results
    }

    /// Reconnect a (restored) shard node at `endpoint` and reconcile
    /// ownership: the routing map is the single-ownership truth, so the
    /// node drops tenants the map has since moved elsewhere, and tenants
    /// the map routes here but the node's checkpoint predates are
    /// re-seeded from scratch (fresh telemetry; its next ticks replan
    /// membership).
    pub fn rejoin(&mut self, shard: usize, endpoint: &str) -> Result<(), NetError> {
        let mut conn = self.transport.connect(endpoint)?;
        let owned: BTreeSet<String> = match rpc::call(conn.as_mut(), &Request::Workloads)? {
            Response::Workloads(names) => names.into_iter().collect(),
            other => {
                return Err(NetError::Protocol(format!("Workloads answered {other:?}")));
            }
        };
        // Stale copies: the restored checkpoint predates a handoff that
        // moved the tenant elsewhere. Map wins; the node retires them.
        let mut retired = Vec::new();
        for name in &owned {
            if self.map.shard_of(name) != Some(shard) {
                rpc::call(
                    conn.as_mut(),
                    &Request::RemoveWorkload {
                        tenant: name.clone(),
                    },
                )?;
                retired.push(name.clone());
            }
        }
        // Lost tenants: admitted (or added) after the checkpoint the
        // node restored from. Re-seed them; history is gone but
        // ownership is preserved.
        let mut reseeded = Vec::new();
        for tenant in self.map.tenants_of(shard) {
            if !owned.contains(&tenant) {
                let replicas = self.replicas.get(&tenant).copied().unwrap_or(1);
                rpc::call(
                    conn.as_mut(),
                    &Request::AddWorkload {
                        tenant: tenant.clone(),
                        replicas,
                    },
                )?;
                reseeded.push(tenant);
            }
        }
        // Constraints can postdate the checkpoint too: re-assert the
        // fleet anti-affinity list (idempotent node-side, so pairs the
        // checkpoint already carried are not duplicated).
        for (a, b) in &self.anti_affinity {
            rpc::call(
                conn.as_mut(),
                &Request::AddAntiAffinity {
                    a: a.clone(),
                    b: b.clone(),
                },
            )?;
        }
        let mut link = ShardLink::new(endpoint, self.transport.clone());
        link.conn = Some(conn);
        self.links[shard] = link;
        self.log.record(
            self.metrics.ticks.get(),
            DecisionEvent::ShardRejoined {
                shard,
                retired,
                reseeded,
            },
        );
        Ok(())
    }

    /// Global audit over RPC: pull every shard's forecasts and
    /// placement, build one global problem (from the audit resolver's
    /// engine and the fleet anti-affinity list), restrict it
    /// shard-by-shard and evaluate each shard's placement against its
    /// restriction — the same construction as `FleetController::audit`,
    /// bit-identical when the engines match. Down shards audit as
    /// `None`.
    pub fn audit(&mut self) -> FleetAudit {
        let miss_limit = self.lease.miss_limit;
        let shards = self.links.len();
        let mut profiles: Vec<WorkloadProfile> = Vec::new();
        let mut shard_indices: Vec<Vec<usize>> = Vec::with_capacity(shards);
        let mut placements: Vec<Option<FleetPlacement>> = Vec::with_capacity(shards);
        let mut planned: Vec<bool> = Vec::with_capacity(shards);
        for link in &mut self.links {
            if link.down(miss_limit) {
                shard_indices.push(Vec::new());
                placements.push(None);
                planned.push(false);
                continue;
            }
            let fleet = match link.call(&Request::ForecastFleet) {
                Ok(Response::Profiles(p)) => p,
                _ => Vec::new(),
            };
            let start = profiles.len();
            shard_indices.push((start..start + fleet.len()).collect());
            profiles.extend(fleet);
            placements.push(match link.call(&Request::Placement) {
                Ok(Response::Placement(p)) => Some(p),
                _ => None,
            });
            planned.push(matches!(
                link.call(&Request::PlannedOnce),
                Ok(Response::PlannedOnce(true))
            ));
        }
        let machines_used: Vec<usize> = placements
            .iter()
            .map(|p| p.as_ref().map_or(0, |p| p.machines_used()))
            .collect();
        let empty_audit = |machines_used: Vec<usize>| FleetAudit {
            per_shard: vec![None; shards],
            machines_used,
        };
        if profiles.is_empty() {
            return empty_audit(machines_used);
        }
        let Ok(global) = self.audit_resolver.problem(&profiles) else {
            return empty_audit(machines_used);
        };
        let mut per_shard = Vec::with_capacity(shards);
        for shard in 0..shards {
            let keep = &shard_indices[shard];
            let (true, false, Some(placement)) =
                (planned[shard], keep.is_empty(), placements[shard].as_ref())
            else {
                per_shard.push(None);
                continue;
            };
            let sub = global.restrict(keep);
            let slots = sub.slots();
            let mut machine_of = Vec::with_capacity(slots.len());
            let mut complete = true;
            for slot in &slots {
                let name = &sub.workloads[slot.workload].name;
                match placement.machine_of(name, slot.replica) {
                    Some(m) => machine_of.push(m),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            per_shard.push(if complete {
                Some(evaluate(&sub, &Assignment::new(machine_of)))
            } else {
                None
            });
        }
        FleetAudit {
            per_shard,
            machines_used,
        }
    }

    /// Explain an audit in terms of the decision traces: same
    /// construction as `FleetController::explain_audit`, with each
    /// flagged shard's trace pulled over the `Trace` RPC and merged with
    /// this balancer's own fleet-level log.
    pub fn explain_audit(&mut self, audit: &FleetAudit) -> String {
        let budget = self.cfg.balancer.machines_per_shard;
        let fleet_events = self.log.to_vec();
        let mut out = String::new();
        for shard in 0..audit.per_shard.len() {
            let verdict = match &audit.per_shard[shard] {
                None => "not evaluated (bootstrapping, mid-handoff or down)".to_string(),
                Some(e) if !e.feasible || e.violation > 0.0 => {
                    format!("infeasible (violation {:.3})", e.violation)
                }
                Some(_) if audit.machines_used[shard] > budget => format!(
                    "over budget ({} machines > {budget})",
                    audit.machines_used[shard]
                ),
                Some(_) => continue,
            };
            let shard_events: Vec<TracedEvent> = self
                .shard_trace(shard)
                .and_then(|bytes| serde::from_bytes(&bytes).ok())
                .unwrap_or_default();
            out.push_str(&format!("shard {shard}: {verdict}\n"));
            out.push_str(&kairos_obs::render_why_chain(
                shard,
                &shard_events,
                &fleet_events,
            ));
        }
        if out.is_empty() {
            "audit clean: every planned shard feasible and within budget\n".to_string()
        } else {
            out
        }
    }

    /// Per-shard loop counters over RPC (`None` for down shards).
    pub fn shard_stats(&mut self) -> Vec<Option<ControllerStats>> {
        let miss_limit = self.lease.miss_limit;
        self.links
            .iter_mut()
            .map(|link| {
                if link.down(miss_limit) {
                    return None;
                }
                match link.call(&Request::Stats) {
                    Ok(Response::Stats(s)) => Some(s),
                    _ => None,
                }
            })
            .collect()
    }

    /// Tenant names per shard over RPC (`None` for down shards).
    pub fn shard_workloads(&mut self) -> Vec<Option<Vec<String>>> {
        let miss_limit = self.lease.miss_limit;
        self.links
            .iter_mut()
            .map(|link| {
                if link.down(miss_limit) {
                    return None;
                }
                match link.call(&Request::Workloads) {
                    Ok(Response::Workloads(w)) => Some(w),
                    _ => None,
                }
            })
            .collect()
    }

    /// Ask every live shard node to exit (the multi-process example's
    /// clean teardown).
    pub fn shutdown_shards(&mut self) {
        for link in &mut self.links {
            let _ = link.call(&Request::Shutdown);
        }
    }

    /// Serve this balancer's own lease endpoint: standbys ping it and
    /// promote when it goes quiet, and restored shard nodes announce
    /// themselves here for rejoin. The balancer's mutable state never
    /// crosses this endpoint: `Ping` and `Announce` touch dedicated
    /// shared cells (announces land in an inbox the tick thread
    /// drains), and the observability read side — `Metrics`, `Health`,
    /// `Spans` for `kairos-top` and the CI scrape — answers from the
    /// shared registry and tick-thread-refreshed snapshots.
    pub fn serve_lease(
        &self,
        transport: &dyn Transport,
        endpoint: &str,
    ) -> Result<ServerHandle, NetError> {
        let ticks = self.lease_ticks.clone();
        let inbox = self.announce_inbox.clone();
        let reject_notes = self.auth_reject_notes.clone();
        let registry = self.metrics.registry().clone();
        let health = self.lease_health.clone();
        let spans = self.lease_spans.clone();
        let served = endpoint.to_string();
        let handler: Handler = Arc::new(Mutex::new(move |request_frame: &[u8]| {
            let key = crate::auth::process_key();
            let response = match crate::auth::verify(request_frame, key) {
                Ok(base) => match frame::decode_frame::<Request>(base) {
                    Ok(Request::Ping) => Response::Pong {
                        ticks: ticks.load(Ordering::SeqCst),
                    },
                    Ok(Request::Announce {
                        shard,
                        endpoint,
                        generation,
                    }) => {
                        inbox
                            .lock()
                            .expect("announce inbox lock")
                            .push((shard, endpoint, generation));
                        Response::Done
                    }
                    Ok(Request::Metrics) => Response::Metrics {
                        json: kairos_obs::render_json_all(&[&registry, kairos_obs::global()]),
                        prometheus: kairos_obs::render_prometheus_all(&[
                            &registry,
                            kairos_obs::global(),
                        ]),
                    },
                    Ok(Request::Health) => Response::Health(
                        health.lock().expect("lease health lock").clone(),
                    ),
                    Ok(Request::Spans) => Response::Spans(
                        spans.lock().expect("lease spans lock").clone(),
                    ),
                    Ok(other) => Response::Error(format!(
                        "balancer lease endpoint answers Ping/Announce/Metrics/Health/Spans, got {other:?}"
                    )),
                    Err(e) => Response::Error(format!("bad request frame: {e}")),
                },
                Err(_) => {
                    reject_notes
                        .lock()
                        .expect("auth note lock")
                        .push(served.clone());
                    Response::Error("unauthenticated frame".to_string())
                }
            };
            crate::auth::seal(frame::encode_frame(&response), key)
        }));
        transport.serve(endpoint, handler)
    }

    /// Rebuild balancer state from the shards themselves — the promotion
    /// path. The shards are the ground truth the routing map summarizes:
    /// each reports what it owns (single ownership holds because the
    /// two-phase handshake never leaves a tenant on two shards) **and**
    /// its membership view (replica counts, anti-affinity pairs — a
    /// re-seed after a node death must not silently drop a replica, and
    /// the audit must keep building the same constrained problem the
    /// dead primary built). The fleet tick resumes from the most
    /// advanced shard so cadences keep firing. Fails if any shard is
    /// unreachable — a promotion must start from a complete map.
    ///
    /// When a replicated [`BalancerSoftState`] is available the soft
    /// state — cooldown memory, the parked lot, the audit log and the
    /// chaos gate — resumes from the last synced frame, so hysteresis
    /// and history survive the primary; the probe-first stray recovery
    /// still runs afterwards as reconciliation and only touches
    /// tenants the replicated lot does not already track.
    fn adopt(&mut self, replicated: Option<&BalancerSoftState>) -> Result<(), NetError> {
        let mut map = ShardMap::new(self.links.len());
        let mut replicas: BTreeMap<String, u32> = BTreeMap::new();
        let mut anti_affinity: Option<Vec<(String, String)>> = None;
        let mut max_ticks = 0u64;
        for (shard, link) in self.links.iter_mut().enumerate() {
            // Fresh connections: the standby's links may never have been
            // used (or may predate a node restart).
            link.conn = Some(self.transport.connect(&link.endpoint)?);
            link.missed = 0;
            match link.call(&Request::Workloads)? {
                Response::Workloads(names) => {
                    for name in names {
                        map.assign(&name, shard);
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!("Workloads answered {other:?}")));
                }
            }
            match link.call(&Request::Membership)? {
                Response::Membership {
                    replicas: shard_replicas,
                    anti_affinity: shard_pairs,
                } => {
                    replicas.extend(shard_replicas);
                    // Every shard carries the full fleet pair list in
                    // registration order; the first one is canonical.
                    anti_affinity.get_or_insert(shard_pairs);
                }
                other => {
                    return Err(NetError::Protocol(format!("Membership answered {other:?}")));
                }
            }
            if let Response::Stats(stats) = link.call(&Request::Stats)? {
                max_ticks = max_ticks.max(stats.ticks);
            }
        }
        self.map = map;
        self.replicas = replicas;
        let anti_affinity = anti_affinity.unwrap_or_default();
        self.audit_resolver.anti_affinity = anti_affinity.clone();
        self.anti_affinity = anti_affinity;
        if let Some(state) = replicated {
            max_ticks = max_ticks.max(state.tick);
            self.cooldown = state.cooldown.clone();
            self.handoff_log = state.handoffs.clone();
            self.gate = state.gate;
            self.parked = state.parked_lot();
            // A parked tenant is owned by no shard (evicted at the
            // donor, never admitted at the receiver), so the ground-
            // truth rebuild above cannot route it. The dead primary's
            // map still did — the registration survived the failed
            // handoff — and the retry resolutions depend on that: a
            // `returned-to-donor` re-admit emits no re-routing record.
            // Restore the same routing for every replicated entry.
            for entry in &self.parked {
                if self.map.shard_of(&entry.tenant.name).is_none() {
                    self.map.assign(&entry.tenant.name, entry.donor);
                }
            }
            self.metrics.balance_rounds.set(state.round);
        }
        self.metrics.ticks.set(max_ticks);
        self.lease_ticks.store(max_ticks, Ordering::SeqCst);
        self.recover_stray_tenants(max_ticks)?;
        Ok(())
    }

    /// Rebuild the dead primary's parked-handoff lot from shard ground
    /// truth. The lot was the primary's memory; without this pass a
    /// standby promotion after a double-faulted handoff (evicted at the
    /// donor, admit failed at the receiver, owns probe unanswered)
    /// strands the tenant until a manual rejoin: it is owned by no
    /// shard, so the map rebuild above never sees it.
    ///
    /// Ground truth is the evict outbox: the donor node retains every
    /// evicted tenant's handoff frame until the tenant is admitted back
    /// somewhere it knows of. A tenant in some node's outbox and in no
    /// node's workload list is exactly a stranded handoff. Recovery is
    /// probe-first and happens where the frame lives: re-`Evict`
    /// replays the retained frame (idempotent retry path), `Admit`
    /// re-binds a source and re-admits at that shard. If even that
    /// fails (the node's binder cannot produce a source, or the shard
    /// faults again mid-recovery), the tenant parks in the *new*
    /// balancer's lot so every subsequent balance round keeps probing —
    /// recovered or parked, never forgotten.
    ///
    /// Tenants already tracked by the (possibly replicated) parked lot
    /// are skipped: the next balance round resolves them probe-first
    /// with their real donor/receiver context, which this promotion
    /// pass does not have.
    fn recover_stray_tenants(&mut self, tick: u64) -> Result<(), NetError> {
        for shard in 0..self.links.len() {
            let stray: Vec<String> = match self.links[shard].call(&Request::EvictOutbox)? {
                Response::Workloads(names) => names
                    .into_iter()
                    .filter(|name| {
                        self.map.shard_of(name).is_none()
                            && !self.parked.iter().any(|p| &p.tenant.name == name)
                    })
                    .collect(),
                other => {
                    return Err(NetError::Protocol(format!(
                        "EvictOutbox answered {other:?}"
                    )));
                }
            };
            for tenant in stray {
                let wire = match self.links[shard].call(&Request::Evict {
                    tenant: tenant.clone(),
                }) {
                    Ok(Response::Evicted(Some(wire))) => wire,
                    _ => Vec::new(),
                };
                let admitted = !wire.is_empty()
                    && matches!(
                        self.links[shard].call(&Request::Admit {
                            frame: wire.clone()
                        }),
                        Ok(Response::Done)
                    );
                if admitted {
                    self.map.assign(&tenant, shard);
                    if let Ok((_, tenant_replicas, _)) = TenantHandoff::parts_from_wire(&wire) {
                        if tenant_replicas > 1 {
                            self.replicas.insert(tenant.clone(), tenant_replicas);
                        }
                    }
                    self.log.record(
                        tick,
                        DecisionEvent::ParkedRetried {
                            tenant,
                            donor: shard,
                            receiver: shard,
                            resolution: "recovered-at-promotion".to_string(),
                        },
                    );
                } else {
                    self.log.record(
                        tick,
                        DecisionEvent::HandoffParked {
                            tenant: tenant.clone(),
                            donor: shard,
                            receiver: shard,
                        },
                    );
                    self.parked.push(ParkedHandoff {
                        donor: shard,
                        receiver: shard,
                        tenant: EvictedTenant {
                            name: tenant,
                            wire,
                            source: None,
                        },
                    });
                }
            }
        }
        Ok(())
    }

    /// The most advanced shard tick observable right now — the standby's
    /// fleet-activity probe (a dead lease endpoint with a *moving* fleet
    /// means another balancer already took over).
    fn max_shard_ticks(&mut self) -> u64 {
        let mut max_ticks = 0u64;
        for link in &mut self.links {
            if let Ok(Response::Stats(stats)) = link.call(&Request::Stats) {
                max_ticks = max_ticks.max(stats.ticks);
            }
        }
        max_ticks
    }
}

/// A shard behind a transport, as the shared balance round drives it.
/// Every trait method is one RPC; a down shard reads as an unplanned
/// summary (never donor, never receiver) so a dead node degrades the
/// round instead of wedging it.
pub struct RemoteShard<'a> {
    link: &'a mut ShardLink,
    miss_limit: u32,
    interval_secs: f64,
}

/// The summary a down/unreachable shard presents: unplanned, empty.
/// `planned: false` excludes it from donor and receiver orders.
pub(crate) fn offline_summary(interval_secs: f64) -> kairos_controller::ShardSummary {
    kairos_controller::ShardSummary {
        tenants: 0,
        planned: false,
        machines_used: 0,
        feasible: true,
        violation: 0.0,
        resolve_failed: false,
        drifting: 0,
        aggregate: AggregateSketch::empty(interval_secs),
        tenant_loads: Vec::new(),
    }
}

impl ShardHandle for RemoteShard<'_> {
    fn summary(&mut self) -> kairos_controller::ShardSummary {
        if self.link.down(self.miss_limit) {
            return offline_summary(self.interval_secs);
        }
        match self.link.call(&Request::Summary) {
            Ok(Response::Summary(summary)) => summary,
            _ => offline_summary(self.interval_secs),
        }
    }

    fn pack_estimate_remaining(&mut self) -> Option<usize> {
        match self.link.call(&Request::PackEstimate {
            exclude: Vec::new(),
        }) {
            Ok(Response::PackEstimate(est)) => est,
            _ => None,
        }
    }

    fn forecast(&mut self, tenant: &str) -> Option<WorkloadProfile> {
        match self.link.call(&Request::Forecast {
            tenant: tenant.to_string(),
        }) {
            Ok(Response::Forecast(profile)) => profile,
            _ => None,
        }
    }

    fn can_admit(&mut self, incoming: &WorkloadProfile, budget: usize) -> bool {
        matches!(
            self.link.call(&Request::CanAdmit {
                profile: incoming.clone(),
                budget,
            }),
            Ok(Response::CanAdmit(true))
        )
    }

    fn evict(&mut self, tenant: &str) -> Option<EvictedTenant> {
        // Two attempts: an Evict whose *response* is lost has already
        // removed the tenant node-side, and the node's evict outbox
        // makes the retry idempotent — it hands the same frame out
        // again, so a transient fault cannot strand the bytes between
        // the shard and the balancer.
        for _ in 0..2 {
            match self.link.call(&Request::Evict {
                tenant: tenant.to_string(),
            }) {
                Ok(Response::Evicted(Some(wire))) => {
                    return Some(EvictedTenant {
                        name: tenant.to_string(),
                        wire,
                        // The live source stays node-side: the
                        // destination re-binds its own (escrow
                        // in-process, factory across processes).
                        source: None,
                    });
                }
                Ok(_) => return None,
                Err(_) => {}
            }
        }
        // Both attempts failed at the transport. If the tenant is still
        // hosted, nothing happened — safe. If it is not (eviction
        // applied, both responses lost) the donor is effectively dying
        // mid-round; its lease is about to expire and the rejoin
        // reconciliation re-seeds map-routed tenants the node lost.
        None
    }

    fn admit(&mut self, tenant: EvictedTenant) -> Result<(), EvictedTenant> {
        match self.link.call(&Request::Admit {
            frame: tenant.wire.clone(),
        }) {
            Ok(Response::Done) => Ok(()),
            // Remote rejection (damaged frame, unbindable source) or a
            // transport failure: hand the frame back for the donor-side
            // rollback.
            _ => Err(tenant),
        }
    }

    fn owns(&mut self, tenant: &str) -> Option<bool> {
        match self.link.call(&Request::Owns {
            tenant: tenant.to_string(),
        }) {
            Ok(Response::Owns(owned)) => Some(owned),
            _ => None,
        }
    }
}

/// Pacing outcome of one standby watch interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandbyAction {
    /// The primary's lease is current (or not yet past this standby's
    /// threshold).
    Watching,
    /// This standby's promotion threshold was reached — call
    /// [`StandbyBalancer::promote`].
    Promote,
}

/// What a standby's sync endpoint observed for one applied frame:
/// `(round, parked, cooldowns, log_events)` — the shape of the
/// `StandbySynced` decision event it becomes once drained.
type SyncNote = (u64, usize, usize, usize);

/// A warm-standby balancer watching a primary's lease endpoint. See the
/// module docs for the rank-ordered deterministic promotion rule.
pub struct StandbyBalancer {
    node: BalancerNode,
    rank: u32,
    primary_endpoint: String,
    primary_conn: Option<Box<dyn Conn>>,
    missed: u32,
    /// Fleet progress at the previous over-threshold watch — the
    /// split-brain guard's memory (see [`StandbyBalancer::watch_tick`]).
    fleet_ticks_seen: Option<u64>,
    /// Consecutive over-threshold watches with no fleet progress.
    frozen_watches: u32,
    /// The newest [`BalancerSoftState`] the primary has streamed here
    /// (shared with the sync endpoint's server thread).
    replicated: Arc<Mutex<Option<BalancerSoftState>>>,
    /// Notes queued by the sync server thread, drained into the
    /// decision trace on the watch thread (single-writer trace,
    /// deterministic ordering).
    sync_notes: Arc<Mutex<Vec<SyncNote>>>,
    /// The serving handle for this standby's sync endpoint; stopped at
    /// promotion (a primary pushes sync, it does not receive it).
    sync_server: Option<ServerHandle>,
}

/// Consecutive frozen-fleet observations a standby requires before
/// promoting. One observation is racy — an active balancer may simply
/// not have completed a tick between two samples (e.g. blocked inside a
/// warm re-solve); two full watch intervals of zero progress is the
/// signal nobody is driving. Deployment contract: the watch interval
/// must be at least the control tick interval.
const FROZEN_WATCHES_TO_PROMOTE: u32 = 2;

impl StandbyBalancer {
    /// `rank >= 1`; rank 1 is the first in the promotion order.
    pub fn new(node: BalancerNode, primary_endpoint: &str, rank: u32) -> StandbyBalancer {
        assert!(rank >= 1, "standby ranks start at 1");
        StandbyBalancer {
            node,
            rank,
            primary_endpoint: primary_endpoint.to_string(),
            primary_conn: None,
            missed: 0,
            fleet_ticks_seen: None,
            frozen_watches: 0,
            replicated: Arc::new(Mutex::new(None)),
            sync_notes: Arc::new(Mutex::new(Vec::new())),
            sync_server: None,
        }
    }

    /// Serve this standby's sync endpoint: the primary streams its soft
    /// state here after every balance round
    /// ([`BalancerNode::add_standby_sync`]). Frames are checksummed and
    /// versioned ([`BalancerSoftState`]); stale rounds (out-of-order
    /// delivery after a redial) are acked with the newer round already
    /// held, never applied backwards.
    pub fn serve_sync(
        &mut self,
        transport: &dyn Transport,
        endpoint: &str,
    ) -> Result<(), NetError> {
        let cell = self.replicated.clone();
        let notes = self.sync_notes.clone();
        let handler: Handler = Arc::new(Mutex::new(move |request_frame: &[u8]| {
            let key = crate::auth::process_key();
            let response = match crate::auth::verify(request_frame, key) {
                Ok(base) => match frame::decode_frame::<Request>(base) {
                    Ok(Request::SyncState { frame: state_frame }) => {
                        match BalancerSoftState::from_frame(&state_frame) {
                            Ok(state) => {
                                let mut cell = cell.lock().expect("replicated state lock");
                                let newest = cell.as_ref().map_or(0, |s| s.round);
                                if state.round >= newest {
                                    notes.lock().expect("sync note lock").push((
                                        state.round,
                                        state.parked.len(),
                                        state.cooldown.len(),
                                        state.handoffs.len(),
                                    ));
                                    let round = state.round;
                                    *cell = Some(state);
                                    Response::Synced { round }
                                } else {
                                    Response::Synced { round: newest }
                                }
                            }
                            Err(e) => Response::Error(format!("sync_state: damaged frame: {e}")),
                        }
                    }
                    Ok(other) => Response::Error(format!(
                        "standby sync endpoint answers SyncState only, got {other:?}"
                    )),
                    Err(e) => Response::Error(format!("bad request frame: {e}")),
                },
                Err(_) => Response::Error("unauthenticated frame".to_string()),
            };
            crate::auth::seal(frame::encode_frame(&response), key)
        }));
        self.sync_server = Some(transport.serve(endpoint, handler)?);
        Ok(())
    }

    /// The newest replicated round held, if the primary has synced yet.
    pub fn replicated_round(&self) -> Option<u64> {
        self.replicated
            .lock()
            .expect("replicated state lock")
            .as_ref()
            .map(|s| s.round)
    }

    /// Move sync arrivals from the server thread into the decision
    /// trace (on this thread — the trace is single-writer).
    fn drain_sync_notes(&mut self) {
        let notes: Vec<(u64, usize, usize, usize)> = {
            let mut queued = self.sync_notes.lock().expect("sync note lock");
            std::mem::take(&mut *queued)
        };
        let tick = self.node.metrics.ticks.get();
        for (sync_round, parked, cooldowns, log_events) in notes {
            self.node.log.record(
                tick,
                DecisionEvent::StandbySynced {
                    sync_round,
                    parked,
                    cooldowns,
                    log_events,
                },
            );
        }
    }

    /// One watch interval: ping the primary's lease endpoint. Returns
    /// [`StandbyAction::Promote`] once `rank × miss_limit` consecutive
    /// pings have failed **and** the fleet has made no progress for
    /// [`FROZEN_WATCHES_TO_PROMOTE`] consecutive watches. The second
    /// condition is the split-brain guard: a promoted lower-rank
    /// standby never serves the dead primary's old endpoint, so a
    /// higher rank would otherwise blow through its own threshold
    /// eventually and promote a *second* active balancer. The shards'
    /// tick counters are the reliable signal — if they advanced across
    /// this standby's recent watches, someone is driving the fleet, and
    /// this standby keeps waiting.
    pub fn watch_tick(&mut self) -> StandbyAction {
        self.drain_sync_notes();
        if self.primary_conn.is_none() {
            self.primary_conn = self.node.transport.connect(&self.primary_endpoint).ok();
        }
        let alive = match self.primary_conn.as_deref_mut() {
            Some(conn) => matches!(rpc::call(conn, &Request::Ping), Ok(Response::Pong { .. })),
            None => false,
        };
        if alive {
            self.missed = 0;
            self.fleet_ticks_seen = None;
            self.frozen_watches = 0;
            return StandbyAction::Watching;
        }
        self.missed = self.missed.saturating_add(1);
        self.primary_conn = None;
        let threshold = self.node.lease.miss_limit.saturating_mul(self.rank.max(1));
        if self.missed < threshold {
            return StandbyAction::Watching;
        }
        let now = self.node.max_shard_ticks();
        match self.fleet_ticks_seen {
            // No progress since the last over-threshold watch. One
            // frozen sample is racy (an active balancer may simply be
            // mid-tick); require consecutive frozen intervals before
            // concluding nobody is driving.
            Some(seen) if now <= seen => {
                self.frozen_watches = self.frozen_watches.saturating_add(1);
                if self.frozen_watches >= FROZEN_WATCHES_TO_PROMOTE {
                    StandbyAction::Promote
                } else {
                    StandbyAction::Watching
                }
            }
            // Moving (or first over-threshold sample): hold, re-check
            // next watch.
            _ => {
                self.fleet_ticks_seen = Some(now);
                self.frozen_watches = 0;
                StandbyAction::Watching
            }
        }
    }

    /// Take over: rebuild the routing map from the shards (ground
    /// truth), resume soft state — cooldowns, the parked lot, the
    /// audit log, the gate — from the last replicated [`SyncState`]
    /// frame when the primary was syncing here, adopt the fleet tick
    /// from the most advanced shard, and return the now-primary
    /// balancer. Fails (returning `self` for a retry) while any shard
    /// is unreachable.
    ///
    /// [`SyncState`]: crate::Request::SyncState
    #[allow(clippy::result_large_err)] // self is handed back for retry
    pub fn promote(mut self) -> Result<BalancerNode, (Box<StandbyBalancer>, NetError)> {
        self.drain_sync_notes();
        let replicated = self
            .replicated
            .lock()
            .expect("replicated state lock")
            .clone();
        match self.node.adopt(replicated.as_ref()) {
            Ok(()) => {
                if let Some(handle) = self.sync_server.take() {
                    handle.stop();
                }
                let adopted_ticks = self.node.metrics.ticks.get();
                self.node.log.record(
                    adopted_ticks,
                    DecisionEvent::StandbyPromoted {
                        rank: u64::from(self.rank),
                        adopted_ticks,
                    },
                );
                Ok(self.node)
            }
            Err(e) => Err((Box::new(self), e)),
        }
    }

    /// The wrapped (not yet primary) balancer, for inspection.
    pub fn node(&self) -> &BalancerNode {
        &self.node
    }

    /// Mutable access to the wrapped balancer — address-book updates
    /// ([`BalancerNode::set_endpoint`]) must reach standbys too, or a
    /// promotion would dial ports that died with the old nodes.
    pub fn node_mut(&mut self) -> &mut BalancerNode {
        &mut self.node
    }
}
