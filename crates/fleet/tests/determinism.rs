//! Thread-count determinism of the parallel control plane.
//!
//! `FleetController::tick` fans shard ticks out across
//! `FleetConfig::tick_threads` worker threads, but every cross-shard
//! mutation (balance round, handoffs, `ShardMap`, stats) runs after the
//! join on the calling thread — so a fleet run must be **tick-for-tick
//! identical** at any thread count. This property test drives two fleets
//! built from one seeded [`SplitMix64`] stream — one with
//! `tick_threads = 1`, one with `tick_threads = max` — through drifting
//! workloads, handoffs, replicas and anti-affinity, and asserts equal
//! tick reports, handoff logs, and (bit-for-bit) audit objectives.
//!
//! Seeds come from [`SplitMix64::from_env`]: CI sweeps `KAIROS_TEST_SEED`
//! so several slices of the input space are exercised, and the
//! `KAIROS_FLEET_THREADS ∈ {1, 4}` matrix re-runs the whole suite under
//! both serial and parallel defaults.

use kairos_controller::{ControllerConfig, SyntheticSource, TickOutcome};
use kairos_fleet::{BalancerConfig, FleetConfig, FleetController};
use kairos_types::{Bytes, SplitMix64};
use kairos_workloads::RatePattern;

const SHARDS: usize = 3;
const TENANTS_PER_SHARD: usize = 5;
const TICKS: u64 = 70;

fn config(tick_threads: usize) -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: ControllerConfig {
            horizon: 8,
            check_every: 4,
            cooldown_ticks: 8,
            ..ControllerConfig::default()
        },
        balancer: BalancerConfig {
            machines_per_shard: 4,
            balance_every: 5,
            max_moves_per_round: 3,
            ..BalancerConfig::default()
        },
        tick_threads,
    }
}

/// Build one fleet from the seeded stream. Both fleets under comparison
/// are built from clones of the same RNG state, so their synthetic
/// sources are identical.
fn build_fleet(rng: &mut SplitMix64, tick_threads: usize) -> FleetController {
    let mut fleet = FleetController::new(config(tick_threads));
    for shard in 0..SHARDS {
        for i in 0..TENANTS_PER_SHARD {
            let name = format!("s{shard}-t{i}");
            let base = rng.next_in(120.0, 320.0);
            let spike = rng.next_in(400.0, 640.0);
            let spike_at = 20 + rng.next_range(20);
            let src = if rng.next_range(3) == 0 {
                // A third of the tenants drift mid-run.
                SyntheticSource::new(
                    name.clone(),
                    300.0,
                    Bytes::gib(4),
                    RatePattern::Flat { tps: base },
                )
                .then_at(spike_at, RatePattern::Flat { tps: spike })
            } else {
                SyntheticSource::new(
                    name.clone(),
                    300.0,
                    Bytes::gib(4),
                    RatePattern::Flat { tps: base },
                )
            };
            if i == 0 {
                fleet.add_workload_with_replicas(shard, Box::new(src), 2);
            } else {
                fleet.add_workload_to(shard, Box::new(src));
            }
        }
    }
    // One fleet-wide anti-affinity pair per shard.
    for shard in 0..SHARDS {
        fleet.add_anti_affinity(&format!("s{shard}-t1"), &format!("s{shard}-t2"));
    }
    fleet
}

/// Canonical, wall-clock-free signature of one tick outcome (solver wall
/// time differs between runs; everything else must not).
fn outcome_sig(o: &TickOutcome) -> String {
    match o {
        TickOutcome::Bootstrapping => "boot".into(),
        TickOutcome::Idle => "idle".into(),
        TickOutcome::Stable => "stable".into(),
        TickOutcome::ProfileRefreshed { refreshed } => format!("refresh:{refreshed}"),
        TickOutcome::InitialPlan { machines, .. } => format!("init:m{machines}"),
        TickOutcome::Replanned(r) => format!(
            "replan:{:?}:feasible={}:moves={}:churn={:016x}:m{}:exec[{},{},{},{:016x},{}]",
            r.reason,
            r.feasible,
            r.moves,
            r.churn.to_bits(),
            r.machines,
            r.execution.steps,
            r.execution.moves,
            r.execution.provisions,
            r.execution.bytes_copied.to_bits(),
            r.execution.forced_steps,
        ),
    }
}

#[test]
fn fleet_runs_identically_at_any_thread_count() {
    let seed_rng = SplitMix64::from_env(0xF1EE_7DE7);
    let max_threads = kairos_fleet::default_tick_threads().max(4);
    let mut serial = build_fleet(&mut seed_rng.clone(), 1);
    let mut parallel = build_fleet(&mut seed_rng.clone(), max_threads);

    for tick in 0..TICKS {
        let a = serial.tick();
        let b = parallel.tick();
        let sig_a: Vec<String> = a.outcomes.iter().map(outcome_sig).collect();
        let sig_b: Vec<String> = b.outcomes.iter().map(outcome_sig).collect();
        assert_eq!(
            sig_a, sig_b,
            "tick {tick}: outcomes diverged between 1 and {max_threads} threads"
        );
        assert_eq!(
            a.handoffs, b.handoffs,
            "tick {tick}: balance rounds diverged"
        );

        // Audit agreement, checked on the balance cadence (the audit is
        // itself parallelized — per-shard restricted evaluations must
        // merge in shard order regardless of thread completion order).
        if tick % 10 == 9 {
            let audit_a = serial.audit();
            let audit_b = parallel.audit();
            assert_eq!(audit_a.machines_used, audit_b.machines_used);
            let obj = |audit: &kairos_fleet::FleetAudit| -> Vec<Option<(u64, u64)>> {
                audit
                    .per_shard
                    .iter()
                    .map(|e| {
                        e.as_ref()
                            .map(|e| (e.objective.to_bits(), e.violation.to_bits()))
                    })
                    .collect()
            };
            assert_eq!(
                obj(&audit_a),
                obj(&audit_b),
                "tick {tick}: audits diverged bit-for-bit"
            );
        }
    }

    // The run must actually have exercised the interesting paths —
    // otherwise the equality assertions are vacuous.
    let resolves: u64 = serial.shards().iter().map(|s| s.stats().resolves).sum();
    assert!(resolves > 0, "no shard ever re-solved; drift too weak");

    // End state: same handoff history, same stats, same routing.
    assert_eq!(serial.handoffs(), parallel.handoffs());
    let (sa, sb) = (serial.stats(), parallel.stats());
    assert_eq!(sa.handoffs_completed, sb.handoffs_completed);
    assert_eq!(sa.handoffs_rejected, sb.handoffs_rejected);
    assert_eq!(sa.balance_rounds, sb.balance_rounds);
    for shard in serial.shards().iter().zip(parallel.shards()) {
        assert_eq!(shard.0.workloads(), shard.1.workloads());
        assert_eq!(shard.0.placement(), shard.1.placement());
    }

    // Decision traces are part of the determinism contract: the same
    // seed must yield **byte-identical** event streams at any thread
    // count — fleet-level (balancer choices) and per shard (drift trips,
    // re-solves) — through the canonical codec. The fleet trace only
    // fills when balance rounds actually flag donors, so its
    // non-emptiness is asserted conditionally; the byte equality is not.
    if sa.handoffs_completed + sa.handoffs_rejected > 0 {
        assert!(
            !serial.trace_events().is_empty(),
            "handoffs ran but the fleet recorded no decisions"
        );
    }
    assert_eq!(
        serial.trace_bytes(),
        parallel.trace_bytes(),
        "fleet decision traces diverged between 1 and {max_threads} threads"
    );
    for (shard, pair) in serial.shards().iter().zip(parallel.shards()).enumerate() {
        assert!(
            !pair.0.trace_events().is_empty(),
            "shard {shard} recorded no decisions"
        );
        assert_eq!(
            pair.0.trace_bytes(),
            pair.1.trace_bytes(),
            "shard {shard} decision traces diverged across thread counts"
        );
    }
}
