//! The DBMS instance: databases, tables, buffer management, logging,
//! flushing and per-tick transaction processing.
//!
//! One [`DbmsInstance`] hosts any number of logical databases — the
//! consolidated configuration Kairos recommends ("each physical node runs a
//! single DBMS instance that processes transactions on behalf of multiple
//! databases", §1). The DB-in-VM / DB-per-process baselines instead put one
//! database in each of many instances on the same
//! [`crate::host::Host`].
//!
//! ### Tick protocol
//! The host mediates shared devices, so a tick happens in two phases:
//! [`DbmsInstance::prepare_tick`] turns offered work into device demand
//! (buffer-pool touches, dirty marking, log appends), and
//! [`DbmsInstance::complete_tick`] applies what the devices actually
//! granted (write-backs, admission fractions, latency accounting).
//!
//! ### Update coalescing
//! Row updates are applied with an exact-expectation model: `n` uniform
//! updates over a `P`-page working set touch `D = P(1-(1-1/P)^n)` distinct
//! pages, of which only the currently-clean ones create new write-back
//! work. This is the mechanism behind the paper's non-linear disk model
//! (Fig 4): higher update rates re-dirty the same pages (sub-linear I/O
//! growth), larger working sets spread updates across more pages
//! (super-linear I/O growth).

use crate::buffer::{ClockCache, Touch};
use crate::flusher::{Flusher, FlusherConfig};
use crate::pages::{DatabaseId, PageAllocator, PageId, PageRange, TableId};
use crate::stats::InstanceStats;
use crate::wal::{LogManager, WalConfig};
use kairos_types::{Bytes, KairosError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Maximum explicit page touches sampled per access spec per tick; heavier
/// traffic is represented by weighted samples.
const READ_SAMPLE_CAP: usize = 2048;
/// CPU cost of scanning one page, in standardized core-seconds.
const SCAN_CPU_PER_PAGE: f64 = 3e-6;

/// Static configuration of a DBMS instance.
#[derive(Debug, Clone)]
pub struct DbmsConfig {
    /// Buffer pool size.
    pub buffer_pool: Bytes,
    /// Page size (16 KiB matches InnoDB).
    pub page_size: Bytes,
    /// `true` = O_DIRECT (MySQL-style): no OS file-cache tier.
    pub direct_io: bool,
    /// OS file-cache size when `direct_io` is false (PostgreSQL-style).
    pub os_cache: Bytes,
    pub wal: WalConfig,
    pub flusher: FlusherConfig,
    /// Resident memory of the DBMS binary itself (§7.4: ≈190 MB for
    /// MySQL), excluded from the buffer pool.
    pub ram_overhead: Bytes,
    /// Fixed background CPU (purge/stat threads), standardized cores.
    pub cpu_overhead_cores: f64,
    /// RNG seed for sampled accesses.
    pub seed: u64,
}

impl DbmsConfig {
    /// MySQL-flavoured defaults with a given buffer pool.
    pub fn mysql(buffer_pool: Bytes) -> DbmsConfig {
        DbmsConfig {
            buffer_pool,
            page_size: Bytes::kib(16),
            direct_io: true,
            os_cache: Bytes::ZERO,
            wal: WalConfig::default(),
            flusher: FlusherConfig::default(),
            ram_overhead: Bytes::mib(190),
            cpu_overhead_cores: 0.03,
            seed: 0xCA1805,
        }
    }

    /// PostgreSQL-flavoured defaults: buffered I/O through an OS cache.
    pub fn postgres(shared_buffers: Bytes, os_cache: Bytes) -> DbmsConfig {
        DbmsConfig {
            buffer_pool: shared_buffers,
            page_size: Bytes::kib(8),
            direct_io: false,
            os_cache,
            wal: WalConfig::default(),
            flusher: FlusherConfig::default(),
            ram_overhead: Bytes::mib(160),
            cpu_overhead_cores: 0.03,
            seed: 0xCA1805,
        }
    }
}

/// A logical database hosted by the instance.
#[derive(Debug, Clone)]
pub struct Database {
    pub id: DatabaseId,
    pub name: String,
    pub tables: Vec<TableId>,
    /// `true` once the database has been dropped. Ids are positional, so
    /// dropped databases leave a tombstone instead of shifting later ids.
    pub dropped: bool,
}

#[derive(Debug, Clone)]
struct TableDef {
    #[allow(dead_code)]
    id: TableId,
    /// Owning database (kept for per-database attribution in reports).
    #[allow(dead_code)]
    db: DatabaseId,
    segments: Vec<PageRange>,
    pages: u64,
    rows: f64,
    row_bytes: u64,
    /// Dirty pages currently attributed to this table.
    dirty_pages: u64,
    /// Fractional newly-dirty carry (so low update rates still dirty
    /// pages over time).
    dirty_carry: f64,
}

impl TableDef {
    fn pages_for_rows(&self, rows: f64, page: Bytes) -> u64 {
        ((rows * self.row_bytes as f64) / page.as_f64()).ceil() as u64
    }

    /// Map a logical page index to its on-disk page id.
    fn page_at(&self, mut idx: u64) -> PageId {
        for seg in &self.segments {
            if idx < seg.len {
                return seg.page(idx);
            }
            idx -= seg.len;
        }
        panic!("logical page index out of range");
    }
}

/// A page access pattern: `accesses` uniform reads over the first
/// `prefix_pages` pages of `table` (0 = whole table).
#[derive(Debug, Clone, Copy)]
pub struct AccessSpec {
    pub table: TableId,
    pub prefix_pages: u64,
    pub accesses: f64,
}

/// A row-update pattern: `rows` uniform updates over the first
/// `prefix_pages` pages of `table` (0 = whole table).
#[derive(Debug, Clone, Copy)]
pub struct UpdateSpec {
    pub table: TableId,
    pub prefix_pages: u64,
    pub rows: f64,
}

/// One tick of offered work for one database.
#[derive(Debug, Clone, Default)]
pub struct OpBatch {
    /// Offered transactions this tick.
    pub txns: f64,
    /// Logical rows read (stats only; page traffic is in `reads`).
    pub rows_read: f64,
    pub reads: Vec<AccessSpec>,
    pub updates: Vec<UpdateSpec>,
    /// Bytes appended to `insert_table` this tick.
    pub insert_bytes: f64,
    pub insert_table: Option<TableId>,
    /// CPU demand of the batch in standardized core-seconds.
    pub cpu_core_secs: f64,
    /// Intrinsic per-transaction latency floor (client round-trips, lock
    /// waits) in seconds.
    pub base_latency_secs: f64,
}

/// Device demand produced by `prepare_tick`.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstanceDemand {
    pub cpu_core_secs: f64,
    pub log_bytes: f64,
    pub log_forces: f64,
    pub read_pages: f64,
    pub writeback_pages: f64,
    /// Dirty pages available before this tick's flush — the sorted batch
    /// depth for elevator-gain purposes.
    pub writeback_batch: f64,
}

/// What the host's devices granted back for `complete_tick`.
#[derive(Debug, Clone, Copy)]
pub struct DeviceGrant {
    /// Fraction of foreground disk demand served.
    pub fg_fraction: f64,
    /// Write-back pages granted to this instance.
    pub writeback_pages: f64,
    /// Fraction of CPU demand served.
    pub cpu_fraction: f64,
    /// CPU queueing latency multiplier (≥1).
    pub cpu_latency_factor: f64,
    /// Per-read disk service time (queueing-inflated), seconds.
    pub read_service_secs: f64,
    /// Disk utilization observed this tick (flusher feedback).
    pub disk_utilization: f64,
}

/// Outcome of one tick for one instance.
#[derive(Debug, Clone, Default)]
pub struct TickResult {
    pub committed_txns: f64,
    pub per_db_committed: Vec<(DatabaseId, f64)>,
    /// min(cpu, disk, flush) admission fraction.
    pub achieved_fraction: f64,
    pub mean_latency_secs: f64,
    pub physical_reads: f64,
    pub physical_writes: f64,
}

#[derive(Debug, Clone, Default)]
struct PendingTick {
    cpu_demand: f64,
    offered: Vec<(DatabaseId, f64, f64)>, // (db, txns, base_latency)
    newly_dirty: f64,
    reads_per_txn: f64,
    cpu_per_txn: f64,
    log_bytes: f64,
    rows_offered: f64,
}

/// A simulated DBMS instance. See module docs for the tick protocol.
#[derive(Debug)]
pub struct DbmsInstance {
    config: DbmsConfig,
    allocator: PageAllocator,
    pool: ClockCache,
    os_cache: Option<ClockCache>,
    wal: LogManager,
    flusher: Flusher,
    databases: Vec<Database>,
    tables: Vec<TableDef>,
    /// Sorted (segment start, table index) for victim attribution.
    segment_index: Vec<(u64, u32)>,
    stats: InstanceStats,
    rng: StdRng,
    /// Foreground physical reads awaiting disk service.
    pending_reads: f64,
    /// CPU owed from between-tick SQL ops (probe scans).
    pending_cpu: f64,
    /// Foreground writes from dirty evictions awaiting disk service.
    pending_evict_writes: f64,
    pending_tick: Option<PendingTick>,
    checkpointing: bool,
    /// Client backpressure: benchmark clients are closed-loop, so offered
    /// work converges to what the instance sustains instead of queueing
    /// unboundedly. 1.0 = fully open throttle.
    admission: f64,
}

impl DbmsInstance {
    pub fn new(config: DbmsConfig) -> DbmsInstance {
        let pool_pages = config.buffer_pool.pages(config.page_size).max(1) as usize;
        let os_cache = if config.direct_io || config.os_cache == Bytes::ZERO {
            None
        } else {
            Some(ClockCache::new(
                config.os_cache.pages(config.page_size).max(1) as usize,
            ))
        };
        let seed = config.seed;
        let wal = LogManager::new(config.wal);
        let flusher = Flusher::new(config.flusher);
        DbmsInstance {
            config,
            allocator: PageAllocator::new(),
            pool: ClockCache::new(pool_pages),
            os_cache,
            wal,
            flusher,
            databases: Vec::new(),
            tables: Vec::new(),
            segment_index: Vec::new(),
            stats: InstanceStats::default(),
            rng: StdRng::seed_from_u64(seed),
            pending_reads: 0.0,
            pending_cpu: 0.0,
            pending_evict_writes: 0.0,
            pending_tick: None,
            checkpointing: false,
            admission: 1.0,
        }
    }

    pub fn config(&self) -> &DbmsConfig {
        &self.config
    }

    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// RAM the OS would report as allocated to this instance: the whole
    /// buffer pool plus the binary overhead. This is the *over-estimate*
    /// that motivates buffer-pool gauging (§3).
    pub fn ram_allocated(&self) -> Bytes {
        self.config.buffer_pool + self.config.ram_overhead
    }

    /// RAM corresponding to currently-resident pages plus overhead.
    pub fn ram_resident(&self) -> Bytes {
        Bytes(self.pool.resident() as u64 * self.config.page_size.0) + self.config.ram_overhead
    }

    pub fn buffer_pool_pages(&self) -> usize {
        self.pool.capacity()
    }

    pub fn pool_resident_pages(&self) -> usize {
        self.pool.resident()
    }

    pub fn pool_dirty_pages(&self) -> usize {
        self.pool.dirty_count()
    }

    pub fn bp_miss_ratio(&self) -> f64 {
        self.pool.stats().miss_ratio()
    }

    pub fn page_size(&self) -> Bytes {
        self.config.page_size
    }

    pub fn databases(&self) -> &[Database] {
        &self.databases
    }

    // ----- DDL / SQL surface (what the probing tool uses) -----

    /// Create a logical database.
    pub fn create_database(&mut self, name: impl Into<String>) -> DatabaseId {
        let id = DatabaseId(self.databases.len() as u32);
        self.databases.push(Database {
            id,
            name: name.into(),
            tables: Vec::new(),
            dropped: false,
        });
        id
    }

    /// `DROP DATABASE`: release every table of `db` — pages are discarded
    /// from the buffer pool (and OS cache) without write-back (dropped
    /// data needs no durability), dirty attribution is cleared, and the
    /// database is tombstoned. Returns the on-disk bytes reclaimed.
    ///
    /// This is the tenant GC the migration executor relies on: without
    /// it, migrated-away tenants linger in their old instance and the
    /// host's memory/page accounting drifts from the placement truth.
    pub fn drop_database(&mut self, db: DatabaseId) -> Result<Bytes> {
        let dbi = db.0 as usize;
        if dbi >= self.databases.len() {
            return Err(KairosError::Sql(format!("unknown database {db:?}")));
        }
        if self.databases[dbi].dropped {
            return Err(KairosError::Sql(format!("database {db:?} already dropped")));
        }
        let tables = std::mem::take(&mut self.databases[dbi].tables);
        let mut reclaimed_pages = 0u64;
        for t in &tables {
            let ti = t.0 as usize;
            let segments = std::mem::take(&mut self.tables[ti].segments);
            for seg in &segments {
                for i in 0..seg.len {
                    let page = seg.page(i);
                    self.pool.discard(page);
                    if let Some(os) = self.os_cache.as_mut() {
                        os.discard(page);
                    }
                }
                reclaimed_pages += seg.len;
            }
            self.segment_index.retain(|&(_, tid)| tid != t.0);
            let td = &mut self.tables[ti];
            td.pages = 0;
            td.rows = 0.0;
            td.dirty_pages = 0;
            td.dirty_carry = 0.0;
        }
        self.databases[dbi].dropped = true;
        Ok(Bytes(reclaimed_pages * self.config.page_size.0))
    }

    /// Databases that have not been dropped.
    pub fn live_databases(&self) -> impl Iterator<Item = &Database> {
        self.databases.iter().filter(|d| !d.dropped)
    }

    /// Create a table pre-loaded with `rows` rows of `row_bytes` bytes.
    /// Pages start on disk (cold) — they enter the pool on first access.
    pub fn create_table(&mut self, db: DatabaseId, rows: u64, row_bytes: u64) -> Result<TableId> {
        if db.0 as usize >= self.databases.len() {
            return Err(KairosError::Sql(format!("unknown database {db:?}")));
        }
        if self.databases[db.0 as usize].dropped {
            return Err(KairosError::Sql(format!("database {db:?} was dropped")));
        }
        assert!(row_bytes > 0, "rows must have a positive size");
        let id = TableId(self.tables.len() as u32);
        let pages = (rows as f64 * row_bytes as f64 / self.config.page_size.as_f64()).ceil() as u64;
        let mut table = TableDef {
            id,
            db,
            segments: Vec::new(),
            pages: 0,
            rows: rows as f64,
            row_bytes,
            dirty_pages: 0,
            dirty_carry: 0.0,
        };
        if pages > 0 {
            let seg = self.allocator.allocate(pages);
            self.segment_index.push((seg.start.0, id.0));
            table.segments.push(seg);
            table.pages = pages;
        }
        self.tables.push(table);
        self.databases[db.0 as usize].tables.push(id);
        Ok(id)
    }

    /// Rows currently in a table.
    pub fn table_rows(&self, table: TableId) -> u64 {
        self.tables[table.0 as usize].rows as u64
    }

    /// Pages currently allocated to a table.
    pub fn table_pages(&self, table: TableId) -> u64 {
        self.tables[table.0 as usize].pages
    }

    /// Bytes currently allocated to a table.
    pub fn table_bytes(&self, table: TableId) -> Bytes {
        Bytes(self.table_pages(table) * self.config.page_size.0)
    }

    /// Append `rows` rows to a table (INSERT). New pages enter the pool
    /// dirty (they must be written back) and are logged as full images.
    pub fn append_rows(&mut self, table: TableId, rows: f64) {
        if rows <= 0.0 {
            return;
        }
        let ti = table.0 as usize;
        let page_size = self.config.page_size;
        let (needed, new_rows, row_bytes) = {
            let t = &self.tables[ti];
            let new_rows = t.rows + rows;
            (t.pages_for_rows(new_rows, page_size), new_rows, t.row_bytes)
        };
        let current = self.tables[ti].pages;
        if needed > current {
            let seg = self.allocator.allocate(needed - current);
            self.segment_index.push((seg.start.0, table.0));
            for i in 0..seg.len {
                if let Some((victim, was_dirty)) = self.pool.insert(seg.page(i), true) {
                    self.on_evicted(victim, was_dirty, 1.0);
                }
            }
            let t = &mut self.tables[ti];
            t.segments.push(seg);
            t.pages = needed;
            t.dirty_pages += seg.len;
        }
        self.tables[ti].rows = new_rows;
        let bytes = rows * row_bytes as f64;
        self.wal.append_bytes(bytes, (rows / 64.0).max(1.0));
        self.stats.insert_bytes += bytes;
        self.stats.rows_updated += rows;
        self.pending_cpu += rows * 4e-6;
    }

    /// Load a table's pages straight into the buffer pool (and OS cache, if
    /// configured) without physical reads — models a server that has been
    /// running long enough to be warm, which is the state Kairos monitors
    /// ("after running for some time, all the memory accessible to the DBMS
    /// will be full of data pages", §3.1).
    pub fn prewarm_table(&mut self, table: TableId) {
        let pages = self.tables[table.0 as usize].pages;
        self.prewarm_pages(table, pages);
    }

    /// Load only the first `pages` pages of a table into memory — warming
    /// the working-set prefix of a table much larger than RAM.
    pub fn prewarm_pages(&mut self, table: TableId, pages: u64) {
        let ti = table.0 as usize;
        let pages = pages.min(self.tables[ti].pages);
        for i in 0..pages {
            let page = self.tables[ti].page_at(i);
            if let Some((victim, was_dirty)) = self.pool.insert(page, false) {
                self.on_evicted(victim, was_dirty, 1.0);
            }
            if let Some(os) = self.os_cache.as_mut() {
                os.insert(page, false);
            }
        }
    }

    /// `SELECT COUNT(*) FROM t WHERE id < upto` — scans the prefix of the
    /// table covering `upto` rows, touching every page in order (this is
    /// what keeps the probe table memory-resident during gauging).
    pub fn scan_count(&mut self, table: TableId, upto_rows: u64) -> u64 {
        let ti = table.0 as usize;
        let (pages, rows, row_bytes) = {
            let t = &self.tables[ti];
            let rows = (t.rows as u64).min(upto_rows);
            let pages = t
                .pages_for_rows(rows as f64, self.config.page_size)
                .min(t.pages);
            (pages, rows, t.row_bytes)
        };
        let _ = row_bytes;
        for i in 0..pages {
            let page = self.tables[ti].page_at(i);
            self.touch_page(page, false, 1.0);
        }
        self.pending_cpu += pages as f64 * SCAN_CPU_PER_PAGE;
        self.stats.rows_read += rows as f64;
        rows
    }

    // ----- internal page plumbing -----

    /// Attribute an evicted page to its owning table; dirty evictions cost
    /// a foreground write and release the table's dirty count.
    fn on_evicted(&mut self, victim: PageId, was_dirty: bool, weight: f64) {
        if !was_dirty {
            return;
        }
        self.pending_evict_writes += weight;
        if let Some(ti) = self.table_of(victim) {
            let t = &mut self.tables[ti];
            t.dirty_pages = t.dirty_pages.saturating_sub(1);
        }
    }

    fn table_of(&self, page: PageId) -> Option<usize> {
        // segment_index is sorted by construction (allocator is monotonic).
        let idx = self
            .segment_index
            .partition_point(|&(start, _)| start <= page.0);
        if idx == 0 {
            return None;
        }
        let (_, table) = self.segment_index[idx - 1];
        Some(table as usize)
    }

    /// Touch one page through the cache hierarchy with statistical weight
    /// `w`. Returns true if a physical read was required.
    fn touch_page(&mut self, page: PageId, make_dirty: bool, w: f64) -> bool {
        match self.pool.touch(page, make_dirty) {
            Touch::Hit => {
                self.stats.bp_hits += w;
                false
            }
            Touch::Miss { evicted } => {
                self.stats.bp_misses += w;
                if let Some((victim, was_dirty)) = evicted {
                    self.on_evicted(victim, was_dirty, w);
                }
                // Second tier: OS file cache (buffered-I/O configurations).
                let os_hit = match self.os_cache.as_mut() {
                    Some(os) => matches!(os.touch(page, false), Touch::Hit),
                    None => false,
                };
                if os_hit {
                    self.stats.os_cache_hits += w;
                    false
                } else {
                    self.pending_reads += w;
                    true
                }
            }
        }
    }

    /// Sampled uniform accesses over the table prefix.
    fn touch_sampled(&mut self, spec: AccessSpec) {
        let ti = spec.table.0 as usize;
        let prefix = {
            let t = &self.tables[ti];
            if spec.prefix_pages == 0 {
                t.pages
            } else {
                spec.prefix_pages.min(t.pages)
            }
        };
        if prefix == 0 || spec.accesses <= 0.0 {
            return;
        }
        let m = (spec.accesses.ceil() as usize).clamp(1, READ_SAMPLE_CAP);
        let w = spec.accesses / m as f64;
        for _ in 0..m {
            let idx = self.rng.random_range(0..prefix);
            let page = self.tables[ti].page_at(idx);
            self.touch_page(page, false, w);
        }
    }

    /// Apply a tick's updates with exact-expectation coalescing.
    fn apply_updates(&mut self, spec: UpdateSpec) -> f64 {
        let ti = spec.table.0 as usize;
        let prefix = {
            let t = &self.tables[ti];
            if spec.prefix_pages == 0 {
                t.pages
            } else {
                spec.prefix_pages.min(t.pages)
            }
        };
        if prefix == 0 || spec.rows <= 0.0 {
            return 0.0;
        }
        let p = prefix as f64;
        // Distinct pages touched by `rows` uniform updates.
        let distinct = p * (1.0 - (1.0 - 1.0 / p).powf(spec.rows));
        let dirty_in_prefix = (self.tables[ti].dirty_pages as f64).min(p);
        let clean_frac = (1.0 - dirty_in_prefix / p).clamp(0.0, 1.0);
        let newly = distinct * clean_frac + self.tables[ti].dirty_carry;
        let to_mark = newly.floor() as u64;
        self.tables[ti].dirty_carry = newly - to_mark as f64;

        let mut marked = 0u64;
        let mut attempts = 0u64;
        let max_attempts = to_mark.saturating_mul(8).max(16);
        while marked < to_mark && attempts < max_attempts {
            attempts += 1;
            let idx = self.rng.random_range(0..prefix);
            let page = self.tables[ti].page_at(idx);
            if self.pool.is_dirty(page) {
                continue;
            }
            // Updating a non-resident page first reads it (counted inside
            // touch_page), then dirties it.
            self.touch_page(page, true, 1.0);
            if self.pool.is_dirty(page) {
                self.tables[ti].dirty_pages += 1;
                marked += 1;
            }
        }
        // Recency for a sample of re-dirtied (already hot) pages.
        let recency_sample = ((distinct - marked as f64).max(0.0) as usize).min(32);
        for _ in 0..recency_sample {
            let idx = self.rng.random_range(0..prefix);
            let page = self.tables[ti].page_at(idx);
            self.touch_page(page, false, 1.0);
        }

        self.wal.append(spec.rows, 0.0);
        self.stats.rows_updated += spec.rows;
        marked as f64
    }

    // ----- tick protocol -----

    /// Phase 1: process offered batches into device demand.
    ///
    /// # Panics
    /// Panics if a tick is already prepared but not completed.
    pub fn prepare_tick(&mut self, dt: f64, loads: &[(DatabaseId, OpBatch)]) -> InstanceDemand {
        assert!(
            self.pending_tick.is_none(),
            "prepare_tick called twice without complete_tick"
        );
        let mut cpu = self.config.cpu_overhead_cores * dt + self.pending_cpu;
        self.pending_cpu = 0.0;
        let mut offered = Vec::with_capacity(loads.len());
        let mut newly_dirty = 0.0;
        let mut total_txns = 0.0;
        let reads_before = self.pending_reads;
        let rows_before = self.stats.rows_updated;

        let admit = self.admission;
        for (db, batch) in loads {
            for spec in &batch.reads {
                let mut s = *spec;
                s.accesses *= admit;
                self.touch_sampled(s);
            }
            for spec in &batch.updates {
                let mut s = *spec;
                s.rows *= admit;
                newly_dirty += self.apply_updates(s);
            }
            if batch.insert_bytes > 0.0 {
                if let Some(t) = batch.insert_table {
                    let row_bytes = self.tables[t.0 as usize].row_bytes as f64;
                    self.append_rows(t, batch.insert_bytes * admit / row_bytes);
                }
            }
            let admitted_txns = batch.txns * admit;
            if admitted_txns > 0.0 {
                self.wal.append(0.0, admitted_txns);
            }
            cpu += batch.cpu_core_secs * admit;
            self.stats.rows_read += batch.rows_read * admit;
            total_txns += admitted_txns;
            offered.push((*db, admitted_txns, batch.base_latency_secs));
        }

        let wal_out = self.wal.drain_tick(dt);
        let decision = self.flusher.decide(
            dt,
            self.pool.dirty_count() as f64,
            self.pool.capacity() as f64,
            self.wal.fill_fraction(),
        );
        self.checkpointing = decision.checkpointing;
        let dirty_now = self.pool.dirty_count() as f64;
        let wb_request = decision.target_pages.min(dirty_now) + self.pending_evict_writes;

        let reads_generated = self.pending_reads - reads_before;
        let _ = reads_generated;
        let demand = InstanceDemand {
            cpu_core_secs: cpu,
            log_bytes: wal_out.bytes,
            log_forces: wal_out.forces,
            read_pages: self.pending_reads,
            writeback_pages: wb_request,
            writeback_batch: dirty_now,
        };
        self.stats.log_bytes += wal_out.bytes;
        self.stats.log_forces += wal_out.forces;

        let reads_per_txn = if total_txns > 0.0 {
            (self.pending_reads - reads_before).max(0.0) / total_txns
        } else {
            0.0
        };
        let cpu_per_txn = if total_txns > 0.0 {
            cpu / total_txns
        } else {
            0.0
        };
        self.pending_tick = Some(PendingTick {
            cpu_demand: cpu,
            offered,
            newly_dirty,
            reads_per_txn,
            cpu_per_txn,
            log_bytes: wal_out.bytes,
            rows_offered: self.stats.rows_updated - rows_before,
        });
        demand
    }

    /// Phase 2: apply device grants, commit work, account latency.
    ///
    /// # Panics
    /// Panics if no tick is prepared.
    pub fn complete_tick(&mut self, dt: f64, grant: DeviceGrant) -> TickResult {
        let pending = self
            .pending_tick
            .take()
            .expect("complete_tick without prepare_tick");

        // Serve foreground reads.
        let served_reads = self.pending_reads * grant.fg_fraction;
        self.pending_reads -= served_reads;
        self.stats.physical_read_pages += served_reads;

        // Serve write-back: evict-writes first (they are forced), then the
        // flusher's sorted batch.
        let evict_served = self.pending_evict_writes.min(grant.writeback_pages);
        self.pending_evict_writes -= evict_served;
        let flush_quota = (grant.writeback_pages - evict_served).max(0.0);
        let dirty_before = self.pool.dirty_count();
        let batch = self.pool.take_dirty_batch(flush_quota.floor() as usize);
        for &page in &batch {
            if let Some(ti) = self.table_of(page) {
                let t = &mut self.tables[ti];
                t.dirty_pages = t.dirty_pages.saturating_sub(1);
            }
        }
        let flushed = batch.len() as f64;
        self.stats.physical_write_pages += evict_served + flushed;
        let reclaimed = if dirty_before > 0 {
            self.wal.reclaim(flushed / dirty_before as f64)
        } else {
            self.wal.checkpoint_complete();
            0.0
        };
        if self.checkpointing && self.pool.dirty_count() < self.pool.capacity() / 100 {
            self.wal.checkpoint_complete();
            self.stats.checkpoints += 1.0;
            self.checkpointing = false;
        }
        self.flusher
            .observe_disk_utilization(grant.disk_utilization);

        // Admission: CPU, foreground disk, flush-keepup, and log-reclaim
        // (checkpoint stall) all throttle.
        let flush_throttle = if self.pool.dirty_fraction() > 0.9 && pending.newly_dirty > 0.0 {
            (flushed / pending.newly_dirty).clamp(0.05, 1.0)
        } else {
            1.0
        };
        // Sync-flush stall: sustained log production cannot exceed the rate
        // at which write-back advances the checkpoint. Headroom below 95%
        // of the log file lets bursts through untouched.
        let wal_capacity = self.wal.config().capacity_bytes;
        let log_headroom = (0.95 * wal_capacity - self.wal.fill_fraction() * wal_capacity).max(0.0);
        let log_throttle = if pending.log_bytes > 0.0 {
            ((reclaimed + log_headroom) / pending.log_bytes).clamp(0.02, 1.0)
        } else {
            1.0
        };
        let achieved = grant
            .cpu_fraction
            .min(grant.fg_fraction)
            .min(flush_throttle)
            .min(log_throttle)
            .clamp(0.0, 1.0);
        // Throttled transactions' row modifications never really happened:
        // correct the stat so monitored update rates reflect achieved work.
        self.stats.rows_updated -= pending.rows_offered * (1.0 - achieved);

        // Latency: intrinsic floor + CPU service (queue-inflated) + disk
        // reads + group-commit wait + admission backlog.
        let total_offered: f64 = pending.offered.iter().map(|(_, t, _)| *t).sum();
        let commit_wait =
            self.wal
                .commit_wait_secs(if dt > 0.0 { total_offered / dt } else { 0.0 });
        let backlog_penalty = if achieved < 1.0 {
            dt * (1.0 - achieved) / achieved.max(0.05)
        } else {
            0.0
        };

        let mut per_db = Vec::with_capacity(pending.offered.len());
        let mut committed_total = 0.0;
        let mut lat_weighted = 0.0;
        for (db, txns, base_lat) in &pending.offered {
            let committed = txns * achieved;
            let lat = base_lat
                + pending.cpu_per_txn * grant.cpu_latency_factor
                + pending.reads_per_txn * grant.read_service_secs
                + commit_wait
                + backlog_penalty;
            per_db.push((*db, committed));
            committed_total += committed;
            lat_weighted += lat * committed;
        }

        self.stats.sim_secs += dt;
        self.stats.committed_txns += committed_total;
        self.stats.latency_weighted_secs += lat_weighted;
        self.stats.cpu_core_secs += pending.cpu_demand * grant.cpu_fraction;

        // Closed-loop client backpressure: ease off multiplicatively when
        // throttled (or when the read backlog is deepening), recover
        // additively when the system keeps up.
        let backlog_deep = self.pending_reads > 64.0;
        if achieved < 0.999 || backlog_deep {
            self.admission = (self.admission * 0.90).max(0.01);
        } else {
            self.admission = (self.admission + 0.02).min(1.0);
        }

        TickResult {
            committed_txns: committed_total,
            per_db_committed: per_db,
            achieved_fraction: achieved,
            mean_latency_secs: if committed_total > 0.0 {
                lat_weighted / committed_total
            } else {
                0.0
            },
            physical_reads: served_reads,
            physical_writes: evict_served + flushed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::Bytes;

    fn small_instance() -> DbmsInstance {
        DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(16)))
    }

    fn full_grant() -> DeviceGrant {
        DeviceGrant {
            fg_fraction: 1.0,
            writeback_pages: 1e9,
            cpu_fraction: 1.0,
            cpu_latency_factor: 1.0,
            read_service_secs: 0.008,
            disk_utilization: 0.1,
        }
    }

    #[test]
    fn create_database_and_table() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 1000, 160).unwrap();
        assert_eq!(inst.table_rows(t), 1000);
        // 1000 rows * 160 B = 160000 B / 16 KiB pages = 10 pages.
        assert_eq!(inst.table_pages(t), 10);
    }

    #[test]
    fn table_on_unknown_database_fails() {
        let mut inst = small_instance();
        assert!(inst.create_table(DatabaseId(7), 10, 100).is_err());
    }

    #[test]
    fn scan_warms_cache_then_hits() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 10_000, 160).unwrap();
        let n = inst.scan_count(t, 10_000);
        assert_eq!(n, 10_000);
        let misses_after_first = inst.stats().bp_misses;
        assert!(misses_after_first > 0.0, "cold scan must miss");
        inst.scan_count(t, 10_000);
        assert_eq!(
            inst.stats().bp_misses,
            misses_after_first,
            "warm scan must not miss"
        );
    }

    #[test]
    fn scan_generates_pending_reads_served_by_tick() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 10_000, 160).unwrap();
        inst.scan_count(t, 10_000);
        inst.prepare_tick(0.1, &[]);
        let r = inst.complete_tick(0.1, full_grant());
        assert!(r.physical_reads > 0.0);
        assert!(inst.stats().physical_read_pages > 0.0);
    }

    #[test]
    fn append_rows_grows_table_and_dirties_pages() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 100, 16_384).unwrap();
        let before = inst.table_pages(t);
        inst.append_rows(t, 50.0);
        assert_eq!(inst.table_pages(t), before + 50);
        assert!(inst.pool_dirty_pages() >= 50);
        assert!(inst.stats().insert_bytes > 0.0);
    }

    #[test]
    fn updates_dirty_pages_with_coalescing() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        // 100-page working set.
        let t = inst.create_table(db, 10_000, 164).unwrap();
        inst.scan_count(t, 10_000); // warm
        let batch = OpBatch {
            txns: 10.0,
            updates: vec![UpdateSpec {
                table: t,
                prefix_pages: 0,
                rows: 5_000.0,
            }],
            cpu_core_secs: 0.001,
            ..Default::default()
        };
        // Deny write-back so dirt accumulates.
        inst.prepare_tick(0.1, &[(db, batch)]);
        inst.complete_tick(
            0.1,
            DeviceGrant {
                writeback_pages: 0.0,
                ..full_grant()
            },
        );
        let dirty = inst.pool_dirty_pages();
        // 5000 updates over ~103 pages touch nearly every page, but dirty
        // count cannot exceed the page count (coalescing).
        assert!(dirty > 50, "expected most pages dirty, got {dirty}");
        assert!(dirty <= inst.table_pages(t) as usize);
    }

    #[test]
    fn writeback_cleans_and_accounts() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 10_000, 164).unwrap();
        inst.scan_count(t, 10_000);
        let batch = OpBatch {
            txns: 1.0,
            updates: vec![UpdateSpec {
                table: t,
                prefix_pages: 0,
                rows: 2_000.0,
            }],
            ..Default::default()
        };
        inst.prepare_tick(0.1, &[(db, batch)]);
        let r = inst.complete_tick(0.1, full_grant());
        assert!(r.physical_writes > 0.0);
        assert!(inst.stats().physical_write_pages > 0.0);
    }

    #[test]
    fn admission_fraction_scales_commits() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let batch = OpBatch {
            txns: 100.0,
            cpu_core_secs: 0.01,
            ..Default::default()
        };
        inst.prepare_tick(0.1, &[(db, batch)]);
        let r = inst.complete_tick(
            0.1,
            DeviceGrant {
                cpu_fraction: 0.5,
                ..full_grant()
            },
        );
        assert!((r.committed_txns - 50.0).abs() < 1e-9);
        assert!((r.achieved_fraction - 0.5).abs() < 1e-9);
        assert!(r.mean_latency_secs > 0.0, "throttling must show in latency");
    }

    #[test]
    fn latency_includes_base_and_grows_with_queueing() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let mk = |lat_factor: f64, inst: &mut DbmsInstance| {
            let batch = OpBatch {
                txns: 10.0,
                cpu_core_secs: 0.02,
                base_latency_secs: 0.005,
                ..Default::default()
            };
            inst.prepare_tick(0.1, &[(db, batch)]);
            inst.complete_tick(
                0.1,
                DeviceGrant {
                    cpu_latency_factor: lat_factor,
                    ..full_grant()
                },
            )
            .mean_latency_secs
        };
        let quiet = mk(1.0, &mut inst);
        let busy = mk(8.0, &mut inst);
        assert!(quiet >= 0.005);
        assert!(busy > quiet);
    }

    #[test]
    fn ram_views_differ() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 1000, 164).unwrap();
        inst.scan_count(t, 1000);
        assert!(inst.ram_allocated() > inst.ram_resident());
        assert!(inst.ram_resident() > inst.config().ram_overhead);
    }

    #[test]
    fn wal_activity_reported_via_demand() {
        let mut inst = small_instance();
        let db = inst.create_database("app");
        let t = inst.create_table(db, 10_000, 164).unwrap();
        let batch = OpBatch {
            txns: 50.0,
            updates: vec![UpdateSpec {
                table: t,
                prefix_pages: 0,
                rows: 500.0,
            }],
            ..Default::default()
        };
        let demand = inst.prepare_tick(0.1, &[(db, batch)]);
        assert!(demand.log_bytes > 500.0 * 200.0);
        assert!(demand.log_forces >= 1.0);
        inst.complete_tick(0.1, full_grant());
    }

    #[test]
    #[should_panic(expected = "prepare_tick called twice")]
    fn double_prepare_panics() {
        let mut inst = small_instance();
        inst.prepare_tick(0.1, &[]);
        inst.prepare_tick(0.1, &[]);
    }

    #[test]
    fn drop_database_reclaims_pages_and_pool_frames() {
        let mut inst = small_instance();
        let keep_db = inst.create_database("keep");
        let keep_t = inst.create_table(keep_db, 5_000, 164).unwrap();
        inst.prewarm_table(keep_t);
        let drop_db = inst.create_database("drop");
        let drop_t = inst.create_table(drop_db, 5_000, 164).unwrap();
        inst.prewarm_table(drop_t);
        // Dirty some of the doomed tenant's pages.
        inst.prepare_tick(
            0.1,
            &[(
                drop_db,
                OpBatch {
                    txns: 1.0,
                    updates: vec![UpdateSpec {
                        table: drop_t,
                        prefix_pages: 0,
                        rows: 1_000.0,
                    }],
                    ..Default::default()
                },
            )],
        );
        inst.complete_tick(
            0.1,
            DeviceGrant {
                writeback_pages: 0.0,
                ..full_grant()
            },
        );
        let resident_before = inst.pool_resident_pages();
        let dirty_before = inst.pool_dirty_pages();
        assert!(dirty_before > 0);
        let dropped_pages = inst.table_pages(drop_t);

        let reclaimed = inst.drop_database(drop_db).unwrap();
        assert_eq!(reclaimed, Bytes(dropped_pages * inst.page_size().0));
        assert_eq!(inst.table_pages(drop_t), 0);
        // Dirty pages of dropped data vanish without write-back; resident
        // frames are freed for the surviving tenant.
        assert_eq!(inst.pool_dirty_pages(), 0);
        assert!(inst.pool_resident_pages() < resident_before);
        assert_eq!(inst.live_databases().count(), 1);
        assert_eq!(inst.databases().len(), 2, "tombstone keeps ids stable");
        // The survivor is untouched and ids remain valid.
        assert_eq!(inst.table_rows(keep_t), 5_000);
        assert!(inst.scan_count(keep_t, 100) > 0);
        // Double drop and DDL on a dropped database are errors.
        assert!(inst.drop_database(drop_db).is_err());
        assert!(inst.create_table(drop_db, 10, 100).is_err());
    }

    #[test]
    fn os_cache_absorbs_pool_misses() {
        // PostgreSQL-style: tiny shared buffers, large OS cache.
        let mut cfg = DbmsConfig::postgres(Bytes::mib(2), Bytes::mib(64));
        cfg.seed = 7;
        let mut inst = DbmsInstance::new(cfg);
        let db = inst.create_database("pg");
        // ~4 MiB table: exceeds the pool, fits the OS cache.
        let t = inst.create_table(db, 25_000, 164).unwrap();
        inst.scan_count(t, 25_000); // cold: misses to disk, fills OS cache
        let cold_pending = inst.pending_reads;
        inst.prepare_tick(0.1, &[]);
        inst.complete_tick(0.1, full_grant());
        inst.scan_count(t, 25_000); // warm: pool misses, OS cache hits
        assert!(inst.stats().os_cache_hits > 0.0);
        assert!(
            inst.pending_reads < cold_pending * 0.2,
            "OS cache should absorb most re-reads: {} vs {}",
            inst.pending_reads,
            cold_pending
        );
    }

    #[test]
    fn higher_update_rate_needs_sublinear_writeback() {
        // The core Fig-4 mechanism at module scale: doubling the update
        // rate must less-than-double the steady-state write-back rate,
        // because more updates land on already-dirty pages.
        let steady_writes = |rows_per_tick: f64| -> f64 {
            let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(64)));
            let db = inst.create_database("app");
            let t = inst.create_table(db, 100_000, 164).unwrap();
            inst.prewarm_table(t);
            let mut written = 0.0;
            for step in 0..400 {
                let batch = OpBatch {
                    txns: 1.0,
                    updates: vec![UpdateSpec {
                        table: t,
                        prefix_pages: 0,
                        rows: rows_per_tick,
                    }],
                    ..Default::default()
                };
                inst.prepare_tick(0.1, &[(db, batch)]);
                let r = inst.complete_tick(0.1, full_grant());
                if step >= 200 {
                    written += r.physical_writes;
                }
            }
            written
        };
        let slow = steady_writes(500.0);
        let fast = steady_writes(1000.0);
        assert!(
            fast < slow * 1.9,
            "coalescing must be sub-linear: {slow} -> {fast}"
        );
        assert!(
            fast > slow * 1.1,
            "more updates must still write more: {slow} -> {fast}"
        );
    }
}
