//! TPC-C-like OLTP workload.
//!
//! Calibration follows the paper's observations:
//! * working set ≈ 125 MB per warehouse (§3.1: "our expected TPC-C working
//!   set size, which is around 120–150 MB per warehouse");
//! * database ≈ 160 MB per warehouse (§7.5: 30 warehouses ≈ 4.8 GB);
//! * the NewOrder/Payment-dominated mix updates ~10 rows and reads ~14
//!   pages per transaction, plus a small append to a history table.

use crate::{patterns::RatePattern, TxnCarry, Workload, WorkloadHandle};
use kairos_dbsim::{AccessSpec, DbmsInstance, OpBatch, UpdateSpec};
use kairos_types::Bytes;

/// Database bytes per warehouse.
pub const DB_BYTES_PER_WAREHOUSE: u64 = 160 * 1024 * 1024;
/// Working-set bytes per warehouse.
pub const WS_BYTES_PER_WAREHOUSE: u64 = 125 * 1024 * 1024;
/// Average row size across the TPC-C schema (stock/customer dominated).
pub const ROW_BYTES: u64 = 164;

/// Per-transaction costs of the standard mix.
#[derive(Debug, Clone, Copy)]
pub struct TpccTxnProfile {
    /// Logical page accesses per transaction.
    pub reads_per_txn: f64,
    /// Rows modified per transaction.
    pub rows_updated_per_txn: f64,
    /// Standardized core-seconds per transaction.
    pub cpu_secs_per_txn: f64,
    /// Bytes appended to the history table per transaction.
    pub insert_bytes_per_txn: f64,
    /// Intrinsic latency floor (think time inside the txn, lock waits).
    pub base_latency_secs: f64,
}

impl Default for TpccTxnProfile {
    fn default() -> TpccTxnProfile {
        TpccTxnProfile {
            reads_per_txn: 14.0,
            rows_updated_per_txn: 10.0,
            cpu_secs_per_txn: 0.35e-3,
            insert_bytes_per_txn: 92.0,
            base_latency_secs: 0.065,
        }
    }
}

/// The TPC-C-like workload generator.
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    name: String,
    warehouses: u32,
    rate: RatePattern,
    profile: TpccTxnProfile,
    carry: TxnCarry,
}

impl TpccWorkload {
    /// Standard mix at a flat request rate.
    pub fn new(warehouses: u32, tps: f64) -> TpccWorkload {
        TpccWorkload::with_pattern(warehouses, RatePattern::Flat { tps })
    }

    pub fn with_pattern(warehouses: u32, rate: RatePattern) -> TpccWorkload {
        assert!(warehouses > 0, "TPC-C needs at least one warehouse");
        TpccWorkload {
            name: format!("tpcc-{warehouses}w"),
            warehouses,
            rate,
            profile: TpccTxnProfile::default(),
            carry: TxnCarry::default(),
        }
    }

    pub fn named(mut self, name: impl Into<String>) -> TpccWorkload {
        self.name = name.into();
        self
    }

    pub fn with_profile(mut self, profile: TpccTxnProfile) -> TpccWorkload {
        self.profile = profile;
        self
    }

    pub fn warehouses(&self) -> u32 {
        self.warehouses
    }

    pub fn db_size(&self) -> Bytes {
        Bytes(self.warehouses as u64 * DB_BYTES_PER_WAREHOUSE)
    }

    pub fn profile(&self) -> &TpccTxnProfile {
        &self.profile
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&mut self, inst: &mut DbmsInstance) -> WorkloadHandle {
        let db = inst.create_database(self.name.clone());
        let rows = self.db_size().0 / ROW_BYTES;
        let table = inst
            .create_table(db, rows, ROW_BYTES)
            .expect("database was just created");
        let history = inst
            .create_table(db, 1024, 128)
            .expect("database was just created");
        let ws_pages = self.working_set().pages(inst.page_size());
        // Warm only the working set: cold history/cold tail stay on disk.
        inst.prewarm_pages(table, ws_pages);
        WorkloadHandle {
            db,
            table,
            append_table: Some(history),
            ws_pages,
        }
    }

    fn batch(&mut self, handle: &WorkloadHandle, now: f64, dt: f64) -> OpBatch {
        let txns = self.carry.take(self.rate.rate_at(now), dt);
        if txns == 0.0 {
            return OpBatch::default();
        }
        let p = &self.profile;
        OpBatch {
            txns,
            rows_read: txns * p.reads_per_txn * 3.0,
            reads: vec![AccessSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                accesses: txns * p.reads_per_txn,
            }],
            updates: vec![UpdateSpec {
                table: handle.table,
                prefix_pages: handle.ws_pages,
                rows: txns * p.rows_updated_per_txn,
            }],
            insert_bytes: txns * p.insert_bytes_per_txn,
            insert_table: handle.append_table,
            cpu_core_secs: txns * p.cpu_secs_per_txn,
            base_latency_secs: p.base_latency_secs,
        }
    }

    fn working_set(&self) -> Bytes {
        Bytes(self.warehouses as u64 * WS_BYTES_PER_WAREHOUSE)
    }

    fn mean_rate(&self) -> f64 {
        self.rate.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_dbsim::DbmsConfig;

    #[test]
    fn sizes_scale_with_warehouses() {
        let w = TpccWorkload::new(5, 100.0);
        assert_eq!(w.working_set(), Bytes::mib(625));
        assert_eq!(w.db_size(), Bytes::mib(800));
    }

    #[test]
    fn install_creates_tables_and_warms_ws() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(953)));
        let mut w = TpccWorkload::new(2, 50.0);
        let h = w.install(&mut inst);
        assert!(inst.table_pages(h.table) > 0);
        assert!(h.append_table.is_some());
        // Working set warmed (pool resident at least ws pages).
        assert!(inst.pool_resident_pages() as u64 >= h.ws_pages);
    }

    #[test]
    fn batch_scales_with_rate() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512)));
        let mut w = TpccWorkload::new(1, 100.0);
        let h = w.install(&mut inst);
        let b = w.batch(&h, 0.0, 0.1);
        assert_eq!(b.txns, 10.0);
        assert_eq!(b.updates[0].rows, 100.0);
        assert_eq!(b.reads[0].accesses, 140.0);
        assert!(b.cpu_core_secs > 0.0);
    }

    #[test]
    fn zero_rate_produces_empty_batch() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(512)));
        let mut w = TpccWorkload::new(1, 0.0);
        let h = w.install(&mut inst);
        let b = w.batch(&h, 0.0, 0.1);
        assert_eq!(b.txns, 0.0);
        assert!(b.reads.is_empty());
    }

    #[test]
    fn working_set_is_prefix_of_table() {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(1)));
        let mut w = TpccWorkload::new(3, 10.0);
        let h = w.install(&mut inst);
        assert!(h.ws_pages < inst.table_pages(h.table));
    }

    #[test]
    #[should_panic(expected = "at least one warehouse")]
    fn zero_warehouses_rejected() {
        TpccWorkload::new(0, 10.0);
    }
}
