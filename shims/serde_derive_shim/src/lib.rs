//! No-op `Serialize`/`Deserialize` derives for the workspace-local serde
//! shim. Each derive emits an empty marker-trait impl for the annotated
//! type. Only non-generic types are supported — which covers every derive
//! site in this workspace; a generic type fails loudly at compile time
//! rather than silently mis-expanding.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name =
        type_name(input).unwrap_or_else(|| panic!("serde shim derive: could not find type name"));
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl must parse")
}

/// Scan the derive input for `struct`/`enum`/`union` and return the
/// following identifier. Panics on generic types (the shim would need real
/// parsing to reproduce their bounds).
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generic types");
            }
            _ => {}
        }
    }
    None
}
