//! The real transport: blocking `std::net` sockets, one thread per
//! connection.
//!
//! No async runtime, by design — the whole workspace is built on
//! synchronous loops and `std::thread::scope` fan-out, and the control
//! plane's RPC fan-in is a handful of long-lived connections (one
//! balancer per shard node), not ten thousand ephemeral ones. An accept
//! thread hands each connection to its own reader thread; each reader
//! loops `read_frame → handler → write_frame` until the peer hangs up.
//! The handler mutex serializes dispatch, so a node behaves identically
//! whether one balancer or several clients are connected.
//!
//! Timeouts: connections set generous read/write timeouts so a dead peer
//! surfaces as an error instead of a hang — the balancer's lease logic
//! turns those errors into failure detection.

use crate::auth::wire_trailer_len;
use crate::frame::{read_frame_with_trailer, write_frame};
use crate::transport::{Conn, Handler, NetError, ServerHandle, Transport};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a client call waits for a response before reporting the peer
/// dead. Generous: the slowest RPC is a Tick that runs a warm re-solve
/// (tens of milliseconds); 30 s means only a truly wedged peer trips it.
const CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// How long `connect` waits for the TCP handshake.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// The `std::net` transport. Stateless — endpoints are socket addresses
/// (`"127.0.0.1:9301"`, or `":0"` forms to let the kernel pick a port,
/// reported back via [`ServerHandle::endpoint`]).
#[derive(Clone, Default)]
pub struct TcpTransport;

impl TcpTransport {
    pub fn new() -> TcpTransport {
        TcpTransport
    }
}

impl Transport for TcpTransport {
    fn serve(&self, endpoint: &str, handler: Handler) -> Result<ServerHandle, NetError> {
        let listener = TcpListener::bind(endpoint)?;
        let actual = listener.local_addr()?.to_string();
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_stop = stopping.clone();
        let accept_addr = actual.clone();
        let accept = std::thread::Builder::new()
            .name(format!("kairos-net-accept-{actual}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = handler.clone();
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_default();
                    let _ = std::thread::Builder::new()
                        .name(format!("kairos-net-conn-{peer}"))
                        .spawn(move || serve_connection(stream, handler));
                }
                drop(accept_addr);
            })?;
        let stop_addr = actual.clone();
        Ok(ServerHandle::new(actual, move || {
            stopping.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection, then
            // join it so the listener is really closed when stop returns.
            let _ = TcpStream::connect(&stop_addr);
            let _ = accept.join();
        }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Conn>, NetError> {
        let addr = endpoint
            .parse()
            .map_err(|_| NetError::Unreachable(format!("{endpoint}: not a socket address")))?;
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(CALL_TIMEOUT))?;
        stream.set_write_timeout(Some(CALL_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConn {
            endpoint: endpoint.to_string(),
            stream,
        }))
    }
}

/// One connection's server loop: frames in, frames out, until EOF or a
/// damaged frame. A validation failure closes the connection — the
/// stream offset is unrecoverable after a bad frame, and the client
/// reconnects — but never touches node state: validation happens before
/// dispatch.
fn serve_connection(mut stream: TcpStream, handler: Handler) {
    let _ = stream.set_nodelay(true);
    loop {
        // Keyed deployments carry an auth tag after the CRC; the frame
        // reader consumes it so stream framing survives, and the node's
        // handler verifies it before dispatch.
        let frame = match read_frame_with_trailer(&mut stream, wire_trailer_len()) {
            Ok(frame) => frame,
            Err(NetError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => return,
            Err(_) => return,
        };
        let response = {
            let mut handler = handler.lock().expect("tcp handler lock");
            handler(&frame)
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

struct TcpConn {
    endpoint: String,
    stream: TcpStream,
}

impl Conn for TcpConn {
    fn call(&mut self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        write_frame(&mut self.stream, frame)?;
        read_frame_with_trailer(&mut self.stream, wire_trailer_len())
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;
    use std::sync::Mutex;

    #[test]
    fn serve_echo_over_localhost() {
        let t = TcpTransport::new();
        let handler: Handler = Arc::new(Mutex::new(|f: &[u8]| f.to_vec()));
        let handle = t.serve("127.0.0.1:0", handler).expect("binds");
        let mut conn = t.connect(&handle.endpoint).expect("connects");
        let msg = frame::encode_frame(&(String::from("ping"), 1u64));
        assert_eq!(conn.call(&msg).expect("echoes"), msg);
        // Stopping the server closes the listener: new connections are
        // refused. (Established connections keep draining until the
        // peer hangs up — ordinary TCP listener semantics; a *process*
        // death severs them, which is what the lease layer detects.)
        let endpoint = handle.endpoint.clone();
        handle.stop();
        assert!(t.connect(&endpoint).is_err());
    }

    #[test]
    fn connect_to_dead_port_fails() {
        let t = TcpTransport::new();
        // Bind-then-drop to find a port that is (briefly) guaranteed free.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
            l.local_addr().expect("addr").port()
        };
        assert!(t.connect(&format!("127.0.0.1:{port}")).is_err());
    }
}
