//! The seed-sweep runner CI drives: generate N schedules, interpret
//! each against a fresh fleet, and fail loudly — with a shrunk,
//! reproducible schedule and its why-chain — on the first broken
//! invariant. A slice of seeds is also rerun to prove byte-identical
//! decision-trace fingerprints (the determinism oracle).
//!
//! Environment:
//! * `KAIROS_CHAOS_SCHEDULES` — how many seeded schedules (default 25;
//!   CI runs ≥200);
//! * `KAIROS_CHAOS_SEED` — base seed, decimal or `0x…` hex (default
//!   `0xC4A05EED`); schedule `i` uses `base + i`;
//! * `KAIROS_CHAOS_TRANSPORT` — `loopback` (default) or `tcp`: the
//!   backend under the fault-injecting decorator.
//!
//! On failure the minimal schedule and the violation report are also
//! written to `target/chaos/` so CI can upload them as artifacts.

use kairos_chaos::{generate, run_on, shrink, ChaosBackend, ChaosConfig, Schedule};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v} is not a u64"))
        }
        Err(_) => default,
    }
}

fn dump(seed: u64, body: &str) {
    let dir = std::path::Path::new("target/chaos");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("seed-0x{seed:016x}.txt"));
        if std::fs::write(&path, body).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

fn fail(schedule: &Schedule, cfg: &ChaosConfig, backend: ChaosBackend) -> ! {
    // Shrink to a 1-minimal failing schedule before reporting: the
    // rerun inside the predicate is the reproduction CI asks for.
    eprintln!(
        "shrinking failing schedule (seed 0x{:016x})…",
        schedule.seed
    );
    let minimal = shrink(schedule, |s| run_on(cfg, s, backend).violation.is_some());
    let outcome = run_on(cfg, &minimal, backend);
    let violation = outcome
        .violation
        .expect("shrink keeps the schedule failing");
    let body = format!(
        "chaos sweep failure ({} backend)\n\nminimal failing {}\n{}\nreproduce with:\n  \
         KAIROS_CHAOS_SCHEDULES=1 KAIROS_CHAOS_SEED=0x{:016x} KAIROS_CHAOS_TRANSPORT={} \
         cargo run --release -p kairos-chaos --bin chaos_sweep\n",
        backend.label(),
        minimal.render(),
        violation.render(),
        minimal.seed,
        backend.label(),
    );
    eprintln!("{body}");
    dump(minimal.seed, &body);
    std::process::exit(1);
}

fn main() {
    let schedules = env_u64("KAIROS_CHAOS_SCHEDULES", 25);
    let base = env_u64("KAIROS_CHAOS_SEED", 0xC4A0_5EED);
    let backend = ChaosBackend::from_env();
    let cfg = ChaosConfig::default();
    let bounds = cfg.bounds();

    let mut total_faults = 0usize;
    for i in 0..schedules {
        let seed = base.wrapping_add(i);
        let schedule = generate(seed, &bounds);
        let outcome = run_on(&cfg, &schedule, backend);
        total_faults += outcome.report.faults_applied;
        if outcome.violation.is_some() {
            fail(&schedule, &cfg, backend);
        }
        // Determinism spot-check: every 10th schedule reruns and must
        // fingerprint byte-identically.
        if i % 10 == 0 {
            let again = run_on(&cfg, &schedule, backend);
            if again.fingerprint != outcome.fingerprint {
                let body = format!(
                    "chaos sweep failure: NON-DETERMINISTIC RUN\n\n{}\nthe same schedule produced \
                     two different decision-trace fingerprints ({} vs {} bytes)\n",
                    schedule.render(),
                    outcome.fingerprint.len(),
                    again.fingerprint.len(),
                );
                eprintln!("{body}");
                dump(seed, &body);
                std::process::exit(1);
            }
        }
        if (i + 1) % 25 == 0 {
            eprintln!(
                "chaos sweep: {}/{} schedules green ({} faults applied so far)",
                i + 1,
                schedules,
                total_faults
            );
        }
    }
    println!(
        "chaos sweep ({}): {schedules} schedules green, {total_faults} faults applied, \
         invariants held on every tick",
        backend.label()
    );
}
