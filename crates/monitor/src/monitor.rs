//! Periodic statistics collection and the over-provisioning classifier.
//!
//! The monitor differences [`kairos_dbsim::InstanceStats`] snapshots at a
//! fixed interval — the simulator's equivalent of polling MySQL's `SHOW
//! STATUS` over JDBC and `iostat`/`/proc` over SSH (§6). Each interval
//! yields a [`MonitorSample`]; a completed run converts into the
//! [`WorkloadProfile`] the consolidation engine consumes.

use kairos_dbsim::{DbmsInstance, InstanceStats};
use kairos_types::{Bytes, TimeSeries, WorkloadProfile};

/// §3's three-way memory classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryClass {
    /// (i) working set fits in the buffer pool: buffer-pool miss ratio is
    /// close to zero. Gauging applies.
    FitsBufferPool,
    /// (ii) working set misses the buffer pool but fits the OS file
    /// cache: high miss ratio yet few physical reads. Gauging applies
    /// (the cache tier is what gets gauged).
    FitsOsCache,
    /// (iii) working set exceeds all memory: high miss ratio *and* many
    /// physical reads. Memory is not over-provisioned; the machine's RAM
    /// is genuinely needed.
    DiskBound,
}

impl MemoryClass {
    /// Classify an interval. `miss_ratio` is the buffer-pool miss ratio
    /// and `reads_per_sec` the physical page-read rate over the interval.
    pub fn classify(miss_ratio: f64, reads_per_sec: f64) -> MemoryClass {
        const MISS_THRESHOLD: f64 = 0.02;
        const READS_THRESHOLD: f64 = 8.0;
        if miss_ratio < MISS_THRESHOLD {
            MemoryClass::FitsBufferPool
        } else if reads_per_sec < READS_THRESHOLD {
            MemoryClass::FitsOsCache
        } else {
            MemoryClass::DiskBound
        }
    }

    /// Whether buffer-pool gauging can shrink this workload's RAM claim.
    pub fn gaugeable(self) -> bool {
        self != MemoryClass::DiskBound
    }
}

/// One monitoring interval's derived measurements.
#[derive(Debug, Clone, Copy)]
pub struct MonitorSample {
    /// Interval length (seconds of simulated time).
    pub secs: f64,
    /// Average CPU load in standardized cores.
    pub cpu_cores: f64,
    /// RAM the OS reports allocated/active for the DBMS.
    pub ram_os_view: Bytes,
    /// Committed transactions per second.
    pub tps: f64,
    /// Rows modified per second (the disk model's rate input).
    pub rows_updated_per_sec: f64,
    /// Physical page reads per second.
    pub reads_per_sec: f64,
    /// Disk bytes written per second (log + pages), the iostat view.
    pub write_bytes_per_sec: f64,
    /// Buffer-pool miss ratio over the interval.
    pub bp_miss_ratio: f64,
    /// Mean transaction latency over the interval.
    pub mean_latency_secs: f64,
}

/// Collects interval samples from one DBMS instance.
#[derive(Debug)]
pub struct ResourceMonitor {
    interval_secs: f64,
    last: InstanceStats,
    samples: Vec<MonitorSample>,
}

impl ResourceMonitor {
    /// Start monitoring; the caller samples every `interval_secs` of
    /// simulated time (the paper uses 5-minute windows on production data
    /// and finer windows in the lab).
    pub fn new(interval_secs: f64, inst: &DbmsInstance) -> ResourceMonitor {
        assert!(interval_secs > 0.0);
        ResourceMonitor {
            interval_secs,
            last: inst.stats(),
            samples: Vec::new(),
        }
    }

    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// Record one interval ending now.
    pub fn sample(&mut self, inst: &DbmsInstance) -> MonitorSample {
        let now = inst.stats();
        let delta = now.delta(&self.last);
        self.last = now;
        let page_bytes = inst.page_size().as_f64();
        let secs = if delta.sim_secs > 0.0 {
            delta.sim_secs
        } else {
            self.interval_secs
        };
        let miss_ratio = {
            let total = delta.bp_hits + delta.bp_misses;
            if total > 0.0 {
                delta.bp_misses / total
            } else {
                0.0
            }
        };
        let s = MonitorSample {
            secs,
            cpu_cores: delta.cpu_core_secs / secs,
            ram_os_view: inst.ram_allocated(),
            tps: delta.committed_txns / secs,
            rows_updated_per_sec: delta.rows_updated / secs,
            reads_per_sec: delta.physical_read_pages / secs,
            write_bytes_per_sec: (delta.log_bytes + delta.physical_write_pages * page_bytes) / secs,
            bp_miss_ratio: miss_ratio,
            mean_latency_secs: if delta.committed_txns > 0.0 {
                delta.latency_weighted_secs / delta.committed_txns
            } else {
                0.0
            },
        };
        self.samples.push(s);
        s
    }

    pub fn samples(&self) -> &[MonitorSample] {
        &self.samples
    }

    /// Memory classification of the most recent interval.
    pub fn memory_class(&self) -> Option<MemoryClass> {
        self.samples
            .last()
            .map(|s| MemoryClass::classify(s.bp_miss_ratio, s.reads_per_sec))
    }

    /// Build the consolidation-engine input. `gauged_working_set` replaces
    /// the OS RAM view when buffer-pool gauging ran (the §3.1 correction);
    /// pass `None` to fall back to the OS view (what the historical
    /// datasets force, cf. §6 "RAM scaling").
    pub fn into_profile(
        self,
        name: impl Into<String>,
        gauged_working_set: Option<Bytes>,
        dbms_overhead: Bytes,
    ) -> WorkloadProfile {
        let iv = self.interval_secs;
        let cpu = TimeSeries::new(iv, self.samples.iter().map(|s| s.cpu_cores).collect());
        let ram = TimeSeries::new(
            iv,
            self.samples
                .iter()
                .map(|s| match gauged_working_set {
                    Some(ws) => (ws + dbms_overhead).as_f64(),
                    None => s.ram_os_view.as_f64(),
                })
                .collect(),
        );
        let ws = TimeSeries::new(
            iv,
            self.samples
                .iter()
                .map(|s| match gauged_working_set {
                    Some(w) => w.as_f64(),
                    None => s.ram_os_view.as_f64(),
                })
                .collect(),
        );
        let rows = TimeSeries::new(
            iv,
            self.samples
                .iter()
                .map(|s| s.rows_updated_per_sec)
                .collect(),
        );
        WorkloadProfile::new(name, cpu, ram, ws, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_dbsim::{DatabaseId, DbmsConfig, DeviceGrant, OpBatch, UpdateSpec};

    fn grant() -> DeviceGrant {
        DeviceGrant {
            fg_fraction: 1.0,
            writeback_pages: 1e9,
            cpu_fraction: 1.0,
            cpu_latency_factor: 1.0,
            read_service_secs: 0.008,
            disk_utilization: 0.1,
        }
    }

    fn busy_instance() -> (DbmsInstance, DatabaseId, kairos_dbsim::TableId) {
        let mut inst = DbmsInstance::new(DbmsConfig::mysql(Bytes::mib(64)));
        let db = inst.create_database("app");
        let t = inst.create_table(db, 100_000, 164).unwrap();
        inst.prewarm_table(t);
        (inst, db, t)
    }

    #[test]
    fn classify_matches_paper_cases() {
        assert_eq!(
            MemoryClass::classify(0.001, 0.0),
            MemoryClass::FitsBufferPool
        );
        assert_eq!(MemoryClass::classify(0.30, 2.0), MemoryClass::FitsOsCache);
        assert_eq!(MemoryClass::classify(0.30, 500.0), MemoryClass::DiskBound);
        assert!(MemoryClass::FitsBufferPool.gaugeable());
        assert!(MemoryClass::FitsOsCache.gaugeable());
        assert!(!MemoryClass::DiskBound.gaugeable());
    }

    #[test]
    fn sample_computes_interval_rates() {
        let (mut inst, db, t) = busy_instance();
        let mut mon = ResourceMonitor::new(1.0, &inst);
        for _ in 0..10 {
            let batch = OpBatch {
                txns: 20.0,
                updates: vec![UpdateSpec {
                    table: t,
                    prefix_pages: 0,
                    rows: 200.0,
                }],
                cpu_core_secs: 0.01,
                ..Default::default()
            };
            inst.prepare_tick(0.1, &[(db, batch)]);
            inst.complete_tick(0.1, grant());
        }
        let s = mon.sample(&inst);
        assert!((s.secs - 1.0).abs() < 1e-9);
        assert!((s.tps - 200.0).abs() < 1.0, "tps = {}", s.tps);
        assert!((s.rows_updated_per_sec - 2000.0).abs() < 10.0);
        assert!(s.write_bytes_per_sec > 0.0);
        assert!(s.cpu_cores > 0.0);
    }

    #[test]
    fn warm_instance_classifies_as_fits_buffer_pool() {
        let (mut inst, db, t) = busy_instance();
        let mut mon = ResourceMonitor::new(1.0, &inst);
        for _ in 0..20 {
            let batch = OpBatch {
                txns: 10.0,
                reads: vec![kairos_dbsim::AccessSpec {
                    table: t,
                    prefix_pages: 0,
                    accesses: 100.0,
                }],
                ..Default::default()
            };
            inst.prepare_tick(0.1, &[(db, batch)]);
            inst.complete_tick(0.1, grant());
        }
        mon.sample(&inst);
        assert_eq!(mon.memory_class(), Some(MemoryClass::FitsBufferPool));
    }

    #[test]
    fn profile_uses_gauged_ws_when_available() {
        let (mut inst, db, t) = busy_instance();
        let mut mon = ResourceMonitor::new(1.0, &inst);
        for _ in 0..20 {
            let batch = OpBatch {
                txns: 5.0,
                updates: vec![UpdateSpec {
                    table: t,
                    prefix_pages: 0,
                    rows: 50.0,
                }],
                ..Default::default()
            };
            inst.prepare_tick(0.1, &[(db, batch)]);
            inst.complete_tick(0.1, grant());
            if inst.stats().sim_secs.rem_euclid(1.0) < 1e-9 {
                mon.sample(&inst);
            }
        }
        let gauged = Bytes::mib(20);
        let overhead = Bytes::mib(190);
        let profile = mon.into_profile("w", Some(gauged), overhead);
        assert!(profile.windows() > 0);
        assert_eq!(profile.window(0).ram, gauged + overhead);
        assert_eq!(profile.window(0).disk.working_set, gauged);
        assert!(profile.window(0).disk.update_rows_per_sec.as_f64() > 0.0);
    }

    #[test]
    fn profile_falls_back_to_os_view() {
        let (mut inst, _db, _t) = busy_instance();
        let mut mon = ResourceMonitor::new(1.0, &inst);
        inst.prepare_tick(0.1, &[]);
        inst.complete_tick(0.1, grant());
        mon.sample(&inst);
        let os_view = inst.ram_allocated();
        let profile = mon.into_profile("w", None, Bytes::ZERO);
        assert_eq!(profile.window(0).ram, os_view);
    }

    #[test]
    fn idle_interval_has_zero_rates() {
        let (mut inst, _db, _t) = busy_instance();
        let mut mon = ResourceMonitor::new(1.0, &inst);
        for _ in 0..10 {
            inst.prepare_tick(0.1, &[]);
            inst.complete_tick(0.1, grant());
        }
        let s = mon.sample(&inst);
        assert_eq!(s.tps, 0.0);
        assert_eq!(s.rows_updated_per_sec, 0.0);
        assert_eq!(s.mean_latency_secs, 0.0);
    }
}
