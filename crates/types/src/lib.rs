//! Shared vocabulary types for the Kairos reproduction.
//!
//! Every other crate in the workspace speaks in terms of the types defined
//! here: byte quantities ([`Bytes`]), sampled resource series
//! ([`TimeSeries`]), physical machine descriptions ([`MachineSpec`]) and the
//! per-workload resource profiles ([`WorkloadProfile`]) that the monitor
//! produces and the consolidation engine consumes.
//!
//! The paper's pipeline (Fig 1) is: *Resource Monitor* → *Combined Load
//! Predictor* → *Consolidation Engine*. The handoff between those stages is
//! exactly a set of [`WorkloadProfile`]s plus a set of [`MachineSpec`]s,
//! which is why these types live in their own dependency-free crate.

pub mod error;
pub mod profile;
pub mod rng;
pub mod series;
pub mod spec;
pub mod units;

pub use error::{KairosError, Result};
pub use profile::{DiskDemand, ProfileWindow, WorkloadProfile};
pub use rng::SplitMix64;
pub use series::{percentile_of_sorted, TimeSeries};
pub use spec::{CpuSpec, DiskSpec, MachineSpec, RamSpec};
pub use units::{Bytes, Percent, Rate, Seconds};

/// Resources the consolidation engine reasons about.
///
/// The paper focuses on CPU, RAM and disk I/O "since these were the most
/// constrained in the real-world datasets" (§5); network and disk space are
/// noted as straightforward extensions and modeled the same way here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ResourceKind {
    /// Fraction of a standardized core (can exceed 1.0 for multicore use).
    Cpu,
    /// Bytes of main memory actively required (post-gauging working set).
    Ram,
    /// Disk I/O throughput in bytes/second.
    DiskIo,
}

impl ResourceKind {
    /// All modeled resources, in the order used by profile vectors.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Cpu, ResourceKind::Ram, ResourceKind::DiskIo];

    /// Short human-readable label used by report tables.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Ram => "ram",
            ResourceKind::DiskIo => "disk",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ResourceKind::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), ResourceKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        for r in ResourceKind::ALL {
            assert_eq!(format!("{r}"), r.label());
        }
    }
}
