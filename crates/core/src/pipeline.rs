//! The end-to-end Kairos pipeline on the simulated deployment:
//! observe each workload on its dedicated server (resource monitor +
//! buffer-pool gauging), predict the combined load, plan, and verify the
//! plan by actually co-locating the workloads (§7.2's methodology:
//! "first use our monitoring tools to collect load statistics for
//! individual workloads in isolation, then predict their combined load
//! and compute a consolidation strategy [... then] physically co-locating
//! the workloads and running them").

use crate::engine::ConsolidationEngine;
use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::{BufferGauge, GaugeParams, MonitorSample, ResourceMonitor, SimGaugeEnv};
use kairos_types::{Bytes, MachineSpec, TimeSeries, WorkloadProfile};
use kairos_workloads::{Driver, Workload};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The dedicated server each workload currently runs on.
    pub source_machine: MachineSpec,
    /// Buffer pool of each source DBMS instance.
    pub source_buffer_pool: Bytes,
    /// Machine class to consolidate onto / verify against.
    pub target_machine: MachineSpec,
    /// Buffer pool of the consolidated instance.
    pub target_buffer_pool: Bytes,
    /// Monitoring window length.
    pub monitor_interval_secs: f64,
    /// Observation horizon per workload.
    pub observe_secs: f64,
    /// Warm-up before measurements.
    pub warmup_secs: f64,
    /// Run buffer-pool gauging after monitoring (recommended).
    pub gauge: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            source_machine: MachineSpec::server1(),
            source_buffer_pool: Bytes::gib(8),
            target_machine: MachineSpec::server1(),
            target_buffer_pool: Bytes::gib(24),
            monitor_interval_secs: 5.0,
            observe_secs: 60.0,
            warmup_secs: 20.0,
            gauge: true,
        }
    }
}

/// What observing one workload on its dedicated server produced.
#[derive(Debug, Clone)]
pub struct WorkloadObservation {
    pub profile: WorkloadProfile,
    /// Gauged working set, when gauging ran.
    pub gauged_working_set: Option<Bytes>,
    /// What the OS would have claimed (allocated RAM).
    pub os_ram_view: Bytes,
    pub standalone_tps: f64,
    pub standalone_latency_secs: f64,
    pub standalone_p95_latency_secs: f64,
    /// Observed disk write throughput per window (the Fig 6 baseline's
    /// input: what naive iostat-summing would add up).
    pub observed_write_bytes: TimeSeries,
}

/// Per-workload measurement from a co-located verification run.
#[derive(Debug, Clone)]
pub struct VerifiedWorkload {
    pub name: String,
    pub tps: f64,
    pub mean_latency_secs: f64,
    pub p95_latency_secs: f64,
}

/// A live, incremental observation of one workload on its dedicated
/// source server — the pipeline's observation stage broken out of the
/// one-shot [`Kairos::observe`] so online consumers (the controller's
/// telemetry ingester) can pull samples as simulated time advances.
pub struct ObservationSession {
    name: String,
    host: Host,
    driver: Driver,
    monitor: ResourceMonitor,
}

impl ObservationSession {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn interval_secs(&self) -> f64 {
        self.monitor.interval_secs()
    }

    /// Run the workload for one monitoring interval and sample it.
    pub fn step(&mut self) -> MonitorSample {
        let dt = self.monitor.interval_secs();
        self.driver.run(&mut self.host, dt);
        self.monitor.sample(self.host.instance(0))
    }

    /// All samples collected so far.
    pub fn samples(&self) -> &[MonitorSample] {
        self.monitor.samples()
    }

    /// Finish the session, converting everything observed into the
    /// profile shape the planner consumes (no gauging correction: online
    /// sources fall back to the OS RAM view unless the caller gauges
    /// separately and passes the result here).
    pub fn into_profile(self, gauged_working_set: Option<Bytes>) -> WorkloadProfile {
        let overhead = self.host.instance(0).config().ram_overhead;
        self.monitor
            .into_profile(&self.name, gauged_working_set, overhead)
    }
}

/// The pipeline runner.
pub struct Kairos {
    pub config: PipelineConfig,
}

impl Kairos {
    pub fn new(config: PipelineConfig) -> Kairos {
        Kairos { config }
    }

    /// Observe one workload in isolation on a dedicated source server.
    pub fn observe(&self, workload: Box<dyn Workload>) -> WorkloadObservation {
        let cfg = &self.config;
        let name = workload.name().to_string();
        let mut host = Host::new(cfg.source_machine.clone());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(cfg.source_buffer_pool)));
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, workload);
        let db = driver.bindings()[0].handle.db;

        driver.warmup(&mut host, cfg.warmup_secs);

        let mut monitor = ResourceMonitor::new(cfg.monitor_interval_secs, host.instance(0));
        let windows = (cfg.observe_secs / cfg.monitor_interval_secs).ceil() as usize;
        let mut committed = 0.0;
        let mut offered = 0.0;
        let mut lat_samples: Vec<(f64, f64)> = Vec::new();
        for _ in 0..windows {
            let stats = driver.run(&mut host, cfg.monitor_interval_secs);
            for s in &stats {
                committed += s.committed_txns;
                offered += s.offered_txns;
                if s.committed_txns > 0.0 {
                    lat_samples.push((s.mean_latency_secs(), s.committed_txns));
                }
            }
            monitor.sample(host.instance(0));
        }
        let _ = offered;

        let os_ram_view = host.instance(0).ram_allocated();
        let observed_write_bytes = TimeSeries::new(
            cfg.monitor_interval_secs,
            monitor
                .samples()
                .iter()
                .map(|s| s.write_bytes_per_sec)
                .collect(),
        );

        let gauged = if cfg.gauge {
            let mut env = SimGaugeEnv::new(&mut host, &mut driver, 0, db);
            let outcome = BufferGauge::new(GaugeParams {
                initial_step_pages: 256,
                max_step_pages: 4096,
                read_wait_secs: 1.0,
                window_secs: 5.0,
                ..Default::default()
            })
            .run(&mut env);
            Some(outcome.working_set)
        } else {
            None
        };

        let dbms_overhead = host.instance(0).config().ram_overhead;
        let profile = monitor.into_profile(&name, gauged, dbms_overhead);

        let mean_lat = {
            let (n, d) = lat_samples
                .iter()
                .fold((0.0, 0.0), |(n, d), &(l, w)| (n + l * w, d + w));
            if d > 0.0 {
                n / d
            } else {
                0.0
            }
        };
        let p95 = {
            let mut ls: Vec<f64> = lat_samples.iter().map(|&(l, _)| l).collect();
            ls.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
            if ls.is_empty() {
                0.0
            } else {
                kairos_types::series::percentile_of_sorted(&ls, 95.0)
            }
        };

        WorkloadObservation {
            profile,
            gauged_working_set: gauged,
            os_ram_view,
            standalone_tps: committed / cfg.observe_secs,
            standalone_latency_secs: mean_lat,
            standalone_p95_latency_secs: p95,
            observed_write_bytes,
        }
    }

    /// Start a *streaming* observation of one workload on a dedicated
    /// source server: the workload is bound and warmed up, then the caller
    /// pulls one [`MonitorSample`] per monitoring interval with
    /// [`ObservationSession::step`]. This is the pipeline's observation
    /// stage exposed for reuse — the online controller's telemetry
    /// ingester feeds on these sessions instead of the one-shot
    /// [`Kairos::observe`].
    pub fn observe_session(&self, workload: Box<dyn Workload>) -> ObservationSession {
        let cfg = &self.config;
        let name = workload.name().to_string();
        let mut host = Host::new(cfg.source_machine.clone());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(cfg.source_buffer_pool)));
        let mut driver = Driver::new();
        driver.bind(&mut host, 0, workload);
        driver.warmup(&mut host, cfg.warmup_secs);
        let monitor = ResourceMonitor::new(cfg.monitor_interval_secs, host.instance(0));
        ObservationSession {
            name,
            host,
            driver,
            monitor,
        }
    }

    /// Observe several workloads (each on its own dedicated server).
    pub fn observe_all(
        &self,
        workloads: impl IntoIterator<Item = Box<dyn Workload>>,
    ) -> Vec<WorkloadObservation> {
        workloads.into_iter().map(|w| self.observe(w)).collect()
    }

    /// Co-locate workloads in ONE consolidated DBMS instance on the target
    /// machine, run them, and measure each — the §7.2 validation step.
    pub fn verify_colocated(
        &self,
        workloads: Vec<Box<dyn Workload>>,
        measure_secs: f64,
    ) -> Vec<VerifiedWorkload> {
        let cfg = &self.config;
        let mut host = Host::new(cfg.target_machine.clone());
        host.add_instance(DbmsInstance::new(DbmsConfig::mysql(cfg.target_buffer_pool)));
        let mut driver = Driver::new();
        let names: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();
        for w in workloads {
            driver.bind(&mut host, 0, w);
        }
        driver.warmup(&mut host, cfg.warmup_secs);
        let stats = driver.run(&mut host, measure_secs);
        names
            .into_iter()
            .zip(stats)
            .map(|(name, s)| VerifiedWorkload {
                name,
                tps: s.tps(),
                mean_latency_secs: s.mean_latency_secs(),
                p95_latency_secs: s.latency_percentile_secs(95.0),
            })
            .collect()
    }

    /// Full pipeline: observe in isolation, then plan with `engine`.
    pub fn plan(
        &self,
        engine: &ConsolidationEngine,
        workloads: impl IntoIterator<Item = Box<dyn Workload>>,
    ) -> kairos_types::Result<(Vec<WorkloadObservation>, crate::engine::ConsolidationPlan)> {
        let observations = self.observe_all(workloads);
        let profiles: Vec<WorkloadProfile> =
            observations.iter().map(|o| o.profile.clone()).collect();
        let plan = engine.consolidate(&profiles)?;
        Ok((observations, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_workloads::{RatePattern, SyntheticSpec, SyntheticWorkload};

    fn quick_pipeline(gauge: bool) -> Kairos {
        Kairos::new(PipelineConfig {
            source_buffer_pool: Bytes::mib(512),
            target_buffer_pool: Bytes::gib(2),
            observe_secs: 20.0,
            warmup_secs: 10.0,
            monitor_interval_secs: 5.0,
            gauge,
            ..Default::default()
        })
    }

    fn workload(name: &str, ws_mib: u64, tps: f64) -> Box<dyn kairos_workloads::Workload> {
        Box::new(SyntheticWorkload::new(SyntheticSpec::balanced(
            name,
            Bytes::mib(ws_mib),
            RatePattern::Flat { tps },
        )))
    }

    #[test]
    fn observe_produces_calibrated_profile() {
        let kairos = quick_pipeline(false);
        let obs = kairos.observe(workload("w", 64, 50.0));
        assert!(
            (obs.standalone_tps - 50.0).abs() < 3.0,
            "tps {}",
            obs.standalone_tps
        );
        assert!(obs.standalone_latency_secs > 0.0);
        assert!(obs.profile.windows() >= 4);
        // CPU profile reflects real usage, far below the 8-core machine.
        assert!(obs.profile.peak_cpu() < 2.0);
        assert!(obs.observed_write_bytes.mean() > 0.0);
    }

    #[test]
    fn gauged_ram_is_much_smaller_than_os_view() {
        let kairos = quick_pipeline(true);
        let obs = kairos.observe(workload("w", 64, 50.0));
        let gauged = obs.gauged_working_set.expect("gauging ran");
        // 64 MiB working set inside a 512 MiB pool: the OS claims the whole
        // pool + overhead; gauging must reclaim most of it.
        assert!(gauged < Bytes::mib(160), "gauged {gauged}");
        assert!(obs.os_ram_view > Bytes::mib(500));
    }

    #[test]
    fn verify_colocated_reports_per_workload() {
        let kairos = quick_pipeline(false);
        let out =
            kairos.verify_colocated(vec![workload("a", 32, 30.0), workload("b", 32, 60.0)], 20.0);
        assert_eq!(out.len(), 2);
        assert!((out[0].tps - 30.0).abs() < 3.0);
        assert!((out[1].tps - 60.0).abs() < 3.0);
        assert!(out[0].p95_latency_secs >= out[0].mean_latency_secs * 0.5);
    }

    #[test]
    fn observation_session_streams_samples() {
        let kairos = quick_pipeline(false);
        let mut session = kairos.observe_session(workload("w", 64, 50.0));
        assert_eq!(session.name(), "w");
        for _ in 0..4 {
            let s = session.step();
            assert!((s.tps - 50.0).abs() < 5.0, "tps {}", s.tps);
            assert!(s.cpu_cores > 0.0);
        }
        assert_eq!(session.samples().len(), 4);
        let profile = session.into_profile(None);
        assert_eq!(profile.windows(), 4);
        assert!(profile.window(0).disk.update_rows_per_sec.as_f64() > 0.0);
    }

    #[test]
    fn full_plan_pipeline() {
        let kairos = quick_pipeline(false);
        let engine = ConsolidationEngine::builder().build();
        let (obs, plan) = kairos
            .plan(
                &engine,
                vec![workload("a", 32, 20.0), workload("b", 32, 20.0)],
            )
            .unwrap();
        assert_eq!(obs.len(), 2);
        assert!(plan.report.evaluation.feasible);
        assert_eq!(plan.machines_used(), 1, "two tiny workloads share one box");
    }
}
