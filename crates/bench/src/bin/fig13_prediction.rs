//! Figure 13 — past load predicts future load: total fleet CPU for the
//! third week predicted as the mean of the first two weeks, for the
//! Wikipedia and Second Life fleets.
//!
//! Expected shape: low RMSE (the paper reports ~25 scaled-CPU units,
//! i.e. predictions 7–8 % off), with Second Life's nightly snapshot pool
//! visible as late-night peaks in both actual and predicted curves.

use kairos_bench::{print_table, section};
use kairos_traces::{fleet_total_cpu, generate_fleet, predict_last_period, Dataset, FleetConfig};

fn main() {
    let cfg = FleetConfig::default(); // 3 weeks @ 5 min
    let week_len = (7.0 * 86_400.0 / cfg.interval_secs) as usize;

    for dataset in [Dataset::Wikipedia, Dataset::SecondLife] {
        section(&format!("Figure 13: {}", dataset.label()));
        let fleet = generate_fleet(dataset, &cfg);
        let total = fleet_total_cpu(&fleet);
        let p = predict_last_period(&total, week_len).expect("3 weeks of data");

        println!(
            "  RMSE {:.2} standardized cores, relative error {:.1}% (paper: ~7-8%)",
            p.rmse,
            p.relative_error * 100.0
        );

        // Print the third week at 6-hour granularity: prediction vs real.
        let stride = (6.0 * 3600.0 / cfg.interval_secs) as usize;
        let mut rows = Vec::new();
        let days = ["Wed", "Thu", "Fri", "Sat", "Sun", "Mon", "Tue"];
        for (i, (pred, act)) in p
            .predicted
            .values()
            .iter()
            .zip(p.actual.values())
            .enumerate()
            .step_by(stride)
        {
            let day = days[(i / (week_len / 7)).min(6)];
            let hour = (i % (week_len / 7)) as f64 * cfg.interval_secs / 3600.0;
            rows.push(vec![
                format!("{day} {hour:02.0}:00"),
                format!("{act:.1}"),
                format!("{pred:.1}"),
                format!("{:+.1}", pred - act),
            ]);
        }
        print_table(&["time", "real wk3", "predicted", "error"], &rows);
    }
}
