//! Regression tests for the summary cache's sketch-config keying.
//!
//! The balancer-facing summary cache is staleness-bounded
//! (`summary_refresh_ticks`) and invalidated on state change — but a
//! summary is also a function of the **sketch shape** it was
//! compressed under. A config change (live via `set_sketch_config`, or
//! implicit via a snapshot restored into a differently-configured
//! controller) must invalidate the cache immediately, not after the
//! staleness bound expires: a root balancer reading a 9-mark roll-up
//! from a shard reconfigured to 5 marks would otherwise see frames of
//! the wrong shape for a whole refresh window.

use kairos_controller::{ControllerConfig, ShardController, SyntheticSource};
use kairos_core::ConsolidationEngine;
use kairos_traces::SketchConfig;
use kairos_types::Bytes;
use kairos_workloads::RatePattern;

fn planned_shard() -> ShardController {
    let cfg = ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        // A wide staleness bound: without sketch-digest keying, a stale
        // summary would be served for 24 ticks after a config change.
        summary_refresh_ticks: 24,
        ..ControllerConfig::default()
    };
    let mut shard = ShardController::new(cfg, ConsolidationEngine::builder().build());
    for i in 0..6 {
        shard.add_workload(Box::new(
            SyntheticSource::new(
                format!("t{i:02}"),
                300.0,
                Bytes::gib(4),
                RatePattern::Flat { tps: 210.0 },
            )
            .with_noise(0.0),
        ));
    }
    for _ in 0..12 {
        shard.tick();
    }
    shard
}

fn mark_count(shard: &mut ShardController) -> usize {
    shard.summary_cached().aggregate.cpu_cores.marks().len()
}

#[test]
fn sketch_config_change_invalidates_summary_cache() {
    let mut shard = planned_shard();
    let default_marks = SketchConfig::default().marks as usize;
    assert_eq!(mark_count(&mut shard), default_marks);
    // Second read inside the staleness window: served from cache.
    assert_eq!(mark_count(&mut shard), default_marks);

    // Re-shape the sketch. The cached summary is age-fresh but
    // shape-stale — the very next read must carry the new shape.
    shard.set_sketch_config(SketchConfig { marks: 5, tail: 4 });
    assert_eq!(
        mark_count(&mut shard),
        5,
        "summary cache must invalidate on sketch config change, not only on state change"
    );

    // Setting the same config back and forth is not a spurious
    // invalidation: an identical config keeps the cache warm.
    let before = shard.summary_cached();
    shard.set_sketch_config(SketchConfig { marks: 5, tail: 4 });
    let after = shard.summary_cached();
    assert_eq!(before.aggregate, after.aggregate);
}

#[test]
fn restore_under_different_sketch_config_recomputes_summary() {
    // The snapshot carries the summary cache verbatim (that is the
    // point — a restored shard answers the balancer instantly). But if
    // the restoring process is configured with a different sketch
    // shape, the carried cache is shape-stale and the digest check must
    // catch it without any setter being called.
    let mut shard = planned_shard();
    let default_marks = SketchConfig::default().marks as usize;
    assert_eq!(mark_count(&mut shard), default_marks);
    let snapshot = shard.snapshot();

    let restore_cfg = ControllerConfig {
        horizon: 8,
        check_every: 4,
        cooldown_ticks: 8,
        summary_refresh_ticks: 24,
        sketch: SketchConfig { marks: 3, tail: 2 },
        ..ControllerConfig::default()
    };
    let mut restored = ShardController::restore(
        restore_cfg,
        ConsolidationEngine::builder().build(),
        snapshot,
    )
    .expect("snapshot restores");
    assert_eq!(
        mark_count(&mut restored),
        3,
        "a snapshot-carried summary cache under the old sketch shape must not be served"
    );
}
