//! Cumulative instance statistics — the simulator's `SHOW STATUS` +
//! `iostat`.
//!
//! The resource monitor (in `kairos-monitor`) never looks inside the
//! engine; it periodically snapshots these counters and differences them,
//! exactly as Kairos's Java tool polled MySQL status variables over JDBC
//! and OS counters over SSH (§6).

/// Cumulative counters for one DBMS instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstanceStats {
    /// Simulated seconds this instance has run.
    pub sim_secs: f64,
    /// Committed transactions.
    pub committed_txns: f64,
    /// Rows read by queries (logical).
    pub rows_read: f64,
    /// Rows modified (update/insert/delete).
    pub rows_updated: f64,
    /// Logical page accesses that hit the buffer pool.
    pub bp_hits: f64,
    /// Logical page accesses that missed the buffer pool.
    pub bp_misses: f64,
    /// Buffer-pool misses absorbed by the OS file cache (PostgreSQL-style
    /// configurations only).
    pub os_cache_hits: f64,
    /// Pages physically read from disk.
    pub physical_read_pages: f64,
    /// Pages physically written (write-back + dirty evictions).
    pub physical_write_pages: f64,
    /// Log bytes written.
    pub log_bytes: f64,
    /// Log forces (fsyncs).
    pub log_forces: f64,
    /// Bytes of new data inserted.
    pub insert_bytes: f64,
    /// Checkpoints completed.
    pub checkpoints: f64,
    /// CPU consumed, in standardized core-seconds.
    pub cpu_core_secs: f64,
    /// Sum of (latency × txns) for averaging.
    pub latency_weighted_secs: f64,
}

impl InstanceStats {
    /// Buffer-pool miss ratio over the lifetime.
    pub fn bp_miss_ratio(&self) -> f64 {
        let total = self.bp_hits + self.bp_misses;
        if total == 0.0 {
            0.0
        } else {
            self.bp_misses / total
        }
    }

    /// Mean transaction latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.committed_txns == 0.0 {
            0.0
        } else {
            self.latency_weighted_secs / self.committed_txns
        }
    }

    /// Counter-wise difference `self - earlier` (for interval monitoring).
    pub fn delta(&self, earlier: &InstanceStats) -> InstanceStats {
        InstanceStats {
            sim_secs: self.sim_secs - earlier.sim_secs,
            committed_txns: self.committed_txns - earlier.committed_txns,
            rows_read: self.rows_read - earlier.rows_read,
            rows_updated: self.rows_updated - earlier.rows_updated,
            bp_hits: self.bp_hits - earlier.bp_hits,
            bp_misses: self.bp_misses - earlier.bp_misses,
            os_cache_hits: self.os_cache_hits - earlier.os_cache_hits,
            physical_read_pages: self.physical_read_pages - earlier.physical_read_pages,
            physical_write_pages: self.physical_write_pages - earlier.physical_write_pages,
            log_bytes: self.log_bytes - earlier.log_bytes,
            log_forces: self.log_forces - earlier.log_forces,
            insert_bytes: self.insert_bytes - earlier.insert_bytes,
            checkpoints: self.checkpoints - earlier.checkpoints,
            cpu_core_secs: self.cpu_core_secs - earlier.cpu_core_secs,
            latency_weighted_secs: self.latency_weighted_secs - earlier.latency_weighted_secs,
        }
    }

    /// Physical reads per second over a delta interval.
    pub fn read_pages_per_sec(&self) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            self.physical_read_pages / self.sim_secs
        }
    }

    /// Throughput in committed transactions per second over a delta
    /// interval.
    pub fn txns_per_sec(&self) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            self.committed_txns / self.sim_secs
        }
    }

    /// Disk bytes written per second (log + pages) over a delta interval,
    /// given the page size in bytes.
    pub fn write_bytes_per_sec(&self, page_bytes: f64) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            (self.log_bytes + self.physical_write_pages * page_bytes) / self.sim_secs
        }
    }

    /// Average CPU load in standardized cores over a delta interval.
    pub fn cpu_cores_avg(&self) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            self.cpu_core_secs / self.sim_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_zero_when_no_traffic() {
        assert_eq!(InstanceStats::default().bp_miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computed() {
        let s = InstanceStats {
            bp_hits: 75.0,
            bp_misses: 25.0,
            ..Default::default()
        };
        assert!((s.bp_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_every_counter() {
        let a = InstanceStats {
            sim_secs: 10.0,
            committed_txns: 100.0,
            physical_read_pages: 50.0,
            ..Default::default()
        };
        let b = InstanceStats {
            sim_secs: 4.0,
            committed_txns: 40.0,
            physical_read_pages: 20.0,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.sim_secs, 6.0);
        assert_eq!(d.committed_txns, 60.0);
        assert_eq!(d.physical_read_pages, 30.0);
        assert!((d.txns_per_sec() - 10.0).abs() < 1e-12);
        assert!((d.read_pages_per_sec() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_for_zero_interval() {
        let s = InstanceStats::default();
        assert_eq!(s.txns_per_sec(), 0.0);
        assert_eq!(s.read_pages_per_sec(), 0.0);
        assert_eq!(s.write_bytes_per_sec(16384.0), 0.0);
        assert_eq!(s.cpu_cores_avg(), 0.0);
    }

    #[test]
    fn mean_latency_weighted_by_txns() {
        let s = InstanceStats {
            committed_txns: 10.0,
            latency_weighted_secs: 0.5,
            ..Default::default()
        };
        assert!((s.mean_latency_secs() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn write_rate_includes_log_and_pages() {
        let s = InstanceStats {
            sim_secs: 2.0,
            log_bytes: 1000.0,
            physical_write_pages: 2.0,
            ..Default::default()
        };
        assert!((s.write_bytes_per_sec(500.0) - 1000.0).abs() < 1e-12);
    }
}
