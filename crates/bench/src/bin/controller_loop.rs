//! Online-controller loop benchmark: steady-state tick latency and
//! re-solve latency across the drift scenarios, plus the warm-vs-cold
//! migration ablation. Emits a JSON baseline on stdout (recorded as
//! `BENCH_controller.json`) so future PRs have a perf trajectory.
//!
//! ```text
//! cargo run --release -p kairos-bench --bin controller_loop > BENCH_controller.json
//! KAIROS_QUICK=1 cargo run --release -p kairos-bench --bin controller_loop
//! ```

use kairos_bench::quick;
use kairos_controller::{
    run_scenario, scenario_churn, scenario_diurnal_shift, scenario_flash_crowd,
    scenario_stationary, ControllerConfig, Scenario, ScenarioReport,
};

fn config() -> ControllerConfig {
    ControllerConfig {
        horizon: 24,
        check_every: 6,
        cooldown_ticks: 24,
        ..ControllerConfig::default()
    }
}

fn scenario_json(r: &ScenarioReport) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"ticks\":{},\"workload_samples\":\"monitoring 300s windows\",",
            "\"resolves\":{},\"total_moves\":{},\"max_churn\":{:.4},",
            "\"forced_steps\":{},\"bytes_copied\":{:.0},",
            "\"initial_machines\":{},\"final_machines\":{},\"final_feasible\":{},",
            "\"steady_tick_usecs\":{:.2},\"mean_resolve_ms\":{:.3},\"resolve_count\":{}}}"
        ),
        r.label,
        r.ticks,
        r.resolves,
        r.total_moves,
        r.max_churn(),
        r.forced_steps,
        r.bytes_copied,
        r.initial_machines,
        r.final_machines,
        r.final_feasible,
        r.steady_tick_secs * 1e6,
        r.mean_resolve_secs() * 1e3,
        r.resolve_secs.len(),
    )
}

fn main() {
    let (n, ticks) = if quick() { (8, 120) } else { (12, 240) };
    let cfg = config();

    let scenarios: [fn(usize, u64) -> Scenario; 4] = [
        scenario_stationary,
        scenario_diurnal_shift,
        scenario_flash_crowd,
        scenario_churn,
    ];
    let reports: Vec<ScenarioReport> = scenarios
        .iter()
        .map(|f| run_scenario(&cfg, f(n, ticks)))
        .collect();

    // Ablation: flash crowd with the baseline-blind cold solver.
    let cold_cfg = ControllerConfig {
        cold_resolves: true,
        ..cfg
    };
    let cold = run_scenario(&cold_cfg, scenario_flash_crowd(n, ticks));
    let warm = reports
        .iter()
        .find(|r| r.label == "flash-crowd")
        .expect("flash crowd ran");

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"controller_loop\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"workloads\":{n},\"ticks\":{ticks},\"horizon\":{},\"check_every\":{},\"cooldown_ticks\":{},\"cost_per_move\":{},\"quick\":{}}},\n",
        cfg.horizon,
        cfg.check_every,
        cfg.cooldown_ticks,
        cfg.cost_per_move,
        quick()
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&scenario_json(r));
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"migration_ablation\": {{\"warm_moves\":{},\"cold_moves\":{},\"warm_max_churn\":{:.4},\"cold_max_churn\":{:.4},\"warm_mean_resolve_ms\":{:.3},\"cold_mean_resolve_ms\":{:.3}}}\n",
        warm.total_moves,
        cold.total_moves,
        warm.max_churn(),
        cold.max_churn(),
        warm.mean_resolve_secs() * 1e3,
        cold.mean_resolve_secs() * 1e3,
    ));
    out.push_str("}\n");
    print!("{out}");
}
