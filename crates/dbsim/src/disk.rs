//! Disk device model.
//!
//! Serves three demand classes per tick, mirroring how a DBMS actually
//! drives a single spindle (§4.1 of the paper):
//!
//! * **log writes** — sequential bytes plus one seek-ish settle per group
//!   commit *force*. One consolidated DBMS produces one log stream; the
//!   DB-in-VM baseline produces many independent streams whose forces don't
//!   batch (§7.4's first bullet).
//! * **foreground reads** — random page reads (buffer pool misses). These
//!   block transactions.
//! * **background write-back** — dirty pages in sorted order; the elevator
//!   effect makes effective IOPS grow with batch depth
//!   ([`kairos_types::DiskSpec::sorted_iops`]).
//!
//! Foreground demand (log + reads) is served first; write-back consumes
//! what is left. The returned fractions feed admission control in the
//! engine, which is what caps throughput and inflates latency when the
//! disk saturates.

use kairos_types::DiskSpec;

/// Per-tick demand presented to the device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskTickDemand {
    /// Sequential log bytes to persist this tick.
    pub log_bytes: f64,
    /// Number of distinct log forces (group-commit flushes). Each costs a
    /// device settle in addition to transfer time.
    pub log_forces: f64,
    /// Random foreground page reads.
    pub read_pages: f64,
    /// Sorted background page writes requested by the flusher.
    pub writeback_pages: f64,
    /// Average sorted-batch depth of the write-back requests (for elevator
    /// gain).
    pub writeback_batch: f64,
}

/// What the device actually served in a tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskTickServed {
    /// Fraction of foreground demand (log + reads) served, in `[0, 1]`.
    pub foreground_fraction: f64,
    /// Write-back pages actually written.
    pub writeback_pages: f64,
    /// Device utilization this tick, in `[0, 1]`.
    pub utilization: f64,
    /// Bytes written (log + write-back) this tick.
    pub bytes_written: f64,
    /// Bytes read this tick.
    pub bytes_read: f64,
    /// Mean service time for one random read at this utilization, seconds —
    /// a queueing-flavoured latency contribution.
    pub read_service_secs: f64,
}

/// The device: pure capacity model; all state is per-tick.
#[derive(Debug, Clone)]
pub struct DiskDevice {
    spec: DiskSpec,
    /// Cumulative counters (iostat equivalents).
    total_bytes_written: f64,
    total_bytes_read: f64,
    total_pages_written: f64,
    total_pages_read: f64,
    busy_secs: f64,
    elapsed_secs: f64,
}

impl DiskDevice {
    pub fn new(spec: DiskSpec) -> DiskDevice {
        DiskDevice {
            spec,
            total_bytes_written: 0.0,
            total_bytes_read: 0.0,
            total_pages_written: 0.0,
            total_pages_read: 0.0,
            busy_secs: 0.0,
            elapsed_secs: 0.0,
        }
    }

    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Seconds to serve a foreground bundle of `log_bytes`/`log_forces`/
    /// `read_pages` at full device attention.
    fn foreground_secs(&self, log_bytes: f64, log_forces: f64, read_pages: f64) -> f64 {
        log_bytes / self.spec.seq_bytes_per_sec
            + log_forces * self.spec.force_settle_secs
            + read_pages / self.spec.random_iops
    }

    /// Serve one tick of length `dt` seconds.
    pub fn serve(&mut self, dt: f64, demand: DiskTickDemand) -> DiskTickServed {
        assert!(dt > 0.0, "tick length must be positive");
        let fg_secs = self.foreground_secs(demand.log_bytes, demand.log_forces, demand.read_pages);

        let fg_fraction = if fg_secs <= dt || fg_secs == 0.0 {
            1.0
        } else {
            dt / fg_secs
        };
        let fg_used = fg_secs.min(dt);

        let remaining = dt - fg_used;
        let sorted_iops = self.spec.sorted_iops(demand.writeback_batch);
        let wb_possible = remaining * sorted_iops;
        let wb_served = demand.writeback_pages.min(wb_possible);
        let wb_used = if sorted_iops > 0.0 {
            wb_served / sorted_iops
        } else {
            0.0
        };

        let used = fg_used + wb_used;
        let utilization = (used / dt).clamp(0.0, 1.0);

        let page_bytes = self.spec.page_size.as_f64();
        let bytes_written = demand.log_bytes * fg_fraction + wb_served * page_bytes;
        let bytes_read = demand.read_pages * fg_fraction * page_bytes;

        self.total_bytes_written += bytes_written;
        self.total_bytes_read += bytes_read;
        self.total_pages_written += wb_served;
        self.total_pages_read += demand.read_pages * fg_fraction;
        self.busy_secs += used;
        self.elapsed_secs += dt;

        // M/M/1-flavoured response time for a random read: service time
        // inflated by 1/(1-rho), capped to keep the model finite at
        // saturation.
        let service = 1.0 / self.spec.random_iops;
        let rho = utilization.min(0.98);
        let read_service_secs = service / (1.0 - rho);

        DiskTickServed {
            foreground_fraction: fg_fraction,
            writeback_pages: wb_served,
            utilization,
            bytes_written,
            bytes_read,
            read_service_secs,
        }
    }

    /// Cumulative bytes written (iostat `wkB/s` integral).
    pub fn total_bytes_written(&self) -> f64 {
        self.total_bytes_written
    }

    pub fn total_bytes_read(&self) -> f64 {
        self.total_bytes_read
    }

    pub fn total_pages_written(&self) -> f64 {
        self.total_pages_written
    }

    pub fn total_pages_read(&self) -> f64 {
        self.total_pages_read
    }

    /// Lifetime average utilization.
    pub fn average_utilization(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.busy_secs / self.elapsed_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kairos_types::Bytes;

    fn dev() -> DiskDevice {
        DiskDevice::new(DiskSpec::sata_7200rpm())
    }

    #[test]
    fn idle_tick_serves_everything() {
        let mut d = dev();
        let served = d.serve(
            1.0,
            DiskTickDemand {
                log_bytes: 1024.0 * 1024.0,
                log_forces: 10.0,
                read_pages: 5.0,
                writeback_pages: 20.0,
                writeback_batch: 20.0,
            },
        );
        assert_eq!(served.foreground_fraction, 1.0);
        assert_eq!(served.writeback_pages, 20.0);
        assert!(served.utilization < 0.5);
    }

    #[test]
    fn foreground_overload_scales_fraction() {
        let mut d = dev();
        // 10k random reads in one second vastly exceeds 120 IOPS.
        let served = d.serve(
            1.0,
            DiskTickDemand {
                read_pages: 10_000.0,
                ..Default::default()
            },
        );
        assert!(served.foreground_fraction < 0.05);
        assert!((served.utilization - 1.0).abs() < 1e-9);
        assert_eq!(served.writeback_pages, 0.0);
    }

    #[test]
    fn background_yields_to_foreground() {
        let mut d = dev();
        let quiet = d.serve(
            1.0,
            DiskTickDemand {
                writeback_pages: 100_000.0,
                writeback_batch: 512.0,
                ..Default::default()
            },
        );
        let mut d2 = dev();
        let busy = d2.serve(
            1.0,
            DiskTickDemand {
                read_pages: 60.0, // ~half the device
                writeback_pages: 100_000.0,
                writeback_batch: 512.0,
                ..Default::default()
            },
        );
        assert!(busy.writeback_pages < quiet.writeback_pages);
        assert!(busy.foreground_fraction == 1.0);
    }

    #[test]
    fn sorted_writeback_beats_random_rate() {
        let mut d = dev();
        let spec = *d.spec();
        let served = d.serve(
            1.0,
            DiskTickDemand {
                writeback_pages: 1e9,
                writeback_batch: 512.0,
                ..Default::default()
            },
        );
        assert!(served.writeback_pages > spec.random_iops * 2.0);
        assert!(served.writeback_pages <= spec.random_iops * spec.elevator_gain + 1e-6);
    }

    #[test]
    fn log_forces_cost_time() {
        let mut a = dev();
        let few = a.serve(
            1.0,
            DiskTickDemand {
                log_bytes: 1e6,
                log_forces: 5.0,
                ..Default::default()
            },
        );
        let mut b = dev();
        let many = b.serve(
            1.0,
            DiskTickDemand {
                log_bytes: 1e6,
                log_forces: 500.0,
                ..Default::default()
            },
        );
        assert!(many.utilization > few.utilization * 2.0);
    }

    #[test]
    fn read_latency_grows_with_utilization() {
        let mut d = dev();
        let quiet = d.serve(
            1.0,
            DiskTickDemand {
                read_pages: 1.0,
                ..Default::default()
            },
        );
        let busy = d.serve(
            1.0,
            DiskTickDemand {
                read_pages: 115.0,
                ..Default::default()
            },
        );
        assert!(busy.read_service_secs > quiet.read_service_secs * 5.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = dev();
        let page = Bytes::kib(16).as_f64();
        d.serve(
            1.0,
            DiskTickDemand {
                read_pages: 10.0,
                writeback_pages: 4.0,
                writeback_batch: 4.0,
                log_bytes: 1000.0,
                log_forces: 1.0,
            },
        );
        assert!((d.total_bytes_read() - 10.0 * page).abs() < 1e-6);
        assert!((d.total_bytes_written() - (1000.0 + 4.0 * page)).abs() < 1e-6);
        assert!(d.average_utilization() > 0.0);
    }

    #[test]
    fn zero_demand_is_free() {
        let mut d = dev();
        let served = d.serve(0.1, DiskTickDemand::default());
        assert_eq!(served.utilization, 0.0);
        assert_eq!(served.foreground_fraction, 1.0);
    }
}
