//! Quickstart: consolidate a small fleet of monitored database servers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the "consolidation advisor" loop in its smallest form: build
//! workload profiles (here: hand-written; in production they come from
//! the resource monitor), ask the engine for a plan, and read the
//! placement.

use kairos::core::prelude::*;

fn main() {
    // Ten over-provisioned servers: modest CPU, a few GB of working set,
    // moderate write rates — the shape the paper's fleet analysis found
    // everywhere (average utilization under 4%).
    let profiles: Vec<WorkloadProfile> = (0..10)
        .map(|i| {
            WorkloadProfile::flat(
                format!("db-server-{i:02}"),
                300.0,                          // 5-minute monitoring windows
                288,                            // one day
                0.25 + 0.1 * (i % 4) as f64,    // standardized cores
                Bytes::gib(2 + (i % 3) as u64), // gauged RAM need
                DiskDemand::new(Bytes::gib(1), Rate(150.0 + 40.0 * i as f64)),
            )
        })
        .collect();

    // Consolidate onto the paper's 12-core / 96 GB target class with 5%
    // headroom.
    let engine = ConsolidationEngine::builder()
        .target(TargetMachine::paper_target())
        .headroom(0.95)
        .build();

    let plan = engine.consolidate(&profiles).expect("plan is feasible");

    println!(
        "{} workloads -> {} machines ({:.1}:1 consolidation)",
        profiles.len(),
        plan.machines_used(),
        plan.consolidation_ratio()
    );
    for machine in 0..plan.machines_used() {
        let tenants: Vec<String> = plan
            .placements
            .iter()
            .filter(|p| p.machine == machine)
            .map(|p| p.workload.clone())
            .collect();
        println!("  machine {}: {}", machine, tenants.join(", "));
    }
    println!(
        "objective {:.3}, feasible: {}",
        plan.report.evaluation.objective, plan.report.evaluation.feasible
    );
    println!(
        "fractional lower bound would need {} machines",
        engine.fractional_bound(&profiles).unwrap()
    );
}
