//! # kairos-workloads — benchmark workload generators
//!
//! The three workload families of §7.1, generating [`kairos_dbsim::OpBatch`]
//! streams against the simulated DBMS:
//!
//! * [`tpcc::TpccWorkload`] — a TPC-C-like OLTP mix scaled by warehouse
//!   count (the paper's primary controlled workload and the basis of its
//!   disk profiling tool);
//! * [`wikipedia::WikipediaWorkload`] — a Wikipedia-like read-mostly mix
//!   (92 % reads / 8 % writes, heavy-tailed article sizes);
//! * [`synthetic::SyntheticWorkload`] — the fully-controllable
//!   micro-benchmark (explicit working set, select/update rates, CPU cost,
//!   and a time-varying [`patterns::RatePattern`]).
//!
//! A [`driver::Driver`] binds workloads to DBMS instances on a
//! [`kairos_dbsim::Host`] and runs the simulation, collecting per-workload
//! throughput and latency — the measurements behind Tables 1–2 and
//! Figures 10–11.

pub mod driver;
pub mod patterns;
pub mod profile_load;
pub mod synthetic;
pub mod tpcc;
pub mod wikipedia;

pub use driver::{Binding, Driver, WorkloadRunStats};
pub use patterns::RatePattern;
pub use profile_load::ProfileLoad;
pub use synthetic::{synthetic_suite, SyntheticSpec, SyntheticWorkload};
pub use tpcc::{TpccTxnProfile, TpccWorkload};
pub use wikipedia::WikipediaWorkload;

use kairos_dbsim::{DatabaseId, DbmsInstance, OpBatch, TableId};
use kairos_types::Bytes;

/// Everything a workload needs to address its objects inside an instance.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadHandle {
    pub db: DatabaseId,
    /// Main data table (reads + updates target its working-set prefix).
    pub table: TableId,
    /// Append-only table for inserts (TPC-C history, Wikipedia revisions).
    pub append_table: Option<TableId>,
    /// Working-set size in pages of the main table.
    pub ws_pages: u64,
}

/// A workload generator: installs its schema into a [`DbmsInstance`] and
/// produces one [`OpBatch`] per tick.
///
/// `Send` is a supertrait so whole observation sessions — and the
/// telemetry sources wrapping them — can migrate across the sharded
/// control plane's tick worker threads (see `kairos-controller`'s
/// `TelemetrySource`).
pub trait Workload: Send {
    /// Short, stable name for reports.
    fn name(&self) -> &str;

    /// Create database/tables, load data, and warm the buffer pool.
    fn install(&mut self, inst: &mut DbmsInstance) -> WorkloadHandle;

    /// Offered work for the tick `[now, now+dt)`.
    fn batch(&mut self, handle: &WorkloadHandle, now: f64, dt: f64) -> OpBatch;

    /// Nominal working-set size (what gauging should discover).
    fn working_set(&self) -> Bytes;

    /// Time-averaged offered rate in transactions/second.
    fn mean_rate(&self) -> f64;
}

/// Fractional transaction carry: converts a continuous rate into per-tick
/// transaction counts without losing sub-tick fractions.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnCarry {
    carry: f64,
}

impl TxnCarry {
    /// Whole transactions to issue this tick for `rate` tps over `dt`.
    pub fn take(&mut self, rate: f64, dt: f64) -> f64 {
        let exact = rate * dt + self.carry;
        let whole = exact.floor();
        self.carry = exact - whole;
        whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_carry_conserves_rate() {
        let mut c = TxnCarry::default();
        let mut total = 0.0;
        for _ in 0..1000 {
            total += c.take(3.7, 0.1);
        }
        // 3.7 tps * 100 s = 370 txns.
        assert!((total - 370.0).abs() <= 1.0, "got {total}");
    }

    #[test]
    fn txn_carry_handles_sub_tick_rates() {
        let mut c = TxnCarry::default();
        let mut total = 0.0;
        for _ in 0..100 {
            total += c.take(0.05, 0.1); // one txn per 200 s
        }
        assert!(total <= 1.0);
    }
}
