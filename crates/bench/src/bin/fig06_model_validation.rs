//! Figure 6 — validating the combined resource models on the 5-workload
//! synthetic micro-benchmark: CDFs of combined CPU and disk I/O and RAM
//! totals, comparing
//! * `real`      — measured on the actually co-located system,
//! * `estimate`  — Kairos' combined-load models (gauged RAM, CPU minus
//!   per-instance overhead, disk via the fitted model),
//! * `baseline`  — straight sums of the standalone OS statistics.
//!
//! Expected shape: the estimate hugs the real curve at the loaded end;
//! the baseline grossly overestimates RAM (~the full pools) and disk
//! (idle-flushing inflates standalone write rates).

use kairos_bench::{fit_wide_disk_model, mbps, print_table, quick, section};
use kairos_core::{CombinedLoadEstimator, Kairos, PipelineConfig};
use kairos_dbsim::{DbmsConfig, DbmsInstance, Host};
use kairos_monitor::ResourceMonitor;
use kairos_types::{Bytes, MachineSpec, TimeSeries};
use kairos_workloads::{synthetic_suite, Driver, Workload};
use std::sync::Arc;

fn main() {
    let intensity = 0.5;
    let observe = if quick() { 40.0 } else { 120.0 };
    let interval = 5.0;

    section("Figure 6: observing 5 synthetic workloads in isolation (with gauging)");
    let pipeline = Kairos::new(PipelineConfig {
        source_buffer_pool: Bytes::gib(4),
        observe_secs: observe,
        warmup_secs: 15.0,
        monitor_interval_secs: interval,
        gauge: true,
        ..Default::default()
    });
    let observations: Vec<_> = synthetic_suite(intensity)
        .into_iter()
        .map(|w| {
            let name = w.name().to_string();
            let obs = pipeline.observe(Box::new(w));
            println!(
                "  {name}: {:.0} tps, gauged ws {}, OS view {}",
                obs.standalone_tps,
                obs.gauged_working_set
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".into()),
                obs.os_ram_view
            );
            obs
        })
        .collect();

    section("fitting the disk model");
    let model = Arc::new(fit_wide_disk_model());

    // Kairos estimate.
    let estimator = CombinedLoadEstimator::with_model(model);
    let profiles: Vec<_> = observations.iter().map(|o| o.profile.clone()).collect();
    let estimate = estimator.combine(&profiles);

    // Baseline: straight sums of standalone observations.
    let observed_writes: Vec<_> = observations
        .iter()
        .map(|o| o.observed_write_bytes.clone())
        .collect();
    let baseline_profiles: Vec<_> = observations
        .iter()
        .map(|o| {
            // Baseline RAM = OS view, not the gauged working set.
            let mut p = o.profile.clone();
            p.ram_bytes =
                TimeSeries::constant(p.interval_secs(), o.os_ram_view.as_f64(), p.windows());
            p
        })
        .collect();
    let baseline = CombinedLoadEstimator::baseline_sum(&baseline_profiles, &observed_writes);

    // Real: co-locate all five inside one DBMS and measure.
    section("co-locating all 5 workloads for ground truth");
    let mut host = Host::new(MachineSpec::server1());
    host.add_instance(DbmsInstance::new(DbmsConfig::mysql(Bytes::gib(24))));
    let mut driver = Driver::new();
    let mut true_ws_total = 0.0;
    for w in synthetic_suite(intensity) {
        true_ws_total += w.working_set().as_f64();
        driver.bind(&mut host, 0, Box::new(w));
    }
    driver.warmup(&mut host, 20.0);
    let mut monitor = ResourceMonitor::new(interval, host.instance(0));
    let windows = (observe / interval) as usize;
    for _ in 0..windows {
        driver.run(&mut host, interval);
        monitor.sample(host.instance(0));
    }
    let real_cpu = TimeSeries::new(
        interval,
        monitor.samples().iter().map(|s| s.cpu_cores).collect(),
    );
    let real_writes = TimeSeries::new(
        interval,
        monitor
            .samples()
            .iter()
            .map(|s| s.write_bytes_per_sec)
            .collect(),
    );

    section("CPU CDF (standardized cores): real vs estimate vs baseline");
    let mut rows = Vec::new();
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
        rows.push(vec![
            format!("p{p:.0}"),
            format!("{:.3}", real_cpu.percentile(p)),
            format!("{:.3}", estimate.cpu_cores.percentile(p)),
            format!("{:.3}", baseline.cpu_cores.percentile(p)),
        ]);
    }
    print_table(&["pct", "real", "estimate", "baseline"], &rows);
    let cpu_err = |s: &TimeSeries| (s.mean() - real_cpu.mean()).abs() / real_cpu.mean() * 100.0;
    println!(
        "mean CPU error: estimate {:.1}% vs baseline {:.1}% (paper: ~6% vs >15%)",
        cpu_err(&estimate.cpu_cores),
        cpu_err(&baseline.cpu_cores)
    );

    section("disk write CDF (MB/s): real vs estimate vs baseline");
    let mut rows = Vec::new();
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
        rows.push(vec![
            format!("p{p:.0}"),
            mbps(real_writes.percentile(p)),
            mbps(estimate.disk_write_bytes.percentile(p)),
            mbps(baseline.disk_write_bytes.percentile(p)),
        ]);
    }
    print_table(&["pct", "real", "estimate", "baseline"], &rows);
    let high_err = |s: &TimeSeries| (s.percentile(90.0) - real_writes.percentile(90.0)).abs();
    println!(
        "p90 disk error: estimate {} MB/s vs baseline {} MB/s (paper: 0.8 vs 26 MB/s)",
        mbps(high_err(&estimate.disk_write_bytes)),
        mbps(high_err(&baseline.disk_write_bytes))
    );

    section("RAM totals");
    let rows = vec![
        vec![
            "actual working sets".to_string(),
            format!("{:.2} GiB", true_ws_total / 1e9 * 1e9 / (1024.0f64.powi(3))),
        ],
        vec![
            "kairos estimate (gauged)".to_string(),
            format!(
                "{:.2} GiB",
                estimate.ram_bytes.values()[0] / 1024.0f64.powi(3)
            ),
        ],
        vec![
            "baseline (OS view sum)".to_string(),
            format!(
                "{:.2} GiB",
                baseline.ram_bytes.values()[0] / 1024.0f64.powi(3)
            ),
        ],
    ];
    print_table(&["series", "value"], &rows);
    println!(
        "baseline overestimates RAM by {:.1}x (paper: ~9x for this experiment)",
        baseline.ram_bytes.values()[0] / estimate.ram_bytes.values()[0]
    );
}
