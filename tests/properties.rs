//! Property-based tests on the system's core invariants.
//!
//! Originally written against `proptest`; the build environment is offline,
//! so the same properties now run on an in-repo harness: each case is
//! generated from a seeded [`SplitMix64`] stream, which keeps the tests
//! fully deterministic while still sweeping the input space. Failures
//! report the offending case index/seed for replay.

use kairos::dbsim::{ClockCache, PageId};
use kairos::diskmodel::{DiskModel, DiskPoint, DiskProfile};
use kairos::solver::{
    evaluate, fractional_lower_bound, greedy_pack, polish, solve, Assignment, ConsolidationProblem,
    LinearDiskCombiner, SolverConfig, TargetMachine, WorkloadSpec,
};
use kairos::types::{Bytes, DiskDemand, Rate, SplitMix64, TimeSeries};
use std::sync::Arc;

/// A random consolidation problem: 2–11 workloads, 1–5 windows.
fn random_problem(rng: &mut SplitMix64) -> ConsolidationProblem {
    let n = 2 + rng.next_range(10) as usize;
    let windows = 1 + rng.next_range(5) as usize;
    let workloads: Vec<WorkloadSpec> = (0..n)
        .map(|i| {
            let cpu = rng.next_in(0.1, 5.0);
            let ram = rng.next_in(1e9, 30e9);
            let ws = ram * 0.3;
            let rate = rng.next_in(10.0, 2_000.0);
            WorkloadSpec::flat(format!("w{i}"), windows, cpu, ram, ws, rate)
        })
        .collect();
    ConsolidationProblem::new(
        workloads,
        TargetMachine::paper_target(),
        n,
        Arc::new(LinearDiskCombiner::default()),
    )
}

/// Any plan the solver returns satisfies every constraint, and never beats
/// the fractional lower bound.
#[test]
fn solver_output_is_feasible_and_bounded() {
    let mut rng = SplitMix64::new(0xFEA51B1E);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        let cfg = SolverConfig {
            probe_evals: 300,
            final_evals: 800,
            polish_rounds: 20,
            ..Default::default()
        };
        if let Ok(report) = solve(&problem, &cfg) {
            assert!(report.evaluation.feasible, "case {case}");
            let again = evaluate(&problem, &report.assignment);
            assert!(again.feasible, "case {case}: replay must stay feasible");
            assert!(
                report.assignment.machines_used() >= fractional_lower_bound(&problem),
                "case {case}: integer solution beat the fractional bound"
            );
            assert_eq!(
                report.assignment.machine_of.len(),
                problem.slots().len(),
                "case {case}"
            );
        }
    }
}

/// Greedy solutions, when produced, are feasible.
#[test]
fn greedy_output_is_feasible() {
    let mut rng = SplitMix64::new(0x6EEED1);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        if let Some(g) = greedy_pack(&problem) {
            assert!(
                evaluate(&problem, &g.assignment).feasible,
                "case {case}: greedy returned an infeasible packing"
            );
        }
    }
}

/// Local search never worsens the objective.
#[test]
fn polish_never_worsens() {
    let mut rng = SplitMix64::new(0x0115);
    for case in 0..24 {
        let problem = random_problem(&mut rng);
        let slots = problem.slots().len();
        let k = problem.max_machines;
        let start = Assignment::new(
            (0..slots)
                .map(|_| rng.next_range(k as u64) as usize)
                .collect(),
        );
        let before = evaluate(&problem, &start).objective;
        let report = polish(&problem, &start, k, 25);
        assert!(
            report.evaluation.objective <= before + 1e-9,
            "case {case}: polish worsened {before} -> {}",
            report.evaluation.objective
        );
    }
}

/// The exponential objective prefers fewer machines whenever both
/// assignments are feasible.
#[test]
fn fewer_machines_win_when_feasible() {
    for n in 2usize..8 {
        let workloads: Vec<WorkloadSpec> = (0..n)
            .map(|i| WorkloadSpec::flat(format!("w{i}"), 2, 1.0, 2e9, 5e8, 50.0))
            .collect();
        let problem = ConsolidationProblem::new(
            workloads,
            TargetMachine::paper_target(),
            n,
            Arc::new(LinearDiskCombiner::default()),
        );
        let packed = evaluate(&problem, &Assignment::new(vec![0; n]));
        let spread = evaluate(&problem, &Assignment::new((0..n).collect()));
        if packed.feasible && spread.feasible {
            assert!(packed.objective < spread.objective, "n = {n}");
        }
    }
}

/// Time-series downsampling with AVG conserves the mean on exact bucket
/// boundaries.
#[test]
fn downsample_avg_conserves_mean() {
    let mut rng = SplitMix64::new(0xD0_5A);
    for case in 0..48 {
        let len = 4 + rng.next_range(60) as usize;
        let factor = 1 + rng.next_range(7) as usize;
        let n = (len / factor) * factor;
        if n == 0 {
            continue;
        }
        let vals: Vec<f64> = (0..n).map(|_| rng.next_in(-1e6, 1e6)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let down = ts.downsample_avg(factor);
        assert!(
            (down.mean() - ts.mean()).abs() < 1e-6,
            "case {case}: mean drifted {} -> {}",
            ts.mean(),
            down.mean()
        );
    }
}

/// MAX consolidation dominates AVG pointwise.
#[test]
fn downsample_max_dominates_avg() {
    let mut rng = SplitMix64::new(0x3A_11);
    for case in 0..48 {
        let len = 4 + rng.next_range(60) as usize;
        let factor = 1 + rng.next_range(7) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.next_in(0.0, 1e6)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let avg = ts.downsample_avg(factor);
        let max = ts.downsample_max(factor);
        for (a, m) in avg.values().iter().zip(max.values()) {
            assert!(m >= a, "case {case}: max {m} below avg {a}");
        }
    }
}

/// Percentiles are monotone in p and bracketed by min/max.
#[test]
fn percentiles_are_monotone() {
    let mut rng = SplitMix64::new(0x9E9C);
    for case in 0..48 {
        let len = 1 + rng.next_range(127) as usize;
        let vals: Vec<f64> = (0..len).map(|_| rng.next_in(-1e9, 1e9)).collect();
        let ts = TimeSeries::new(1.0, vals);
        let p1 = rng.next_in(0.0, 100.0);
        let p2 = rng.next_in(0.0, 100.0);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        assert!(ts.percentile(lo) <= ts.percentile(hi) + 1e-9, "case {case}");
        assert!(ts.percentile(0.0) >= ts.min() - 1e-9, "case {case}");
        assert!(ts.percentile(100.0) <= ts.max() + 1e-9, "case {case}");
    }
}

mod buffer_pool {
    use super::*;

    /// The cache never exceeds capacity, never loses dirty pages silently
    /// (dirty_count matches ground truth), and hits+misses equals the
    /// access count.
    #[test]
    fn clock_cache_invariants() {
        let mut rng = SplitMix64::new(0xCAC4E);
        for case in 0..32 {
            let capacity = 1 + rng.next_range(63) as usize;
            let ops = 1 + rng.next_range(255) as usize;
            let mut cache = ClockCache::new(capacity);
            let mut accesses = 0u64;
            for _ in 0..ops {
                let page = rng.next_range(128);
                let dirty = rng.next_range(2) == 1;
                cache.touch(PageId(page), dirty);
                accesses += 1;
                assert!(cache.resident() <= capacity, "case {case}");
                assert!(cache.dirty_count() <= cache.resident(), "case {case}");
            }
            let stats = cache.stats();
            assert_eq!(stats.hits + stats.misses, accesses, "case {case}");
        }
    }

    /// Flushing each dirty batch eventually cleans everything, and batches
    /// come out sorted.
    #[test]
    fn dirty_batches_are_sorted_and_drain() {
        let mut rng = SplitMix64::new(0xF1054);
        for case in 0..32 {
            let n = 1 + rng.next_range(127) as usize;
            let pages: Vec<u64> = (0..n).map(|_| rng.next_range(512)).collect();
            let mut cache = ClockCache::new(1024);
            for &p in &pages {
                cache.touch(PageId(p), true);
            }
            let mut total = 0;
            loop {
                let batch = cache.take_dirty_batch(7);
                if batch.is_empty() {
                    break;
                }
                for w in batch.windows(2) {
                    assert!(w[0] < w[1], "case {case}: batch not sorted");
                }
                total += batch.len();
            }
            let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
            assert_eq!(total, distinct.len(), "case {case}");
            assert_eq!(cache.dirty_count(), 0, "case {case}");
        }
    }
}

mod disk_model {
    use super::*;

    fn profile_from_seed(seed: u64) -> DiskProfile {
        let mut rng = SplitMix64::new(seed);
        let a = rng.next_in(150.0, 300.0); // log bytes per row
        let b = rng.next_in(0.0005, 0.003); // ws coupling
        let mut points = Vec::new();
        for i in 1..=5 {
            let ws = i as f64 * 0.6e9;
            for j in 1..=8 {
                let rate = j as f64 * 4_000.0;
                points.push(DiskPoint {
                    ws_bytes: ws,
                    rows_per_sec: rate,
                    write_bytes_per_sec: a * rate + b * ws + rng.next_in(0.0, 1e5),
                    achieved_fraction: 1.0,
                });
            }
        }
        DiskProfile {
            machine: "prop".into(),
            points,
        }
    }

    /// For monotone profiles the fitted model predicts monotonically in
    /// rate and stays within the clamp envelope.
    #[test]
    fn model_predicts_monotone_in_rate() {
        let mut rng = SplitMix64::new(0xD15C);
        for case in 0..16 {
            let seed = rng.next_range(10_000);
            let model = DiskModel::fit(&profile_from_seed(seed)).unwrap();
            let ws = Bytes(1_500_000_000);
            let mut prev = 0.0;
            for j in 1..=6 {
                let v = model.predict_write_bytes(DiskDemand::new(ws, Rate(j as f64 * 5_000.0)));
                assert!(
                    v >= prev - 1e5,
                    "case {case} seed {seed} rate step {j}: {v} < {prev}"
                );
                assert!(v.is_finite() && v >= 0.0, "case {case}");
                prev = v;
            }
        }
    }
}
