//! Checkpointable shard state.
//!
//! [`ShardSnapshot`] is the serializable image of one
//! [`crate::ShardController`]'s loop state — everything that must survive
//! a controller restart for the loop to resume *exactly* where it
//! stopped, rather than re-bootstrapping against a conservative flat
//! envelope:
//!
//! * **telemetry windows** — each tenant's rolling
//!   [`crate::WorkloadTelemetry`] (RRD rings, in-flight consolidation
//!   buckets, and the `samples_seen` counter that phase-aligns the drift
//!   detector);
//! * **warm-solver seed** — the current [`crate::FleetPlacement`] plus
//!   the planned profiles it was solved for (the incumbent every warm
//!   re-solve starts from, and the envelope drift is judged against);
//! * **loop phase** — cadence and cooldown counters
//!   ([`crate::ControllerStats`], last-plan tick, replan backoff, the
//!   pending-membership flag), so checks fire on the same ticks they
//!   would have;
//! * **balancer view** — the staleness-bounded summary cache, so the
//!   fleet balancer sees the same (possibly cached) roll-up after resume;
//! * **physical routing** — the executor's tenant → machine table with
//!   original row counts, so hosts re-materialize page-for-page.
//!
//! What a snapshot deliberately does **not** carry: the shard's
//! configuration and engine (supplied fresh on restore, so tuning can
//! change across restarts) and the live telemetry *sources* (processes
//! can't serialize; re-bind with [`crate::ShardController::attach_source`]).
//!
//! The struct is plain serde data; framing (version, CRC, atomic file
//! replacement) is `kairos-store`'s job, and fleet-level aggregation
//! (`ShardMap`, balancer cooldowns) lives in `kairos-fleet`'s
//! `FleetSnapshot`.

use crate::controller::ControllerStats;
use crate::ingest::WorkloadTelemetry;
use crate::resolver::FleetPlacement;
use crate::shard::ShardSummary;
use kairos_types::WorkloadProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frame version for a *standalone* shard snapshot file — what a
/// network shard node (`kairos-net`) checkpoints on command and restores
/// from on rejoin. The fleet-wide checkpoint embeds [`ShardSnapshot`]s
/// inside its own frame and carries its own version
/// (`kairos_fleet::FLEET_SNAPSHOT_VERSION`).
///
/// v2: the snapshot carries the shard's decision trace (`trace`,
/// `last_objective_bits`) so a restored controller's event stream
/// *continues* the checkpointed history rather than forking it.
///
/// v3: `ShardSummary.aggregate` is a constant-size
/// [`kairos_traces::AggregateSketch`] instead of a full
/// `ShardAggregate`, and the summary cache records the
/// [`kairos_traces::SketchConfig::digest`] it was sketched with so a
/// restore under a different sketch shape invalidates it.
pub const SHARD_SNAPSHOT_VERSION: u32 = 3;

/// Most recent decision events a checkpoint persists per shard (the
/// in-memory ring may be larger; see
/// [`kairos_obs::events::DEFAULT_TRACE_CAP`]). Same rationale as the
/// fleet handoff-log cap: checkpoint size tracks current state, not
/// total history.
pub const TRACE_CHECKPOINT_CAP: usize = 4096;

/// One shard's complete checkpointable state. See the module docs for
/// what each group covers; construct via
/// [`crate::ShardController::snapshot`] and rebuild via
/// [`crate::ShardController::restore`].
#[derive(Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Per-tenant rolling telemetry, in canonical (sorted-name) order.
    pub telemetry: Vec<(String, WorkloadTelemetry)>,
    /// Where every replica currently runs — the warm re-solve seed.
    pub placement: FleetPlacement,
    /// Per workload: the profile its current placement was solved for.
    pub planned: BTreeMap<String, WorkloadProfile>,
    /// Workloads whose planned profile is a conservative flat envelope,
    /// awaiting the scheduled zero-move refresh.
    pub envelope_planned: Vec<String>,
    /// Tick the scheduled profile refresh is due at, if one is pending.
    pub profile_refresh_due: Option<u64>,
    /// Replica counts for tenants running more than one copy.
    pub replicas: BTreeMap<String, u32>,
    /// Named anti-affinity pairs registered on this shard's resolver.
    pub anti_affinity: Vec<(String, String)>,
    pub planned_once: bool,
    /// A membership re-plan was pending when the checkpoint was taken
    /// (e.g. an admitted handoff not yet replanned) — it stays pending.
    pub membership_changed: bool,
    pub last_plan_tick: u64,
    pub replan_backoff_until: u64,
    pub last_resolve_failed: bool,
    /// The staleness-bounded balancer summary cache: `(tick computed at,
    /// sketch-config digest it was sketched with, summary)`. The digest
    /// lets a restore under a different sketch shape treat the cached
    /// copy as stale instead of serving a mis-shaped roll-up.
    pub summary_cache: Option<(u64, u64, ShardSummary)>,
    pub stats: ControllerStats,
    /// Executor routing: `(workload, replica, machine, rows)` per
    /// materialized tenant copy.
    pub routing: Vec<(String, u32, usize, u64)>,
    /// The decision trace's most recent [`TRACE_CHECKPOINT_CAP`] events.
    /// Restore resumes the sequence counter after the last entry, so the
    /// post-restore stream appends to the checkpointed history — the
    /// "restore must not fork history" property the decision-trace CI
    /// job diffs.
    pub trace: Vec<kairos_obs::TracedEvent>,
    /// Objective (bit pattern) of the current plan at its adoption — the
    /// "before" side of the next Replanned trace event.
    pub last_objective_bits: u64,
}
