//! Criterion micro-benchmarks for the disk-model crate: LAR fitting and
//! model prediction throughput (the consolidation engine calls predict in
//! its constraint inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use kairos_diskmodel::{DiskModel, DiskPoint, DiskProfile, Poly2D};
use kairos_types::{Bytes, DiskDemand, Rate};
use std::hint::black_box;

fn synthetic_profile(n_ws: usize, n_rates: usize) -> DiskProfile {
    let mut points = Vec::new();
    for i in 1..=n_ws {
        let ws = i as f64 * 0.5e9;
        let sat = 45_000.0 - ws * 5e-6;
        for j in 1..=n_rates {
            let rate = (j as f64 * 4_000.0).min(sat);
            points.push(DiskPoint {
                ws_bytes: ws,
                rows_per_sec: rate,
                write_bytes_per_sec: 240.0 * rate + ws * 0.0015,
                achieved_fraction: if j as f64 * 4_000.0 <= sat { 1.0 } else { 0.6 },
            });
        }
    }
    DiskProfile {
        machine: "bench".into(),
        points,
    }
}

fn bench_lar_fit(c: &mut Criterion) {
    let samples: Vec<(f64, f64, f64)> = synthetic_profile(8, 12)
        .points
        .iter()
        .map(|p| (p.ws_bytes, p.rows_per_sec, p.write_bytes_per_sec))
        .collect();
    c.bench_function("poly/lar_fit_96pts", |b| {
        b.iter(|| black_box(Poly2D::fit_lar(&samples).unwrap().coeffs))
    });
    c.bench_function("poly/lsq_fit_96pts", |b| {
        b.iter(|| black_box(Poly2D::fit_least_squares(&samples).unwrap().coeffs))
    });
}

fn bench_model(c: &mut Criterion) {
    let model = DiskModel::fit(&synthetic_profile(8, 12)).unwrap();
    c.bench_function("model/fit_full", |b| {
        let profile = synthetic_profile(8, 12);
        b.iter(|| black_box(DiskModel::fit(&profile).unwrap().machine().len()))
    });
    c.bench_function("model/predict", |b| {
        let d = DiskDemand::new(Bytes(2_000_000_000), Rate(15_000.0));
        b.iter(|| black_box(model.predict_write_bytes(d)))
    });
    c.bench_function("model/utilization", |b| {
        let d = DiskDemand::new(Bytes(2_000_000_000), Rate(15_000.0));
        b.iter(|| black_box(model.utilization(d)))
    });
}

criterion_group!(benches, bench_lar_fit, bench_model);
criterion_main!(benches);
