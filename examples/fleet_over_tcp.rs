//! The fleet control plane as a real multi-process system over TCP.
//!
//! ```text
//! cargo run --release --example fleet_over_tcp
//! KAIROS_TEST_SEED=7 cargo run --release --example fleet_over_tcp
//! ```
//!
//! This binary plays two roles. Run plainly, it is the **control
//! process**: it spawns one child process per shard (re-executing
//! itself with `shard-node` args), connects a primary `BalancerNode`
//! plus a rank-1 `StandbyBalancer` to the children's kernel-assigned
//! localhost ports, and drives a 3-shard flash-crowd fleet through the
//! full distributed lifecycle:
//!
//! 1. tenants registered over RPC (each node binds its own telemetry
//!    sources by name — nothing but bytes ever crosses a process
//!    boundary);
//! 2. the flash crowd blows shard 0 past its machine budget; the
//!    balancer sheds tenants cross-process through the two-phase
//!    reserve → evict → admit handshake, telemetry travelling as
//!    checksummed `TenantHandoff` wire frames;
//! 3. mid-run, shard 1's **process is killed** (SIGKILL — no goodbye).
//!    The balancer's tick-based lease detects it, the fleet keeps
//!    running around the hole, and a replacement process restores from
//!    the shard's last commanded checkpoint, fast-forwards its sources,
//!    and rejoins on a fresh port;
//! 4. later the **primary balancer dies** too. The standby watching its
//!    lease endpoint promotes deterministically, rebuilds the routing
//!    map from the shards themselves, and finishes the run;
//! 5. final acceptance: the audit (over RPC) is complete, violation-free
//!    and within budget on every shard, cross-process handoffs
//!    completed, and no tenant was lost or duplicated anywhere in the
//!    timeline.
//!
//! With `KAIROS_OBS_SURFACE=1` the run additionally arms the full
//! observability plane — causal span tracing on every process and the
//! health watchdog on every node — then, before teardown, scrapes
//! `Metrics`/`Health` from every shard over RPC, validates each
//! Prometheus exposition line, dumps the assembled span trees to
//! `target/obs-surface/`, runs the `kairos-top` console once in strict
//! mode against the live fleet, and exits nonzero on any critical
//! finding or malformed line. The CI `obs-surface` job runs exactly
//! this.

use kairos::controller::{ControllerConfig, SyntheticSource};
use kairos::fleet::{BalancerConfig, FleetConfig};
use kairos::net::{
    BalancerNode, LeaseConfig, ShardNode, SourceFactory, StandbyAction, StandbyBalancer,
    TcpTransport, Transport,
};
use kairos::types::Bytes;
use kairos::workloads::RatePattern;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

const SHARDS: usize = 3;
const TENANTS_PER_SHARD: usize = 16;
const TICKS: u64 = 130;
const BUDGET: usize = 6;
const KILL_SHARD_AT: u64 = 55;
const KILL_BALANCER_AT: u64 = 95;

fn shard_cfg() -> ControllerConfig {
    ControllerConfig {
        horizon: 10,
        check_every: 4,
        cooldown_ticks: 10,
        ..ControllerConfig::default()
    }
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        shards: SHARDS,
        shard: shard_cfg(),
        balancer: BalancerConfig {
            machines_per_shard: BUDGET,
            balance_every: 5,
            max_moves_per_round: 4,
            ..BalancerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Tenant sources are derived entirely from the tenant *name*, so any
/// process — original node, respawned node, handoff destination — can
/// rebuild the exact deterministic stream and fast-forward it into
/// phase. `s0-t00 … s0-t06` are the flash crowd: ~3× spikes mid-run.
fn make_source(name: &str, at_tick: u64) -> Option<SyntheticSource> {
    let (shard, idx) = parse_name(name)?;
    let base = 170.0 + 12.0 * (idx % 5) as f64;
    let src = SyntheticSource::new(
        name.to_string(),
        300.0,
        Bytes::gib(4),
        RatePattern::Flat { tps: base },
    );
    let src = if shard == 0 && idx < 7 {
        src.then_at(30, RatePattern::Flat { tps: 600.0 })
            .then_at(80, RatePattern::Flat { tps: base })
    } else {
        src
    };
    Some(src.fast_forward(at_tick))
}

fn parse_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix('s')?;
    let (shard, idx) = rest.split_once("-t")?;
    Some((shard.parse().ok()?, idx.parse().ok()?))
}

fn ckpt_path(dir: &str, shard: usize) -> String {
    format!("{dir}/shard-{shard}.ksnp")
}

/// Observability-surface mode: the child processes inherit the
/// environment, so one variable arms spans + watchdog fleet-wide.
fn obs_surface() -> bool {
    std::env::var("KAIROS_OBS_SURFACE").map(|v| v == "1") == Ok(true)
}

// ---------------------------------------------------------------------
// Child role: one shard node process.
// ---------------------------------------------------------------------

fn run_shard_node(shard: usize, ckpt_dir: &str, restore: bool) -> ! {
    let binder = Box::new(SourceFactory::new(|name, at_tick| {
        make_source(name, at_tick)
            .map(|s| Box::new(s) as Box<dyn kairos::controller::TelemetrySource>)
    }));
    let engine = kairos::core::ConsolidationEngine::builder().build();
    let node = if restore {
        ShardNode::restore_from(
            shard_cfg(),
            engine,
            std::path::Path::new(&ckpt_path(ckpt_dir, shard)),
            binder,
        )
        .unwrap_or_else(|e| panic!("shard {shard}: restore failed: {e}"))
    } else {
        ShardNode::new(shard_cfg(), engine, binder)
    };
    if obs_surface() {
        // Same arming on fresh and restore paths: a respawned process
        // restarts an empty span log but records from rejoin on.
        node.with_shard(|s| s.configure_spans(kairos::obs::span::node_for_shard(shard), true));
        node.set_health(Some(kairos::obs::HealthMonitor::new()));
    }
    let transport = TcpTransport::new();
    let handle = node
        .serve(&transport, "127.0.0.1:0")
        .unwrap_or_else(|e| panic!("shard {shard}: bind failed: {e}"));
    // The control process reads this line to learn our port.
    println!("PORT {}", handle.endpoint);

    // Die with the parent: EOF on stdin means the control process is
    // gone and nobody will ever send Shutdown.
    std::thread::spawn(|| {
        let mut line = String::new();
        let _ = std::io::stdin().lock().read_line(&mut line);
        std::process::exit(0);
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(600);
    while !node.shutdown_requested() {
        if std::time::Instant::now() > deadline {
            eprintln!("shard {shard}: watchdog deadline, exiting");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    drop(handle);
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// Control role: spawn children, drive the fleet, break things.
// ---------------------------------------------------------------------

struct ShardProcess {
    child: Child,
    endpoint: String,
}

fn spawn_shard(shard: usize, ckpt_dir: &str, restore: bool) -> ShardProcess {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("shard-node")
        .arg(shard.to_string())
        .arg(ckpt_dir)
        .arg(if restore { "restore" } else { "fresh" })
        .stdin(Stdio::piped()) // held open: child exits on EOF
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn shard node");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let endpoint = loop {
        let line = lines
            .next()
            .expect("child prints its port")
            .expect("readable stdout");
        if let Some(ep) = line.strip_prefix("PORT ") {
            break ep.to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks.
    std::thread::spawn(move || for _ in lines {});
    ShardProcess { child, endpoint }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("shard-node") {
        let shard: usize = args[2].parse().expect("shard index");
        let restore = args.get(4).map(String::as_str) == Some("restore");
        run_shard_node(shard, &args[3], restore);
    }

    // Key the whole deployment before the first net call: the child
    // processes inherit the environment, so every frame in this run —
    // parent balancer, shard nodes, the respawned node — carries a
    // SipHash-2-4 tag and an unkeyed peer could drive nothing.
    if std::env::var(kairos_net::auth::KEY_ENV).is_err() {
        std::env::set_var(kairos_net::auth::KEY_ENV, "fleet-over-tcp-demo");
    }

    println!("== kairos-net: a 3-shard fleet as real processes over TCP (authenticated) ==\n");
    let ckpt_dir =
        std::env::var("KAIROS_SNAPSHOT_DIR").unwrap_or_else(|_| "target/ckpt-tcp".to_string());
    std::fs::create_dir_all(&ckpt_dir).expect("checkpoint dir");

    // --- spawn the shard fleet ------------------------------------------
    let mut procs: Vec<ShardProcess> = (0..SHARDS)
        .map(|s| spawn_shard(s, &ckpt_dir, false))
        .collect();
    let endpoints: Vec<String> = procs.iter().map(|p| p.endpoint.clone()).collect();
    println!("spawned {SHARDS} shard-node processes: {endpoints:?}");

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let lease = LeaseConfig { miss_limit: 3 };
    let mut primary = Some(
        BalancerNode::connect(fleet_cfg(), lease, transport.clone(), &endpoints)
            .expect("primary balancer connects"),
    );
    let lease_handle = primary
        .as_ref()
        .expect("alive")
        .serve_lease(transport.as_ref(), "127.0.0.1:0")
        .expect("lease endpoint binds");
    let mut standby = Some(StandbyBalancer::new(
        BalancerNode::connect(fleet_cfg(), lease, transport.clone(), &endpoints)
            .expect("standby balancer connects"),
        &lease_handle.endpoint,
        1,
    ));
    let mut lease_handle = Some(lease_handle);
    let mut promoted: Option<BalancerNode> = None;
    if obs_surface() {
        // Both balancers trace and watch from tick one, so the spans and
        // health reports survive the mid-run promotion.
        let primary = primary.as_mut().expect("alive");
        primary.set_span_tracing(true);
        primary.set_health(Some(kairos::obs::HealthMonitor::new()));
        let standby = standby.as_mut().expect("alive");
        standby.node_mut().set_span_tracing(true);
        standby
            .node_mut()
            .set_health(Some(kairos::obs::HealthMonitor::new()));
        println!("observability surface armed: spans + watchdog on every process\n");
    }

    // --- register tenants over RPC --------------------------------------
    {
        let primary = primary.as_mut().expect("alive");
        for shard in 0..SHARDS {
            for i in 0..TENANTS_PER_SHARD {
                let name = format!("s{shard}-t{i:02}");
                primary
                    .add_workload_to(shard, &name, 1)
                    .expect("registration over RPC");
            }
        }
    }
    println!(
        "registered {} tenants over RPC (sources bound node-side by name)\n",
        SHARDS * TENANTS_PER_SHARD
    );

    // --- the run: flash crowd, a murdered shard, a murdered balancer ----
    let mut shard_killed = false;
    let mut shard_rejoined_at = None;
    let mut balancer_promoted_at = None;
    // Counted from the tick reports: handoff history spans both
    // balancers (the promoted standby's own counters start at zero —
    // the audit log died with the primary, by design).
    let mut completed_handoffs = 0u64;
    for tick in 1..=TICKS {
        // Periodic checkpoints — the restore-from material.
        if tick % 10 == 0 {
            if let Some(primary) = primary.as_mut() {
                let _ = primary.checkpoint_shards(&ckpt_dir);
            } else if let Some(promoted) = promoted.as_mut() {
                let _ = promoted.checkpoint_shards(&ckpt_dir);
            }
        }
        if tick == KILL_SHARD_AT {
            procs[1].child.kill().expect("kill shard 1");
            let _ = procs[1].child.wait();
            shard_killed = true;
            println!(
                "tick {tick:>3}: SIGKILL shard-node 1 ({})",
                procs[1].endpoint
            );
        }
        if tick == KILL_BALANCER_AT {
            // The primary dies: lease endpoint gone, ticking stops.
            lease_handle.take().expect("still serving").stop();
            primary = None;
            println!("tick {tick:>3}: primary balancer dropped; standby watching");
        }

        if let Some(primary) = primary.as_mut() {
            let report = primary.tick();
            // Shard death detected → respawn from checkpoint and rejoin.
            if shard_killed && shard_rejoined_at.is_none() && report.down.contains(&1) {
                let reborn = spawn_shard(1, &ckpt_dir, true);
                primary
                    .rejoin(1, &reborn.endpoint)
                    .expect("restored node rejoins");
                if let Some(standby) = standby.as_mut() {
                    standby.node_mut().set_endpoint(1, &reborn.endpoint);
                }
                println!(
                    "tick {tick:>3}: lease expired for shard 1 → respawned from {} at {}",
                    ckpt_path(&ckpt_dir, 1),
                    reborn.endpoint
                );
                procs[1] = reborn;
                shard_rejoined_at = Some(tick);
            }
            for handoff in &report.handoffs {
                if handoff.completed() {
                    completed_handoffs += 1;
                }
                println!(
                    "tick {tick:>3}: handoff {} shard {} → {:?} [{:?}]",
                    handoff.tenant, handoff.from, handoff.to, handoff.outcome
                );
            }
        } else if promoted.is_none() {
            let watcher = standby.as_mut().expect("standby exists");
            if watcher.watch_tick() == StandbyAction::Promote {
                match standby.take().expect("standby exists").promote() {
                    Ok(node) => {
                        println!(
                            "tick {tick:>3}: standby promoted (rank 1, {} missed leases) — \
                             map rebuilt from the shards",
                            lease.miss_limit
                        );
                        balancer_promoted_at = Some(tick);
                        promoted = Some(node);
                    }
                    Err((returned, e)) => {
                        println!("tick {tick:>3}: promotion retry ({e})");
                        standby = Some(*returned);
                    }
                }
            }
        } else if let Some(promoted) = promoted.as_mut() {
            let report = promoted.tick();
            for handoff in &report.handoffs {
                if handoff.completed() {
                    completed_handoffs += 1;
                }
                println!(
                    "tick {tick:>3}: handoff {} shard {} → {:?} [{:?}] (post-failover)",
                    handoff.tenant, handoff.from, handoff.to, handoff.outcome
                );
            }
        }
    }

    // --- acceptance ------------------------------------------------------
    let rejoined = shard_rejoined_at.expect("the killed shard must have rejoined");
    let promoted_at = balancer_promoted_at.expect("the standby must have promoted");
    let mut final_balancer = promoted.expect("the promoted balancer finishes the run");
    let audit = final_balancer.audit();
    let stats = final_balancer.stats();
    println!(
        "\nfinal audit (over RPC): machines {:?}, complete={}, zero-violations={}, \
         within-budget({BUDGET})={}",
        audit.machines_used,
        audit.complete(),
        audit.zero_violations(),
        audit.within_budget(BUDGET),
    );
    assert!(
        audit.complete(),
        "every shard must audit after the failovers"
    );
    assert!(
        audit.zero_violations(),
        "flash crowd must converge to zero violations"
    );
    assert!(
        audit.within_budget(BUDGET),
        "every shard within its machine budget"
    );
    assert!(
        completed_handoffs >= 1,
        "the crowd must have forced cross-process handoffs"
    );
    let workloads = final_balancer.shard_workloads();
    let total: usize = workloads
        .iter()
        .map(|w| w.as_ref().map_or(0, |w| w.len()))
        .sum();
    assert_eq!(
        total,
        SHARDS * TENANTS_PER_SHARD,
        "no tenant lost or duplicated across kill + rejoin + failover"
    );
    println!(
        "survived: shard-1 SIGKILL at tick {KILL_SHARD_AT} (rejoined tick {rejoined}), \
         balancer death at tick {KILL_BALANCER_AT} (promoted tick {promoted_at})"
    );
    println!(
        "handoffs: {completed_handoffs} completed across both balancers; \
         post-failover stats {stats:?}"
    );

    // The observability plane crosses the same wire: each shard process
    // serves its metrics and its decision trace over RPC, and the
    // promoted balancer carries its own failover events.
    let (_, prometheus) = final_balancer
        .shard_metrics(0)
        .expect("shard 0 serves the Metrics RPC");
    let ticks_line = prometheus
        .lines()
        .find(|l| l.starts_with("kairos_shard_ticks_total"))
        .expect("shard metrics include the tick counter");
    println!("shard 0 metrics over RPC: {ticks_line}");
    let trace = final_balancer
        .shard_trace(1)
        .expect("the rejoined shard serves the Trace RPC");
    assert!(
        !trace.is_empty(),
        "shard 1's restored trace must cross the wire"
    );
    println!(
        "shard 1 trace over RPC: {} bytes (history survived SIGKILL + restore)",
        trace.len()
    );
    let failover_events = final_balancer.trace_events();
    assert!(
        failover_events
            .iter()
            .any(|e| matches!(e.event, kairos::obs::DecisionEvent::StandbyPromoted { .. })),
        "the promotion must be on the promoted balancer's own trace"
    );

    if obs_surface() {
        let endpoints: Vec<String> = procs.iter().map(|p| p.endpoint.clone()).collect();
        surface_scrape(&endpoints, &mut final_balancer);
    }

    // --- teardown --------------------------------------------------------
    final_balancer.shutdown_shards();
    for p in &mut procs {
        let _ = p.child.wait();
    }
    println!("\nall fleet-over-TCP acceptance properties passed.");
}

// ---------------------------------------------------------------------
// Observability-surface scrape (KAIROS_OBS_SURFACE=1): the CI gate.
// ---------------------------------------------------------------------

/// Scrape `Metrics`/`Health` from every live shard over RPC, validate
/// the exposition text, dump span trees to `target/obs-surface/`, run
/// `kairos-top --once --strict` against the fleet, and exit nonzero on
/// any critical finding or malformed line.
fn surface_scrape(endpoints: &[String], balancer: &mut BalancerNode) {
    use kairos::obs::{assemble_trees, render_span_tree, SpanRecord};

    println!("\n== observability surface scrape ==");
    let dump_dir = std::path::Path::new("target/obs-surface");
    std::fs::create_dir_all(dump_dir).expect("dump dir");
    let transport = TcpTransport::new();
    let mut problems: Vec<String> = Vec::new();

    // A quiet shard (no handoff touched it since its last restart) has a
    // legitimately empty log, so emptiness is only a problem fleet-wide.
    let dump_spans = |label: &str, bytes: &[u8], problems: &mut Vec<String>| -> usize {
        let spans: Vec<SpanRecord> = match serde::from_bytes(bytes) {
            Ok(spans) => spans,
            Err(e) => {
                problems.push(format!("{label}: span log bytes undecodable: {e:?}"));
                return 0;
            }
        };
        let mut text = String::new();
        for tree in assemble_trees(&spans) {
            text.push_str(&render_span_tree(&tree));
            text.push('\n');
        }
        let path = dump_dir.join(format!("{label}.spans.txt"));
        std::fs::write(&path, &text).expect("span dump writable");
        println!(
            "{label}: {} spans dumped to {}",
            spans.len(),
            path.display()
        );
        spans.len()
    };
    let mut shard_span_total = 0usize;

    for (shard, endpoint) in endpoints.iter().enumerate() {
        let mut conn = transport.connect(endpoint).expect("shard reachable");
        let conn = conn.as_mut();
        match kairos_net::rpc::call(conn, &kairos_net::Request::Metrics) {
            Ok(kairos_net::Response::Metrics { prometheus, .. }) => {
                for line in prometheus.lines() {
                    if let Err(reason) = kairos::obs::metrics::validate_exposition_line(line) {
                        problems.push(format!("shard-{shard}: malformed exposition: {reason}"));
                    }
                }
                println!(
                    "shard-{shard}: {} exposition lines validated",
                    prometheus.lines().count()
                );
            }
            other => problems.push(format!("shard-{shard}: metrics scrape failed: {other:?}")),
        }
        match kairos_net::rpc::call(conn, &kairos_net::Request::Health) {
            Ok(kairos_net::Response::Health(report)) => {
                print!("shard-{shard} health: {}", report.render());
                if report.has_critical() {
                    problems.push(format!(
                        "shard-{shard}: critical finding: {}",
                        report.render()
                    ));
                }
            }
            other => problems.push(format!("shard-{shard}: health scrape failed: {other:?}")),
        }
        match kairos_net::rpc::call(conn, &kairos_net::Request::Spans) {
            Ok(kairos_net::Response::Spans(bytes)) => {
                shard_span_total += dump_spans(&format!("shard-{shard}"), &bytes, &mut problems);
            }
            other => problems.push(format!("shard-{shard}: span scrape failed: {other:?}")),
        }
    }
    if shard_span_total == 0 {
        problems.push("no shard recorded a single span despite armed tracing".to_string());
    }

    // The promoted balancer's own log (it serves no endpoint here).
    if dump_spans("balancer", &balancer.span_bytes(), &mut problems) == 0 {
        problems.push("balancer: armed span log recorded nothing".to_string());
    }
    if let Some(report) = balancer.health_report() {
        print!("balancer health: {}", report.render());
        if report.has_critical() {
            problems.push(format!("balancer: critical finding: {}", report.render()));
        }
    } else {
        problems.push("balancer: watchdog was armed but reports nothing".to_string());
    }

    // The operator console against the live fleet: `--strict` repeats
    // the critical-finding and exposition checks from the outside.
    let exe = std::env::current_exe().expect("own path");
    let top = exe
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("kairos-top"))
        .filter(|p| p.exists());
    match top {
        Some(top) => {
            let output = Command::new(&top)
                .args(endpoints)
                .arg("--once")
                .arg("--strict")
                .output()
                .expect("kairos-top runs");
            print!("{}", String::from_utf8_lossy(&output.stdout));
            if !output.status.success() {
                problems.push(format!("kairos-top --strict failed: {}", output.status));
            }
        }
        None => problems.push(
            "kairos-top binary not built (cargo build --release -p kairos-net --bins)".to_string(),
        ),
    }

    if !problems.is_empty() {
        eprintln!("\nobservability surface FAILED:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    println!("observability surface clean: exposition valid, no critical findings");
}
